#include "gatelib/gate.hpp"

#include <array>

#include "util/error.hpp"

namespace hdpm::gate {

namespace {

struct KindInfo {
    std::string_view name;
    int num_inputs;
};

constexpr std::array<KindInfo, kNumGateKinds> kKindInfo = {{
    {"CONST0", 0},
    {"CONST1", 0},
    {"BUF", 1},
    {"INV", 1},
    {"AND2", 2},
    {"NAND2", 2},
    {"OR2", 2},
    {"NOR2", 2},
    {"XOR2", 2},
    {"XNOR2", 2},
    {"AND3", 3},
    {"NAND3", 3},
    {"OR3", 3},
    {"NOR3", 3},
    {"XOR3", 3},
    {"MUX2", 3},
    {"AOI21", 3},
    {"OAI21", 3},
    {"MAJ3", 3},
}};

static_assert(
    [] {
        for (const KindInfo& info : kKindInfo) {
            if (info.num_inputs > kMaxGateInputs) {
                return false;
            }
        }
        return true;
    }(),
    "a gate kind exceeds kMaxGateInputs — grow Cell::inputs, the simulator "
    "scratch buffers, and the truth-table byte before adding it");

} // namespace

int gate_num_inputs(GateKind kind) noexcept
{
    return kKindInfo[static_cast<std::size_t>(kind)].num_inputs;
}

std::string_view gate_name(GateKind kind) noexcept
{
    return kKindInfo[static_cast<std::size_t>(kind)].name;
}

GateKind gate_from_name(std::string_view name)
{
    for (int k = 0; k < kNumGateKinds; ++k) {
        if (kKindInfo[static_cast<std::size_t>(k)].name == name) {
            return static_cast<GateKind>(k);
        }
    }
    throw util::PreconditionError("unknown gate name: " + std::string{name});
}

bool gate_eval(GateKind kind, std::span<const std::uint8_t> inputs)
{
    HDPM_REQUIRE(static_cast<int>(inputs.size()) == gate_num_inputs(kind),
                 "gate ", gate_name(kind), " expects ", gate_num_inputs(kind),
                 " inputs, got ", inputs.size());
    const auto in = [&](std::size_t i) { return inputs[i] != 0; };
    switch (kind) {
    case GateKind::Const0:
        return false;
    case GateKind::Const1:
        return true;
    case GateKind::Buf:
        return in(0);
    case GateKind::Inv:
        return !in(0);
    case GateKind::And2:
        return in(0) && in(1);
    case GateKind::Nand2:
        return !(in(0) && in(1));
    case GateKind::Or2:
        return in(0) || in(1);
    case GateKind::Nor2:
        return !(in(0) || in(1));
    case GateKind::Xor2:
        return in(0) != in(1);
    case GateKind::Xnor2:
        return in(0) == in(1);
    case GateKind::And3:
        return in(0) && in(1) && in(2);
    case GateKind::Nand3:
        return !(in(0) && in(1) && in(2));
    case GateKind::Or3:
        return in(0) || in(1) || in(2);
    case GateKind::Nor3:
        return !(in(0) || in(1) || in(2));
    case GateKind::Xor3:
        return (in(0) != in(1)) != in(2);
    case GateKind::Mux2:
        return in(2) ? in(1) : in(0);
    case GateKind::Aoi21:
        return !((in(0) && in(1)) || in(2));
    case GateKind::Oai21:
        return !((in(0) || in(1)) && in(2));
    case GateKind::Maj3:
        return (in(0) && in(1)) || (in(0) && in(2)) || (in(1) && in(2));
    }
    HDPM_FAIL("unreachable gate kind");
}

std::uint8_t gate_truth_table(GateKind kind) noexcept
{
    // Derived once from gate_eval so the packed tables can never diverge
    // from the reference switch.
    static const std::array<std::uint8_t, kNumGateKinds> tables = [] {
        std::array<std::uint8_t, kNumGateKinds> t{};
        for (int k = 0; k < kNumGateKinds; ++k) {
            const auto kk = static_cast<GateKind>(k);
            const int n = gate_num_inputs(kk);
            for (std::uint32_t idx = 0; idx < (1U << n); ++idx) {
                std::uint8_t in[kMaxGateInputs] = {};
                for (int b = 0; b < n; ++b) {
                    in[b] = static_cast<std::uint8_t>((idx >> b) & 1U);
                }
                if (gate_eval(kk, {in, static_cast<std::size_t>(n)})) {
                    t[static_cast<std::size_t>(k)] |=
                        static_cast<std::uint8_t>(1U << idx);
                }
            }
        }
        return t;
    }();
    return tables[static_cast<std::size_t>(kind)];
}

} // namespace hdpm::gate
