#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace hdpm::gate {

/// The primitive cell kinds of the gate library.
///
/// The datapath generators (dpgen) map every component onto these
/// primitives, mirroring how the paper's DesignWare modules map onto a
/// standard-cell library. Multi-level cells (full adders, ...) are built
/// structurally from these so that internal glitching is visible to the
/// power simulator.
enum class GateKind : std::uint8_t {
    Const0, ///< constant logic 0 (no inputs)
    Const1, ///< constant logic 1 (no inputs)
    Buf,    ///< buffer
    Inv,    ///< inverter
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    And3,
    Nand3,
    Or3,
    Nor3,
    Xor3,
    Mux2,  ///< inputs (d0, d1, sel): out = sel ? d1 : d0
    Aoi21, ///< inputs (a, b, c): out = !((a & b) | c)
    Oai21, ///< inputs (a, b, c): out = !((a | b) & c)
    Maj3,  ///< 3-input majority (the carry function)
};

/// Number of distinct gate kinds (for table sizing).
inline constexpr int kNumGateKinds = static_cast<int>(GateKind::Maj3) + 1;

/// Maximum number of input pins any gate kind may have. Fixed-size input
/// buffers throughout the library (netlist::Cell::inputs, simulator
/// scratch, truth-table packing) are sized to this; gate.cpp statically
/// asserts every kind fits, and Netlist::add_cell re-checks at runtime so
/// a future wider kind cannot silently overflow them.
inline constexpr int kMaxGateInputs = 3;

/// Number of input pins of a gate kind.
[[nodiscard]] int gate_num_inputs(GateKind kind) noexcept;

/// Human-readable cell name ("NAND2", ...).
[[nodiscard]] std::string_view gate_name(GateKind kind) noexcept;

/// Parse a cell name back to its kind; throws PreconditionError on an
/// unknown name. Inverse of gate_name, used by the netlist text format.
[[nodiscard]] GateKind gate_from_name(std::string_view name);

/// Evaluate the boolean function of a gate. @p inputs must provide exactly
/// gate_num_inputs(kind) values.
[[nodiscard]] bool gate_eval(GateKind kind, std::span<const std::uint8_t> inputs);

/// The complete truth table of a gate packed into one byte: bit i is the
/// output for the input combination with packed value i, where input pin k
/// contributes bit k (i = in0 | in1<<1 | in2<<2). Bits at or above
/// 1 << gate_num_inputs(kind) are zero. This is what the compiled
/// simulation hot loops index instead of calling gate_eval.
[[nodiscard]] std::uint8_t gate_truth_table(GateKind kind) noexcept;

} // namespace hdpm::gate
