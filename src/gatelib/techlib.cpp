#include "gatelib/techlib.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "util/error.hpp"

namespace hdpm::gate {

namespace {

/// Corner-scaling physics constants (see docs/corners.md).
///
/// Alpha-power delay law: t_d ∝ V / (V − Vth)^α with α between 1 (full
/// velocity saturation) and 2 (long-channel); 1.3 matches submicron CMOS.
/// Vth is modeled as a fixed fraction of the library's native supply.
/// Temperature enters both delay and energy as small linear deratings
/// around the 25 °C nominal — carrier mobility falls with temperature
/// (slower, slightly more short-circuit energy).
constexpr double kAlphaPower = 1.3;
constexpr double kVthFraction = 0.2;
constexpr double kDelayTempPerC = 0.0013;
constexpr double kEnergyTempPerC = 0.0005;
constexpr double kNominalTempC = 25.0;

double alpha_power_factor(double vdd, double vth)
{
    return vdd / std::pow(vdd - vth, kAlphaPower);
}

} // namespace

const char* load_class_name(LoadClass load) noexcept
{
    switch (load) {
    case LoadClass::Light:
        return "light";
    case LoadClass::Heavy:
        return "heavy";
    case LoadClass::Nominal:
        break;
    }
    return "nominal";
}

double load_class_wire_scale(LoadClass load) noexcept
{
    switch (load) {
    case LoadClass::Light:
        return 0.6;
    case LoadClass::Heavy:
        return 1.6;
    case LoadClass::Nominal:
        break;
    }
    return 1.0;
}

std::string Corner::key() const
{
    const char load_letter = load_class == LoadClass::Light   ? 'l'
                             : load_class == LoadClass::Heavy ? 'h'
                                                              : 'n';
    char buf[48];
    std::snprintf(buf, sizeof buf, "v%lldt%lld%c",
                  static_cast<long long>(std::llround(vdd_v * 1000.0)),
                  static_cast<long long>(std::llround(temp_c * 10.0)), load_letter);
    return buf;
}

Corner parse_corner(std::string_view spec)
{
    const auto fail = [&] {
        HDPM_FAIL("bad corner spec '", std::string{spec},
                  "' (expected vdd:temp[:load], e.g. 0.9:85:heavy)");
    };
    Corner corner;
    const std::size_t first = spec.find(':');
    if (first == std::string_view::npos || first == 0) {
        fail();
    }
    const std::size_t second = spec.find(':', first + 1);
    const std::string vdd_text{spec.substr(0, first)};
    const std::string temp_text{spec.substr(
        first + 1, second == std::string_view::npos ? std::string_view::npos
                                                    : second - first - 1)};
    try {
        std::size_t used = 0;
        corner.vdd_v = std::stod(vdd_text, &used);
        if (used != vdd_text.size()) {
            fail();
        }
        corner.temp_c = std::stod(temp_text, &used);
        if (used != temp_text.size()) {
            fail();
        }
    } catch (const std::exception&) {
        fail();
    }
    if (second != std::string_view::npos) {
        const std::string_view load = spec.substr(second + 1);
        if (load == "light" || load == "l") {
            corner.load_class = LoadClass::Light;
        } else if (load == "nominal" || load == "n") {
            corner.load_class = LoadClass::Nominal;
        } else if (load == "heavy" || load == "h") {
            corner.load_class = LoadClass::Heavy;
        } else {
            fail();
        }
    }
    HDPM_REQUIRE(corner.vdd_v > 0.0 && corner.vdd_v < 20.0,
                 "corner supply out of range: ", corner.vdd_v, " V");
    HDPM_REQUIRE(corner.temp_c >= -100.0 && corner.temp_c <= 300.0,
                 "corner temperature out of range: ", corner.temp_c, " C");
    return corner;
}

TechLibrary::TechLibrary(std::string name, double vdd_v, double wire_cap_base_ff,
                         double wire_cap_per_fanout_ff,
                         std::array<GateElectrical, kNumGateKinds> cells)
    : name_(std::move(name)),
      vdd_v_(vdd_v),
      wire_cap_base_ff_(wire_cap_base_ff),
      wire_cap_per_fanout_ff_(wire_cap_per_fanout_ff),
      cells_(cells)
{
}

TechLibrary TechLibrary::derived(std::string name, double vdd_v,
                                 double wire_cap_base_ff,
                                 double wire_cap_per_fanout_ff,
                                 const CellScaling& scaling) const
{
    std::array<GateElectrical, kNumGateKinds> cells = cells_;
    for (GateElectrical& e : cells) {
        e.input_cap_ff *= scaling.cap_scale;
        e.output_cap_ff *= scaling.cap_scale;
        e.internal_energy_fj *= scaling.energy_scale;
        e.intrinsic_delay_ps *= scaling.delay_scale;
        e.delay_per_ff_ps *= scaling.slope_scale;
    }
    return TechLibrary{std::move(name), vdd_v, wire_cap_base_ff,
                       wire_cap_per_fanout_ff, cells};
}

double TechLibrary::corner_energy_scale(const Corner& corner) const
{
    const double v = corner.vdd_v > 0.0 ? corner.vdd_v : vdd_v_;
    const double ratio = v / vdd_v_;
    return ratio * ratio * (1.0 + kEnergyTempPerC * (corner.temp_c - kNominalTempC));
}

double TechLibrary::corner_delay_scale(const Corner& corner) const
{
    const double v = corner.vdd_v > 0.0 ? corner.vdd_v : vdd_v_;
    const double vth = kVthFraction * vdd_v_;
    HDPM_REQUIRE(v > vth, "corner supply ", v, " V at or below the threshold ",
                 vth, " V of library '", name_, "'");
    return (alpha_power_factor(v, vth) / alpha_power_factor(vdd_v_, vth)) *
           (1.0 + kDelayTempPerC * (corner.temp_c - kNominalTempC));
}

TechLibrary TechLibrary::at(const Corner& corner) const
{
    const double v = corner.vdd_v > 0.0 ? corner.vdd_v : vdd_v_;
    HDPM_REQUIRE(v > 0.0 && v < 20.0, "corner supply out of range: ", v, " V");
    HDPM_REQUIRE(corner.temp_c >= -100.0 && corner.temp_c <= 300.0,
                 "corner temperature out of range: ", corner.temp_c, " C");
    CellScaling scaling;
    scaling.energy_scale = corner_energy_scale(corner);
    scaling.delay_scale = corner_delay_scale(corner);
    scaling.slope_scale = scaling.delay_scale;
    HDPM_REQUIRE(scaling.energy_scale > 0.0 && scaling.delay_scale > 0.0,
                 "corner scaling degenerate at ", corner.key());
    const double wire = load_class_wire_scale(corner.load_class);
    return derived(name_ + "@" + corner.key(), v, wire_cap_base_ff_ * wire,
                   wire_cap_per_fanout_ff_ * wire, scaling);
}

namespace {

std::array<GateElectrical, kNumGateKinds> generic350_cells()
{
    std::array<GateElectrical, kNumGateKinds> c{};
    auto set = [&](GateKind k, GateElectrical e) { c[static_cast<std::size_t>(k)] = e; };
    //                 in-cap out-cap  E-int  t0     slope
    set(GateKind::Const0, {0.0, 0.5, 0.0, 0.0, 0.0});
    set(GateKind::Const1, {0.0, 0.5, 0.0, 0.0, 0.0});
    set(GateKind::Buf, {4.0, 3.0, 5.0, 70.0, 2.5});
    set(GateKind::Inv, {4.0, 3.0, 4.0, 40.0, 3.0});
    set(GateKind::And2, {5.0, 3.5, 9.0, 90.0, 3.0});
    set(GateKind::Nand2, {5.0, 4.0, 6.0, 60.0, 3.2});
    set(GateKind::Or2, {5.0, 3.5, 9.5, 95.0, 3.0});
    set(GateKind::Nor2, {5.0, 4.5, 7.0, 70.0, 3.5});
    set(GateKind::Xor2, {7.0, 5.0, 14.0, 120.0, 3.4});
    set(GateKind::Xnor2, {7.0, 5.0, 14.5, 125.0, 3.4});
    set(GateKind::And3, {5.5, 4.0, 12.0, 110.0, 3.1});
    set(GateKind::Nand3, {5.5, 4.5, 8.0, 80.0, 3.3});
    set(GateKind::Or3, {5.5, 4.0, 12.5, 115.0, 3.1});
    set(GateKind::Nor3, {5.5, 5.0, 9.0, 90.0, 3.7});
    set(GateKind::Xor3, {7.5, 5.5, 22.0, 180.0, 3.5});
    set(GateKind::Mux2, {6.0, 4.5, 11.0, 100.0, 3.2});
    set(GateKind::Aoi21, {5.5, 4.5, 8.0, 75.0, 3.4});
    set(GateKind::Oai21, {5.5, 4.5, 8.0, 75.0, 3.4});
    set(GateKind::Maj3, {6.0, 5.0, 13.0, 110.0, 3.3});
    return c;
}

} // namespace

const TechLibrary& TechLibrary::generic350()
{
    static const TechLibrary lib{"generic350", 3.3, 2.0, 1.5, generic350_cells()};
    return lib;
}

const TechLibrary& TechLibrary::generic180()
{
    // Capacitances ~0.45×, delays ~0.4×, internal energies ~0.2× of the
    // 350 nm library — a coarse constant-field scaling, expressed through
    // the same derivation machinery operating corners use. The slope in
    // ps/fF shrinks less (thinner wires); the wire capacitances are the
    // historical hand-picked values, not a clean single factor.
    static const TechLibrary lib = generic350().derived(
        "generic180", 1.8, 1.0, 0.8, CellScaling{0.45, 0.20, 0.40, 0.90});
    return lib;
}

} // namespace hdpm::gate
