#include "gatelib/techlib.hpp"

#include <utility>

namespace hdpm::gate {

TechLibrary::TechLibrary(std::string name, double vdd_v, double wire_cap_base_ff,
                         double wire_cap_per_fanout_ff,
                         std::array<GateElectrical, kNumGateKinds> cells)
    : name_(std::move(name)),
      vdd_v_(vdd_v),
      wire_cap_base_ff_(wire_cap_base_ff),
      wire_cap_per_fanout_ff_(wire_cap_per_fanout_ff),
      cells_(cells)
{
}

namespace {

std::array<GateElectrical, kNumGateKinds> generic350_cells()
{
    std::array<GateElectrical, kNumGateKinds> c{};
    auto set = [&](GateKind k, GateElectrical e) { c[static_cast<std::size_t>(k)] = e; };
    //                 in-cap out-cap  E-int  t0     slope
    set(GateKind::Const0, {0.0, 0.5, 0.0, 0.0, 0.0});
    set(GateKind::Const1, {0.0, 0.5, 0.0, 0.0, 0.0});
    set(GateKind::Buf, {4.0, 3.0, 5.0, 70.0, 2.5});
    set(GateKind::Inv, {4.0, 3.0, 4.0, 40.0, 3.0});
    set(GateKind::And2, {5.0, 3.5, 9.0, 90.0, 3.0});
    set(GateKind::Nand2, {5.0, 4.0, 6.0, 60.0, 3.2});
    set(GateKind::Or2, {5.0, 3.5, 9.5, 95.0, 3.0});
    set(GateKind::Nor2, {5.0, 4.5, 7.0, 70.0, 3.5});
    set(GateKind::Xor2, {7.0, 5.0, 14.0, 120.0, 3.4});
    set(GateKind::Xnor2, {7.0, 5.0, 14.5, 125.0, 3.4});
    set(GateKind::And3, {5.5, 4.0, 12.0, 110.0, 3.1});
    set(GateKind::Nand3, {5.5, 4.5, 8.0, 80.0, 3.3});
    set(GateKind::Or3, {5.5, 4.0, 12.5, 115.0, 3.1});
    set(GateKind::Nor3, {5.5, 5.0, 9.0, 90.0, 3.7});
    set(GateKind::Xor3, {7.5, 5.5, 22.0, 180.0, 3.5});
    set(GateKind::Mux2, {6.0, 4.5, 11.0, 100.0, 3.2});
    set(GateKind::Aoi21, {5.5, 4.5, 8.0, 75.0, 3.4});
    set(GateKind::Oai21, {5.5, 4.5, 8.0, 75.0, 3.4});
    set(GateKind::Maj3, {6.0, 5.0, 13.0, 110.0, 3.3});
    return c;
}

std::array<GateElectrical, kNumGateKinds> generic180_cells()
{
    // Capacitances ~0.45×, delays ~0.4×, internal energies ~0.2× of the
    // 350 nm library — a coarse constant-field scaling.
    auto c = generic350_cells();
    for (auto& e : c) {
        e.input_cap_ff *= 0.45;
        e.output_cap_ff *= 0.45;
        e.internal_energy_fj *= 0.20;
        e.intrinsic_delay_ps *= 0.40;
        e.delay_per_ff_ps *= 0.90; // slope in ps/fF shrinks less (thinner wires)
    }
    return c;
}

} // namespace

const TechLibrary& TechLibrary::generic350()
{
    static const TechLibrary lib{"generic350", 3.3, 2.0, 1.5, generic350_cells()};
    return lib;
}

const TechLibrary& TechLibrary::generic180()
{
    static const TechLibrary lib{"generic180", 1.8, 1.0, 0.8, generic180_cells()};
    return lib;
}

} // namespace hdpm::gate
