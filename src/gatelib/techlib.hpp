#pragma once

#include <array>
#include <string>
#include <string_view>

#include "gatelib/gate.hpp"

namespace hdpm::gate {

/// Wire-load class of an operating corner: a coarse knob for the
/// interconnect environment (placement density, routing congestion) that
/// scales the per-net wire capacitance without touching cell data.
enum class LoadClass : std::uint8_t {
    Light = 0,   ///< sparse placement, short wires (0.6× wire caps)
    Nominal = 1, ///< the library's native wire model (1.0×)
    Heavy = 2,   ///< congested routing, long wires (1.6× wire caps)
};

/// Human-readable load-class name ("light" / "nominal" / "heavy").
[[nodiscard]] const char* load_class_name(LoadClass load) noexcept;

/// Wire-capacitance multiplier of a load class.
[[nodiscard]] double load_class_wire_scale(LoadClass load) noexcept;

/// One operating corner of a technology library: supply voltage, junction
/// temperature, and wire-load class. TechLibrary::at derives a complete
/// scaled library for a corner (alpha-power Vdd scaling of delay, CV²
/// scaling of internal energy, linear temperature derating — see
/// docs/corners.md for the laws and constants).
///
/// The *identity corner* — native Vdd (or vdd_v = 0), 25 °C, Nominal —
/// derives a library whose every number is bit-identical to the base
/// library (all scale factors are exactly 1.0 in IEEE arithmetic), so
/// corner-aware code paths cost nothing when no corner is requested.
struct Corner {
    double vdd_v = 0.0;   ///< supply [V]; 0 = the library's native supply
    double temp_c = 25.0; ///< junction temperature [°C]
    LoadClass load_class = LoadClass::Nominal;

    /// Whitespace-free identity token, e.g. "v3300t250n" (supply in mV,
    /// temperature in deci-°C, load-class letter). Used in derived library
    /// names, model keys, file names, and checkpoint fingerprints; corners
    /// that round to the same token are the same corner for caching.
    [[nodiscard]] std::string key() const;

    friend bool operator==(const Corner&, const Corner&) = default;
};

/// Parse a corner spec "vdd:temp[:load]" — e.g. "0.9:85", "1.62:125:heavy",
/// "3.3:25:l". Load accepts light/nominal/heavy or their first letters;
/// omitted = nominal. Throws on malformed input.
[[nodiscard]] Corner parse_corner(std::string_view spec);

/// Exact per-field multipliers TechLibrary::derived applies to every cell:
/// one multiplication per field, so a scaling of 1.0 is bit-preserving and
/// a hand-written scaled library (the historical generic180 constants) is
/// reproduced exactly.
struct CellScaling {
    double cap_scale = 1.0;    ///< input and output pin capacitance
    double energy_scale = 1.0; ///< internal energy per transition
    double delay_scale = 1.0;  ///< intrinsic (unloaded) delay
    double slope_scale = 1.0;  ///< delay-vs-load slope
};

/// Electrical characterization data of one cell kind.
///
/// These are the per-cell numbers the reference power simulator consumes:
/// switched capacitance plus a lumped internal (short-circuit + internal
/// node) energy per output transition, and a linear delay model
/// delay = intrinsic + slope · C_load.
struct GateElectrical {
    double input_cap_ff = 0.0;       ///< capacitance presented by each input pin [fF]
    double output_cap_ff = 0.0;      ///< intrinsic drain capacitance on the output [fF]
    double internal_energy_fj = 0.0; ///< internal energy per output transition [fJ]
    double intrinsic_delay_ps = 0.0; ///< unloaded propagation delay [ps]
    double delay_per_ff_ps = 0.0;    ///< delay slope versus load capacitance [ps/fF]
};

/// A synthetic technology library.
///
/// Substitute for the 0.35 µm standard-cell data behind the paper's
/// DesignWare + PowerMill flow. Absolute values are plausible-scale
/// fabrications; what matters for the macro-model experiments is the
/// *relative* sizing between cells and the presence of load-dependent delay
/// (which creates arrival-time skew and therefore glitching).
class TechLibrary {
public:
    /// Build a library from explicit per-kind data.
    TechLibrary(std::string name, double vdd_v, double wire_cap_base_ff,
                double wire_cap_per_fanout_ff,
                std::array<GateElectrical, kNumGateKinds> cells);

    /// Library name (for reports).
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Supply voltage [V].
    [[nodiscard]] double vdd() const noexcept { return vdd_v_; }

    /// Fixed wire capacitance added to every driven net [fF].
    [[nodiscard]] double wire_cap_base_ff() const noexcept { return wire_cap_base_ff_; }

    /// Additional wire capacitance per fanout pin [fF].
    [[nodiscard]] double wire_cap_per_fanout_ff() const noexcept
    {
        return wire_cap_per_fanout_ff_;
    }

    /// Electrical data of a cell kind.
    [[nodiscard]] const GateElectrical& spec(GateKind kind) const noexcept
    {
        return cells_[static_cast<std::size_t>(kind)];
    }

    /// A derived library: every cell field multiplied by the matching
    /// CellScaling factor (exactly one multiplication per field), with the
    /// given supply and wire capacitances adopted verbatim. This is the
    /// single mechanism behind both hand-named process variants
    /// (generic180) and operating-corner derivation (at()).
    [[nodiscard]] TechLibrary derived(std::string name, double vdd_v,
                                      double wire_cap_base_ff,
                                      double wire_cap_per_fanout_ff,
                                      const CellScaling& scaling) const;

    /// The library scaled to an operating corner: internal energies scale
    /// as (V/V₀)² with a linear temperature derating, delays follow the
    /// alpha-power law V/(V−Vth)^α relative to the native supply with their
    /// own linear temperature derating, wire capacitances scale with the
    /// load class, and the derived library's vdd() is the corner supply (so
    /// the ½·C·Vdd edge-charge term scales without further bookkeeping).
    /// The identity corner derives a bit-identical library (see Corner).
    /// The derived name is "<name>@<corner.key()>".
    [[nodiscard]] TechLibrary at(const Corner& corner) const;

    /// The internal-energy multiplier at() applies for @p corner.
    [[nodiscard]] double corner_energy_scale(const Corner& corner) const;

    /// The delay multiplier at() applies for @p corner.
    [[nodiscard]] double corner_delay_scale(const Corner& corner) const;

    /// The default generic 350 nm-class library (Vdd = 3.3 V).
    [[nodiscard]] static const TechLibrary& generic350();

    /// A scaled 180 nm-class variant (Vdd = 1.8 V) used to check that model
    /// conclusions are technology-independent. Generated from generic350()
    /// through derived() — the constants live in one place.
    [[nodiscard]] static const TechLibrary& generic180();

private:
    std::string name_;
    double vdd_v_;
    double wire_cap_base_ff_;
    double wire_cap_per_fanout_ff_;
    std::array<GateElectrical, kNumGateKinds> cells_;
};

} // namespace hdpm::gate
