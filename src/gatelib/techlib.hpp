#pragma once

#include <array>
#include <string>

#include "gatelib/gate.hpp"

namespace hdpm::gate {

/// Electrical characterization data of one cell kind.
///
/// These are the per-cell numbers the reference power simulator consumes:
/// switched capacitance plus a lumped internal (short-circuit + internal
/// node) energy per output transition, and a linear delay model
/// delay = intrinsic + slope · C_load.
struct GateElectrical {
    double input_cap_ff = 0.0;       ///< capacitance presented by each input pin [fF]
    double output_cap_ff = 0.0;      ///< intrinsic drain capacitance on the output [fF]
    double internal_energy_fj = 0.0; ///< internal energy per output transition [fJ]
    double intrinsic_delay_ps = 0.0; ///< unloaded propagation delay [ps]
    double delay_per_ff_ps = 0.0;    ///< delay slope versus load capacitance [ps/fF]
};

/// A synthetic technology library.
///
/// Substitute for the 0.35 µm standard-cell data behind the paper's
/// DesignWare + PowerMill flow. Absolute values are plausible-scale
/// fabrications; what matters for the macro-model experiments is the
/// *relative* sizing between cells and the presence of load-dependent delay
/// (which creates arrival-time skew and therefore glitching).
class TechLibrary {
public:
    /// Build a library from explicit per-kind data.
    TechLibrary(std::string name, double vdd_v, double wire_cap_base_ff,
                double wire_cap_per_fanout_ff,
                std::array<GateElectrical, kNumGateKinds> cells);

    /// Library name (for reports).
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Supply voltage [V].
    [[nodiscard]] double vdd() const noexcept { return vdd_v_; }

    /// Fixed wire capacitance added to every driven net [fF].
    [[nodiscard]] double wire_cap_base_ff() const noexcept { return wire_cap_base_ff_; }

    /// Additional wire capacitance per fanout pin [fF].
    [[nodiscard]] double wire_cap_per_fanout_ff() const noexcept
    {
        return wire_cap_per_fanout_ff_;
    }

    /// Electrical data of a cell kind.
    [[nodiscard]] const GateElectrical& spec(GateKind kind) const noexcept
    {
        return cells_[static_cast<std::size_t>(kind)];
    }

    /// The default generic 350 nm-class library (Vdd = 3.3 V).
    [[nodiscard]] static const TechLibrary& generic350();

    /// A scaled 180 nm-class variant (Vdd = 1.8 V) used to check that model
    /// conclusions are technology-independent.
    [[nodiscard]] static const TechLibrary& generic180();

private:
    std::string name_;
    double vdd_v_;
    double wire_cap_base_ff_;
    double wire_cap_per_fanout_ff_;
    std::array<GateElectrical, kNumGateKinds> cells_;
};

} // namespace hdpm::gate
