#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hdpm::util {

/// Exception thrown when an API precondition is violated.
class PreconditionError : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant is violated (a library bug
/// or an inconsistent object state reached through misuse).
class InvariantError : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Exception thrown for runtime failures (I/O, non-convergence, ...).
class RuntimeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

namespace detail {

template <typename Error, typename... Parts>
[[noreturn]] void throw_error(const char* file, int line, Parts&&... parts)
{
    std::ostringstream os;
    os << file << ':' << line << ": ";
    (os << ... << parts);
    throw Error(os.str());
}

} // namespace detail

} // namespace hdpm::util

/// Check a caller-facing precondition; throws PreconditionError on failure.
#define HDPM_REQUIRE(cond, ...)                                                          \
    do {                                                                                 \
        if (!(cond)) {                                                                   \
            ::hdpm::util::detail::throw_error<::hdpm::util::PreconditionError>(          \
                __FILE__, __LINE__, "precondition failed: " #cond " — ", __VA_ARGS__);   \
        }                                                                                \
    } while (false)

/// Check an internal invariant; throws InvariantError on failure.
#define HDPM_ASSERT(cond, ...)                                                           \
    do {                                                                                 \
        if (!(cond)) {                                                                   \
            ::hdpm::util::detail::throw_error<::hdpm::util::InvariantError>(             \
                __FILE__, __LINE__, "invariant failed: " #cond " — ", __VA_ARGS__);      \
        }                                                                                \
    } while (false)

/// Signal a runtime failure with a formatted message.
#define HDPM_FAIL(...)                                                                   \
    ::hdpm::util::detail::throw_error<::hdpm::util::RuntimeError>(__FILE__, __LINE__,    \
                                                                  __VA_ARGS__)
