#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace hdpm::util {

/// A fixed-width vector of bits, up to 64 bits wide.
///
/// Bit 0 is the least-significant bit. The width is part of the value: two
/// BitVecs compare equal only if both width and bits match. All datapath
/// module inputs in this library are expressed as a single BitVec formed by
/// concatenating the operands (see dpgen), so 64 bits comfortably covers the
/// largest supported module (two 32-bit operands).
class BitVec {
public:
    static constexpr int kMaxWidth = 64;

    /// An empty (zero-width) vector.
    constexpr BitVec() = default;

    /// A vector of @p width bits initialized from the low bits of @p bits.
    /// Bits of @p bits above @p width are masked off.
    constexpr BitVec(int width, std::uint64_t bits = 0)
        : width_(width), bits_(bits & mask(width))
    {
        if (width < 0 || width > kMaxWidth) {
            throw PreconditionError("BitVec width out of range");
        }
    }

    /// Number of bits in the vector.
    [[nodiscard]] constexpr int width() const noexcept { return width_; }

    /// The packed bit pattern (bits above width() are zero).
    [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return bits_; }

    /// Value of bit @p i (0 = LSB).
    [[nodiscard]] constexpr bool get(int i) const
    {
        check_index(i);
        return (bits_ >> i) & 1U;
    }

    /// Set bit @p i to @p value.
    constexpr void set(int i, bool value)
    {
        check_index(i);
        const std::uint64_t m = std::uint64_t{1} << i;
        bits_ = value ? (bits_ | m) : (bits_ & ~m);
    }

    /// Flip bit @p i.
    constexpr void flip(int i)
    {
        check_index(i);
        bits_ ^= std::uint64_t{1} << i;
    }

    /// Number of one-bits.
    [[nodiscard]] constexpr int popcount() const noexcept { return std::popcount(bits_); }

    /// Number of zero-bits.
    [[nodiscard]] constexpr int zerocount() const noexcept { return width_ - popcount(); }

    /// Hamming distance |{i : u_i != v_i}| between two equal-width vectors
    /// (eq. 1 of the paper).
    [[nodiscard]] static constexpr int hamming_distance(const BitVec& u, const BitVec& v)
    {
        if (u.width_ != v.width_) {
            throw PreconditionError("hamming_distance: width mismatch");
        }
        return std::popcount(u.bits_ ^ v.bits_);
    }

    /// Number of bit positions that are zero in both vectors — the "stable
    /// zero" count used by the enhanced Hd-model (section 3 of the paper).
    [[nodiscard]] static constexpr int stable_zeros(const BitVec& u, const BitVec& v)
    {
        if (u.width_ != v.width_) {
            throw PreconditionError("stable_zeros: width mismatch");
        }
        return std::popcount(~(u.bits_ | v.bits_) & mask(u.width_));
    }

    /// Number of bit positions that are one in both vectors.
    [[nodiscard]] static constexpr int stable_ones(const BitVec& u, const BitVec& v)
    {
        if (u.width_ != v.width_) {
            throw PreconditionError("stable_ones: width mismatch");
        }
        return std::popcount(u.bits_ & v.bits_);
    }

    /// Concatenation: @p hi occupies the high bits, @c this the low bits.
    [[nodiscard]] constexpr BitVec concat_high(const BitVec& hi) const
    {
        if (width_ + hi.width_ > kMaxWidth) {
            throw PreconditionError("concat exceeds kMaxWidth");
        }
        return BitVec{width_ + hi.width_, bits_ | (hi.bits_ << width_)};
    }

    /// Extract @p count bits starting at @p lsb as a new vector.
    [[nodiscard]] constexpr BitVec slice(int lsb, int count) const
    {
        if (lsb < 0 || count < 0 || lsb + count > width_) {
            throw PreconditionError("slice out of range");
        }
        return BitVec{count, bits_ >> lsb};
    }

    /// Bitwise XOR of equal-width vectors.
    [[nodiscard]] friend constexpr BitVec operator^(const BitVec& a, const BitVec& b)
    {
        if (a.width_ != b.width_) {
            throw PreconditionError("operator^: width mismatch");
        }
        return BitVec{a.width_, a.bits_ ^ b.bits_};
    }

    friend constexpr bool operator==(const BitVec&, const BitVec&) = default;

    /// MSB-first string of '0'/'1' characters.
    [[nodiscard]] std::string to_string() const;

private:
    static constexpr std::uint64_t mask(int width) noexcept
    {
        return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    }

    constexpr void check_index(int i) const
    {
        if (i < 0 || i >= width_) {
            throw PreconditionError("BitVec index out of range");
        }
    }

    int width_ = 0;
    std::uint64_t bits_ = 0;
};

/// Encode a (possibly negative) integer as a two's-complement bit pattern of
/// @p width bits. The value must be representable in that width.
[[nodiscard]] BitVec encode_twos_complement(std::int64_t value, int width);

/// Decode a two's-complement bit pattern back to a signed integer.
[[nodiscard]] std::int64_t decode_twos_complement(const BitVec& v);

/// Decode an unsigned bit pattern.
[[nodiscard]] std::uint64_t decode_unsigned(const BitVec& v);

} // namespace hdpm::util
