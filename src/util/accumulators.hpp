#pragma once

#include <cstdint>

namespace hdpm::util {

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
public:
    /// Fold one sample into the accumulator.
    void add(double x) noexcept
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        sum_ += x;
        sum_abs_ += x < 0.0 ? -x : x;
        if (count_ == 1 || x < min_) {
            min_ = x;
        }
        if (count_ == 1 || x > max_) {
            max_ = x;
        }
    }

    /// Merge another accumulator's samples into this one.
    void merge(const RunningStats& other) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double sum_abs() const noexcept { return sum_abs_; }
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    /// Population variance (0 for fewer than two samples).
    [[nodiscard]] double variance() const noexcept
    {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
    }

    /// Population standard deviation.
    [[nodiscard]] double stddev() const noexcept;

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double sum_abs_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Lag-1 autocorrelation accumulator for a scalar time series.
///
/// Feeds pairs (x[t-1], x[t]) incrementally; rho() returns the sample
/// lag-1 autocorrelation coefficient used as the word-level statistic ρ of
/// the Landman data model (section 6.1 of the paper).
class AutocorrAccumulator {
public:
    /// Append the next sample of the series.
    void add(double x) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return stats_.count(); }
    [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
    [[nodiscard]] double variance() const noexcept { return stats_.variance(); }

    /// Sample lag-1 autocorrelation; 0 if fewer than two samples or the
    /// series is constant.
    [[nodiscard]] double rho() const noexcept;

private:
    RunningStats stats_;
    double prev_ = 0.0;
    bool has_prev_ = false;
    double cross_sum_ = 0.0; // Σ x[t-1]·x[t]
    double lag_sum_ = 0.0;   // Σ x[t-1] over lagged pairs
    double lead_sum_ = 0.0;  // Σ x[t]   over lagged pairs
    std::uint64_t pairs_ = 0;
};

} // namespace hdpm::util
