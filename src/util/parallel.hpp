#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <vector>

namespace hdpm::util {

/// One round of splitmix64 on a single value. Used to derive decorrelated
/// per-shard seeds (`seed ^ splitmix64(shard)`) so that shard streams are
/// statistically independent of each other and of the master stream.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// A small joining thread pool.
///
/// Each parallel_for / parallel_map call spawns up to size()-1 worker
/// threads, participates in the work from the calling thread, and joins all
/// workers before returning — no detached state survives a call, so nested
/// and concurrent use from multiple threads is safe by construction.
///
/// Guarantees:
///  - parallel_map preserves input ordering: result[i] is fn(i) regardless
///    of which thread ran it or when it finished.
///  - The first exception (the one thrown by the lowest index among failed
///    tasks) is rethrown on the calling thread after all workers join;
///    indices not yet started when a task fails are skipped.
///  - A pool of size 1 (or n <= 1) runs everything inline on the calling
///    thread, which keeps single-threaded runs trivially deterministic and
///    debuggable.
class ThreadPool {
public:
    /// @p threads = 0 selects std::thread::hardware_concurrency().
    explicit ThreadPool(unsigned threads = 0);

    /// Number of threads a call may use (including the calling thread).
    [[nodiscard]] unsigned size() const noexcept { return threads_; }

    /// Run fn(0..n-1), blocking until all invocations finish.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) const;

    /// Run fn(0..n-1) and collect the results in input order.
    template <typename Fn>
    [[nodiscard]] auto parallel_map(std::size_t n, Fn&& fn) const
        -> std::vector<std::invoke_result_t<Fn&, std::size_t>>
    {
        using T = std::invoke_result_t<Fn&, std::size_t>;
        std::vector<std::optional<T>> slots(n);
        parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> out;
        out.reserve(n);
        for (auto& slot : slots) {
            out.push_back(std::move(*slot));
        }
        return out;
    }

private:
    unsigned threads_;
};

} // namespace hdpm::util
