#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hdpm::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

std::uint64_t Rng::next_u64() noexcept
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept
{
    // 53 high-quality mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n)
{
    HDPM_REQUIRE(n > 0, "uniform_int(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x = next_u64();
    while (x >= limit) {
        x = next_u64();
    }
    return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    HDPM_REQUIRE(lo <= hi, "empty range [", lo, ", ", hi, "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform_int(span));
}

bool Rng::bernoulli(double p) noexcept
{
    return uniform() < p;
}

double Rng::gaussian() noexcept
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) {
        u1 = uniform();
    }
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept
{
    return mean + stddev * gaussian();
}

Rng Rng::split() noexcept
{
    return Rng{next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL};
}

} // namespace hdpm::util
