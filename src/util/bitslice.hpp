#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>

namespace hdpm::util {

/// Carry-save-adder vertical counter: counts, for each of 64 bit positions,
/// how many of the words fed to add() had that bit set — the bit-sliced
/// (Harley–Seal style) replacement for a per-bit `.get(i)` loop.
///
/// Instead of testing width bits per word, the counter keeps kDepth
/// "bit planes": plane k holds bit k of a per-position tally, so adding a
/// word is a ripple-carry add across the planes (a handful of AND/XOR ops,
/// independent of width). Every 2^kDepth − 1 words the planes are flushed
/// into 64-bit per-position totals, which amortizes to O(1) work per word.
/// All arithmetic is integer-exact: totals are bit-identical to the naive
/// per-bit loop for any add/flush interleaving.
class VerticalCounter {
public:
    /// Plane count: flush is forced every 2^kDepth − 1 added words.
    static constexpr int kDepth = 6;

    /// Accumulate one word (bit i of @p word increments position i).
    void add(std::uint64_t word) noexcept
    {
        std::uint64_t carry = word;
        for (int k = 0; k < kDepth && carry != 0; ++k) {
            const std::uint64_t t = planes_[static_cast<std::size_t>(k)] & carry;
            planes_[static_cast<std::size_t>(k)] ^= carry;
            carry = t;
        }
        if (++pending_ == (1 << kDepth) - 1) {
            flush();
        }
    }

    /// Drain the planes into the per-position totals. Called automatically
    /// when the planes would overflow; call once more before totals().
    void flush() noexcept
    {
        for (int k = 0; k < kDepth; ++k) {
            std::uint64_t plane = planes_[static_cast<std::size_t>(k)];
            planes_[static_cast<std::size_t>(k)] = 0;
            while (plane != 0) {
                const int i = std::countr_zero(plane);
                plane &= plane - 1;
                totals_[static_cast<std::size_t>(i)] += std::uint64_t{1} << k;
            }
        }
        pending_ = 0;
    }

    /// Per-position totals of every word added so far (flushes first).
    [[nodiscard]] std::span<const std::uint64_t, 64> totals() noexcept
    {
        flush();
        return totals_;
    }

private:
    std::array<std::uint64_t, kDepth> planes_{};
    std::array<std::uint64_t, 64> totals_{};
    int pending_ = 0;
};

} // namespace hdpm::util
