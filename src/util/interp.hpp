#pragma once

#include <span>

namespace hdpm::util {

/// Piecewise-linear interpolation of (xs, ys) samples at @p x.
///
/// xs must be strictly increasing; values outside [xs.front(), xs.back()]
/// are clamped to the end samples (the macro-model never extrapolates
/// coefficients beyond Hd = m). Used to evaluate the Hd-model at the real
/// valued average Hamming distance Hd_avg (section 6.2 of the paper).
[[nodiscard]] double interp_linear(std::span<const double> xs, std::span<const double> ys,
                                   double x);

/// Interpolate a table sampled on the integer grid 1..n (y[0] is the sample
/// at x = 1). Equivalent to interp_linear with xs = {1, 2, ..., n}.
[[nodiscard]] double interp_on_unit_grid(std::span<const double> ys, double x);

} // namespace hdpm::util
