#include "util/interp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hdpm::util {

double interp_linear(std::span<const double> xs, std::span<const double> ys, double x)
{
    HDPM_REQUIRE(xs.size() == ys.size(), "interp_linear: length mismatch");
    HDPM_REQUIRE(!xs.empty(), "interp_linear: empty table");
    for (std::size_t i = 1; i < xs.size(); ++i) {
        HDPM_REQUIRE(xs[i] > xs[i - 1], "interp_linear: xs not strictly increasing");
    }

    if (x <= xs.front()) {
        return ys.front();
    }
    if (x >= xs.back()) {
        return ys.back();
    }
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    const std::size_t lo = hi - 1;
    const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return ys[lo] + t * (ys[hi] - ys[lo]);
}

double interp_on_unit_grid(std::span<const double> ys, double x)
{
    HDPM_REQUIRE(!ys.empty(), "interp_on_unit_grid: empty table");
    if (x <= 1.0) {
        return ys.front();
    }
    const double last = static_cast<double>(ys.size());
    if (x >= last) {
        return ys.back();
    }
    const double fidx = x - 1.0;
    const auto lo = static_cast<std::size_t>(std::floor(fidx));
    const double t = fidx - static_cast<double>(lo);
    return ys[lo] + t * (ys[lo + 1] - ys[lo]);
}

} // namespace hdpm::util
