#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hdpm::util {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// A plain-text table formatter used by the benchmark harnesses to print
/// paper-style tables with aligned columns.
class TextTable {
public:
    /// Set the header row; defines the number of columns.
    void set_header(std::vector<std::string> header);

    /// Per-column alignment (defaults to Right for every column).
    void set_alignment(std::vector<Align> alignment);

    /// Append a data row; must match the header width if one was set.
    void add_row(std::vector<std::string> row);

    /// Append a horizontal rule.
    void add_rule();

    /// Render the table.
    [[nodiscard]] std::string str() const;

    /// Render the table to a stream.
    void print(std::ostream& os) const;

    /// Format a double with fixed precision (helper for row building).
    [[nodiscard]] static std::string fmt(double value, int precision = 2);

    /// Format an integer.
    [[nodiscard]] static std::string fmt(long long value);

private:
    struct Row {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::vector<std::string> header_;
    std::vector<Align> alignment_;
    std::vector<Row> rows_;
};

/// Print a titled section header ("== title ==") to the stream; keeps the
/// bench binaries' output uniform.
void print_section(std::ostream& os, const std::string& title);

} // namespace hdpm::util
