#include "util/linalg.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "util/fault.hpp"

namespace hdpm::util {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() > 0 ? rows.begin()->size() : 0)
{
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        HDPM_REQUIRE(row.size() == cols_, "ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::transposed() const
{
    Matrix t{cols_, rows_};
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t.at(c, r) = at(r, c);
        }
    }
    return t;
}

Matrix operator*(const Matrix& a, const Matrix& b)
{
    HDPM_REQUIRE(a.cols() == b.rows(), "dimension mismatch: ", a.cols(), " vs ", b.rows());
    Matrix out{a.rows(), b.cols()};
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double av = a.at(r, k);
            if (av == 0.0) {
                continue;
            }
            for (std::size_t c = 0; c < b.cols(); ++c) {
                out.at(r, c) += av * b.at(k, c);
            }
        }
    }
    return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const
{
    HDPM_REQUIRE(x.size() == cols_, "dimension mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            acc += at(r, c) * x[c];
        }
        y[r] = acc;
    }
    return y;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    HDPM_REQUIRE(a.cols() == n && b.size() == n, "solve_linear needs a square system");

    // Validate inputs and establish the problem scale in one pass: the
    // singularity test below is relative to the largest matrix entry, so a
    // well-conditioned system in attofarads passes and a rank-deficient one
    // in kilofarads fails — unlike an absolute epsilon, which gets both
    // wrong. Non-finite entries (NaN records, overflowed accumulators) are
    // rejected up front instead of silently poisoning the solution.
    double scale = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            const double v = a.at(r, c);
            if (!std::isfinite(v)) {
                FaultContext context;
                context.component = "solve_linear";
                context.detail = "non-finite matrix entry at (" + std::to_string(r) +
                                 ", " + std::to_string(c) + ")";
                throw FaultError{FaultKind::RegressionIllConditioned,
                                 std::move(context)};
            }
            scale = std::max(scale, std::abs(v));
        }
        if (!std::isfinite(b[r])) {
            FaultContext context;
            context.component = "solve_linear";
            context.detail = "non-finite rhs entry at row " + std::to_string(r);
            throw FaultError{FaultKind::RegressionIllConditioned, std::move(context)};
        }
    }
    // Relative pivot floor: ~n·ε times the magnitude of the largest entry.
    const double pivot_floor =
        scale * static_cast<double>(n) * std::numeric_limits<double>::epsilon();

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) {
                pivot = r;
            }
        }
        if (std::abs(a.at(pivot, col)) <= pivot_floor) {
            FaultContext context;
            context.component = "solve_linear";
            context.detail = "singular matrix: pivot " +
                             std::to_string(std::abs(a.at(pivot, col))) +
                             " at column " + std::to_string(col) +
                             " below scale-aware floor " + std::to_string(pivot_floor);
            throw FaultError{FaultKind::RegressionIllConditioned, std::move(context)};
        }
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(a.at(col, c), a.at(pivot, c));
            }
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a.at(r, col) / a.at(col, col);
            if (f == 0.0) {
                continue;
            }
            for (std::size_t c = col; c < n; ++c) {
                a.at(r, c) -= f * a.at(col, c);
            }
            b[r] -= f * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) {
            acc -= a.at(ri, c) * x[c];
        }
        x[ri] = acc / a.at(ri, ri);
    }
    return x;
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  LeastSquaresReport* report)
{
    HDPM_REQUIRE(a.rows() == b.size(), "least_squares: row count vs rhs mismatch");
    HDPM_REQUIRE(a.rows() >= 1 && a.cols() >= 1, "least_squares: empty system");

    const std::size_t k = a.cols();
    // Normal equations: AᵀA·x = Aᵀb.
    Matrix ata = a.transposed() * a;
    std::vector<double> atb(k, 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < k; ++c) {
            atb[c] += a.at(r, c) * b[r];
        }
    }

    if (HDPM_FAULT_FIRE(FaultPoint::RegressionRank)) {
        // Injected rank deficiency: collapse every row of the normal
        // equations onto the first one, which forces the ridge fallback
        // below (the outcome fault_injection_test asserts).
        for (std::size_t r = 1; r < k; ++r) {
            for (std::size_t c = 0; c < k; ++c) {
                ata.at(r, c) = ata.at(0, c);
            }
            atb[r] = atb[0];
        }
    }

    // A well-posed system solves plainly with zero regularization bias.
    try {
        std::vector<double> x = solve_linear(ata, atb);
        if (report != nullptr) {
            *report = LeastSquaresReport{};
        }
        return x;
    } catch (const FaultError& error) {
        if (error.kind() != FaultKind::RegressionIllConditioned) {
            throw;
        }
        // Graceful degradation: ill-conditioned (rank-deficient design,
        // e.g. duplicated prototypes) — retry with a trace-scaled ridge
        // term, which picks the minimum-norm-flavoured solution instead of
        // failing the whole fit. The fallback is recorded, never silent.
        double trace = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            trace += ata.at(i, i);
        }
        const double lambda = 1e-10 * (trace > 0.0 ? trace : 1.0);
        for (std::size_t i = 0; i < k; ++i) {
            ata.at(i, i) += lambda;
        }
        if (report != nullptr) {
            report->ridge_fallback = true;
            report->lambda = lambda;
            report->detail = error.context().detail;
        }
        return solve_linear(std::move(ata), std::move(atb));
    }
}

double dot(std::span<const double> a, std::span<const double> b)
{
    HDPM_REQUIRE(a.size() == b.size(), "dot: length mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc += a[i] * b[i];
    }
    return acc;
}

} // namespace hdpm::util
