#include "util/fault.hpp"

#include <sstream>

#include "util/parallel.hpp"

namespace hdpm::util {

const char* fault_kind_name(FaultKind kind) noexcept
{
    switch (kind) {
    case FaultKind::SimBudgetExceeded:
        return "SimBudgetExceeded";
    case FaultKind::ModelFileCorrupt:
        return "ModelFileCorrupt";
    case FaultKind::RegressionIllConditioned:
        return "RegressionIllConditioned";
    case FaultKind::ShardFailed:
        return "ShardFailed";
    case FaultKind::CheckpointCorrupt:
        return "CheckpointCorrupt";
    case FaultKind::IoError:
        return "IoError";
    case FaultKind::Overloaded:
        return "Overloaded";
    case FaultKind::ProtocolError:
        return "ProtocolError";
    case FaultKind::LeaseExpired:
        return "LeaseExpired";
    case FaultKind::WorkerLost:
        return "WorkerLost";
    case FaultKind::RetriesExhausted:
        return "RetriesExhausted";
    }
    return "UnknownFault";
}

std::string FaultContext::describe() const
{
    std::ostringstream os;
    if (!component.empty()) {
        os << component;
    }
    if (bitwidth >= 0) {
        os << " (m=" << bitwidth << ')';
    }
    if (shard >= 0) {
        os << " shard " << shard;
    }
    if (record >= 0) {
        os << " record " << record;
    }
    if (has_vectors) {
        os << std::hex << " u=0x" << vector_u << " v=0x" << vector_v << std::dec;
    }
    if (!detail.empty()) {
        os << (os.tellp() > 0 ? ": " : "") << detail;
    }
    return os.str();
}

namespace {

std::string fault_message(FaultKind kind, const FaultContext& context)
{
    std::string msg = fault_kind_name(kind);
    const std::string body = context.describe();
    if (!body.empty()) {
        msg += ": ";
        msg += body;
    }
    return msg;
}

FaultInjector* g_injector = nullptr;

} // namespace

FaultError::FaultError(FaultKind kind, FaultContext context)
    : RuntimeError(fault_message(kind, context)), kind_(kind), context_(std::move(context))
{
}

void FaultInjector::arm(FaultPoint point, std::uint64_t countdown)
{
    Point& p = points_[static_cast<std::size_t>(point)];
    p.armed = true;
    p.countdown = countdown == 0 ? 1 : countdown;
}

bool FaultInjector::fire(FaultPoint point) noexcept
{
    Point& p = points_[static_cast<std::size_t>(point)];
    if (!p.armed) {
        return false;
    }
    if (--p.countdown > 0) {
        return false;
    }
    p.armed = false;
    ++p.fired;
    return true;
}

std::uint64_t FaultInjector::fired_count(FaultPoint point) const noexcept
{
    return points_[static_cast<std::size_t>(point)].fired;
}

void FaultInjector::mutate_payload(FaultPoint point, std::string& payload)
{
    if (!fire(point)) {
        return;
    }
    // Never touch the first line: the corruption models a payload damaged
    // behind an intact fingerprint header.
    const std::size_t body_start = payload.find('\n');
    const std::size_t start = body_start == std::string::npos ? 0 : body_start + 1;
    if (start >= payload.size()) {
        return;
    }
    const std::uint64_t h =
        splitmix64(seed_ ^ static_cast<std::uint64_t>(payload.size()) ^
                   static_cast<std::uint64_t>(point));
    const std::size_t body = payload.size() - start;
    if (point == FaultPoint::ModelBitFlip) {
        // Flip the high bit of a seed-chosen body byte. Bit 7 turns any
        // ASCII token byte into a non-parsable one, so the damage is
        // always detectable; the final "end\n" marker is excluded so the
        // corruption cannot land in trailing bytes a parser never reads.
        const std::size_t span = body > 5 ? body - 5 : body;
        const std::size_t pos = start + static_cast<std::size_t>(h % span);
        payload[pos] = static_cast<char>(payload[pos] ^ 0x80);
    } else {
        // Short write: keep a strict, seed-chosen prefix of the body —
        // exactly what a killed process leaves behind mid-write.
        const std::size_t keep = body <= 1 ? 0 : static_cast<std::size_t>(h % (body - 1));
        payload.resize(start + keep);
    }
}

FaultInjector* FaultInjector::install(FaultInjector* injector) noexcept
{
    FaultInjector* previous = g_injector;
    g_injector = injector;
    return previous;
}

FaultInjector* FaultInjector::instance() noexcept
{
    return g_injector;
}

} // namespace hdpm::util
