#include "util/bitvec.hpp"

namespace hdpm::util {

std::string BitVec::to_string() const
{
    std::string s;
    s.reserve(static_cast<std::size_t>(width_));
    for (int i = width_ - 1; i >= 0; --i) {
        s.push_back(get(i) ? '1' : '0');
    }
    return s;
}

BitVec encode_twos_complement(std::int64_t value, int width)
{
    HDPM_REQUIRE(width >= 1 && width <= BitVec::kMaxWidth, "width=", width);
    if (width < 64) {
        const std::int64_t lo = -(std::int64_t{1} << (width - 1));
        const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
        HDPM_REQUIRE(value >= lo && value <= hi, "value ", value,
                     " not representable in ", width, " bits");
    }
    return BitVec{width, static_cast<std::uint64_t>(value)};
}

std::int64_t decode_twos_complement(const BitVec& v)
{
    HDPM_REQUIRE(v.width() >= 1, "empty BitVec");
    std::uint64_t bits = v.raw();
    if (v.width() < 64 && v.get(v.width() - 1)) {
        bits |= ~((std::uint64_t{1} << v.width()) - 1); // sign-extend
    }
    return static_cast<std::int64_t>(bits);
}

std::uint64_t decode_unsigned(const BitVec& v)
{
    return v.raw();
}

} // namespace hdpm::util
