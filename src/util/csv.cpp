#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace hdpm::util {

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows)
{
    std::ofstream out{path};
    if (!out) {
        HDPM_FAIL("cannot open '", path, "' for writing");
    }
    for (std::size_t i = 0; i < header.size(); ++i) {
        out << (i == 0 ? "" : ",") << header[i];
    }
    out << '\n';
    for (const auto& row : rows) {
        HDPM_REQUIRE(row.size() == header.size(), "row width mismatch in '", path, "'");
        for (std::size_t i = 0; i < row.size(); ++i) {
            out << (i == 0 ? "" : ",") << row[i];
        }
        out << '\n';
    }
    if (!out) {
        HDPM_FAIL("write to '", path, "' failed");
    }
}

CsvTable read_csv(const std::string& path)
{
    std::ifstream in{path};
    if (!in) {
        HDPM_FAIL("cannot open '", path, "' for reading");
    }
    CsvTable table;
    std::string line;
    if (!std::getline(in, line)) {
        HDPM_FAIL("'", path, "' is empty");
    }
    {
        std::istringstream ls{line};
        std::string cell;
        while (std::getline(ls, cell, ',')) {
            table.header.push_back(cell);
        }
    }
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        std::istringstream ls{line};
        std::string cell;
        std::vector<double> row;
        while (std::getline(ls, cell, ',')) {
            try {
                row.push_back(std::stod(cell));
            } catch (const std::exception&) {
                HDPM_FAIL("'", path, "': non-numeric cell '", cell, "'");
            }
        }
        if (row.size() != table.header.size()) {
            HDPM_FAIL("'", path, "': row width ", row.size(), " vs header ",
                      table.header.size());
        }
        table.rows.push_back(std::move(row));
    }
    return table;
}

} // namespace hdpm::util
