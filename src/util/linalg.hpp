#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hdpm::util {

/// A small dense row-major matrix of doubles.
///
/// Sized for the regression problems in this library (complexity bases have
/// 2–3 terms, prototype sets ≤ a dozen rows); not a general-purpose BLAS.
class Matrix {
public:
    Matrix() = default;

    /// A rows×cols matrix of zeros.
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {
    }

    /// Construct from nested initializer lists: Matrix{{1,2},{3,4}}.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] double& at(std::size_t r, std::size_t c)
    {
        check(r, c);
        return data_[r * cols_ + c];
    }

    [[nodiscard]] double at(std::size_t r, std::size_t c) const
    {
        check(r, c);
        return data_[r * cols_ + c];
    }

    /// Matrix transpose.
    [[nodiscard]] Matrix transposed() const;

    /// Matrix product; inner dimensions must agree.
    friend Matrix operator*(const Matrix& a, const Matrix& b);

    /// Matrix–vector product.
    [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

private:
    void check(std::size_t r, std::size_t c) const
    {
        if (r >= rows_ || c >= cols_) {
            throw PreconditionError("Matrix index out of range");
        }
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solve the square system A·x = b by Gaussian elimination with partial
/// pivoting. Inputs must be finite and A numerically non-singular under a
/// scale-aware test (a pivot is singular relative to the largest matrix
/// entry, not against an absolute epsilon); violations throw
/// FaultError(RegressionIllConditioned) — NaN records fail loudly instead
/// of propagating NaN coefficients silently.
[[nodiscard]] std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// What least_squares did to produce its solution (optional out-param).
struct LeastSquaresReport {
    bool ridge_fallback = false; ///< normal equations were ill-conditioned
    double lambda = 0.0;         ///< ridge strength used (0 for a plain solve)
    std::string detail;          ///< cause of the fallback, empty otherwise
};

/// Least-squares solution of the overdetermined system A·x ≈ b via the
/// normal equations. A well-posed system is solved exactly (no
/// regularization bias); if the normal equations are ill-conditioned
/// (rank-deficient design, e.g. a degenerate prototype set) the solve
/// degrades to a ridge-regularized system with λ scaled to the trace and
/// records the fallback in @p report instead of failing.
[[nodiscard]] std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                                LeastSquaresReport* report = nullptr);

/// Dot product of equal-length vectors.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

} // namespace hdpm::util
