#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace hdpm::util {

/// Failure taxonomy of the characterization runtime. Every structured
/// failure carries one of these kinds plus a FaultContext, so callers can
/// dispatch on the class of fault (quarantine, retry, degrade, abort)
/// instead of parsing message strings.
enum class FaultKind : std::uint8_t {
    /// The event simulator exceeded max_events_per_cycle (runaway
    /// oscillation or an absurdly small budget). Carries the offending
    /// (u, v) vector pair for single-record replay.
    SimBudgetExceeded,

    /// A stored model file has a valid fingerprint header but a corrupt
    /// body (truncation, bit rot, non-finite coefficients). The library
    /// quarantines such files and recharacterizes.
    ModelFileCorrupt,

    /// A linear system was numerically singular / non-finite. least_squares
    /// degrades to a ridge-regularized solve and records the fallback.
    RegressionIllConditioned,

    /// A stimulus shard failed; in non-strict runs the failure is captured
    /// in CharRunStats::shard_failures and sibling shards continue.
    ShardFailed,

    /// A checkpoint journal exists but is malformed (e.g. a short write
    /// from a killed run). The journal is quarantined and the run starts
    /// fresh rather than resuming from bad state.
    CheckpointCorrupt,

    /// A filesystem operation (publish, rename, remove) failed.
    IoError,

    /// A serving-side bounded queue was full and the request was shed
    /// rather than queued unboundedly. Clients should back off and retry;
    /// the daemon reports this as a structured response, never by hanging
    /// or silently dropping the connection.
    Overloaded,

    /// A wire message violated the serving protocol (bad magic, truncated
    /// frame, out-of-range field). The offending connection is closed
    /// after the error response; other connections are unaffected.
    ProtocolError,

    /// A fleet worker's lease on a shard range expired (its heartbeat went
    /// stale past the TTL) and the range was handed to another worker. A
    /// worker observing its own lease gone must abandon the range without
    /// publishing; the context carries the range so the abandonment is
    /// replayable.
    LeaseExpired,

    /// The fleet coordinator observed a worker die (lease expired with no
    /// published result, or a corrupt lease file left behind by a kill).
    /// Informational on the coordinator side: the range is re-leased and
    /// the run continues; strict runs can escalate.
    WorkerLost,

    /// A bounded retry loop (e.g. a client reconnect with exponential
    /// backoff) exhausted its attempt or time budget without succeeding.
    /// The context's detail records the attempts made and the last
    /// underlying failure.
    RetriesExhausted,
};

/// Stable short name of a fault kind (for logs, reports and tests).
[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// Everything needed to locate and replay a failure: which component it
/// happened in, on which (module, bitwidth) instance, in which shard and
/// record of the stimulus plan, and — when the fault occurred inside a
/// simulated transition — the exact input vector pair, so one record can
/// be re-simulated in isolation.
struct FaultContext {
    std::string component;      ///< netlist/module/file the fault hit
    int bitwidth = -1;          ///< module input bits m (-1 = n/a)
    std::int64_t shard = -1;    ///< stimulus shard index (-1 = n/a)
    std::int64_t record = -1;   ///< record index within the shard (-1 = n/a)
    std::uint64_t vector_u = 0; ///< pre-transition input vector (raw bits)
    std::uint64_t vector_v = 0; ///< applied input vector (raw bits)
    bool has_vectors = false;   ///< vector_u / vector_v are meaningful
    std::string detail;         ///< free-form cause description

    /// One-line human-readable rendering (also used for what()).
    [[nodiscard]] std::string describe() const;
};

/// A structured runtime failure: FaultKind + FaultContext. Derives from
/// RuntimeError so existing catch sites keep working unchanged.
class FaultError : public RuntimeError {
public:
    FaultError(FaultKind kind, FaultContext context);

    [[nodiscard]] FaultKind kind() const noexcept { return kind_; }
    [[nodiscard]] const FaultContext& context() const noexcept { return context_; }

    /// Mutable context access so fault boundaries (e.g. the shard loop)
    /// can enrich a propagating fault with location tags before rethrow.
    [[nodiscard]] FaultContext& context() noexcept { return context_; }

private:
    FaultKind kind_;
    FaultContext context_;
};

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// Named injection points wired into the production code paths (behind the
/// HDPM_FAULT_INJECTION compile-time gate — see below).
enum class FaultPoint : std::uint8_t {
    ModelShortWrite,      ///< truncate a model payload before publish
    ModelBitFlip,         ///< flip one payload bit before publish
    ShardException,       ///< throw on entry of a stimulus shard
    EventBudget,          ///< force the event budget to zero for one apply
    RegressionRank,       ///< degrade normal equations to rank one
    CheckpointShortWrite, ///< truncate a checkpoint journal before publish
    LeaseCorrupt,         ///< corrupt a fleet lease payload before publish
    HeartbeatSkew,        ///< backdate a heartbeat as if the clock jumped
};

inline constexpr std::size_t kNumFaultPoints = 8;

/// A deterministic, seeded fault injector for end-to-end testing of every
/// degradation path. Each point is armed with a countdown: the N-th time
/// execution passes the point it fires (once), every earlier and later
/// pass is a no-op. Payload corruption (short writes, bit flips) derives
/// its position from the seed and the payload size, so a given
/// (seed, countdown) always produces the identical corruption.
///
/// Installation is process-global and not thread-safe by design: tests
/// install an injector, run the scenario, and uninstall. Production code
/// never installs one, and with HDPM_FAULT_INJECTION compiled out (the
/// default in Release builds) the hooks vanish entirely.
class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed = 1) : seed_(seed) {}

    /// Arm @p point to fire on its @p countdown-th hit (1 = next hit).
    void arm(FaultPoint point, std::uint64_t countdown = 1);

    /// True when the point is armed and this hit is the firing one.
    /// Decrements the countdown on every call while armed.
    [[nodiscard]] bool fire(FaultPoint point) noexcept;

    /// Number of times @p point fired since construction.
    [[nodiscard]] std::uint64_t fired_count(FaultPoint point) const noexcept;

    /// Corrupt @p payload in place if the matching point fires:
    /// ModelShortWrite / CheckpointShortWrite truncate to a seed-derived
    /// fraction; ModelBitFlip flips one seed-derived bit. The header line
    /// (up to and including the first '\n') is never touched, so the
    /// corruption models "valid header, bad body".
    void mutate_payload(FaultPoint point, std::string& payload);

    /// Install @p injector as the process-global instance (nullptr
    /// uninstalls). Returns the previous instance.
    static FaultInjector* install(FaultInjector* injector) noexcept;

    /// The installed instance, or nullptr.
    [[nodiscard]] static FaultInjector* instance() noexcept;

private:
    struct Point {
        bool armed = false;
        std::uint64_t countdown = 0;
        std::uint64_t fired = 0;
    };

    std::uint64_t seed_;
    std::array<Point, kNumFaultPoints> points_{};
};

/// RAII installer: installs an injector for one scope (tests).
class ScopedFaultInjector {
public:
    explicit ScopedFaultInjector(FaultInjector& injector)
        : previous_(FaultInjector::install(&injector))
    {
    }
    ~ScopedFaultInjector() { FaultInjector::install(previous_); }
    ScopedFaultInjector(const ScopedFaultInjector&) = delete;
    ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

private:
    FaultInjector* previous_;
};

} // namespace hdpm::util

// ---------------------------------------------------------------------------
// Injection hooks. With HDPM_FAULT_INJECTION unset (Release builds) they
// compile to constant-false / nothing — zero code, zero branches — which is
// what keeps the steady-state shard loop allocation- and overhead-free.
// ---------------------------------------------------------------------------
#if defined(HDPM_FAULT_INJECTION) && HDPM_FAULT_INJECTION

/// True when @p point is armed and fires at this hit.
#define HDPM_FAULT_FIRE(point)                                                           \
    (::hdpm::util::FaultInjector::instance() != nullptr &&                               \
     ::hdpm::util::FaultInjector::instance()->fire(point))

/// Corrupt @p payload (a std::string) in place if @p point fires.
#define HDPM_FAULT_MUTATE(point, payload)                                                \
    do {                                                                                 \
        if (auto* hdpm_inj_ = ::hdpm::util::FaultInjector::instance()) {                 \
            hdpm_inj_->mutate_payload(point, payload);                                   \
        }                                                                                \
    } while (false)

#else

#define HDPM_FAULT_FIRE(point) false
#define HDPM_FAULT_MUTATE(point, payload) ((void)0)

#endif
