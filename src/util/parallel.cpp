#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace hdpm::util {

std::uint64_t splitmix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

ThreadPool::ThreadPool(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
    }
    if (threads_ == 0) {
        threads_ = 1; // hardware_concurrency may be unknown
    }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) const
{
    if (n == 0) {
        return;
    }
    const auto workers =
        static_cast<unsigned>(std::min<std::size_t>(threads_, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

    auto body = [&]() noexcept {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed)) {
                return;
            }
            try {
                fn(i);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                const std::lock_guard<std::mutex> lock{error_mutex};
                if (i < first_error_index) {
                    first_error_index = i;
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t) {
        pool.emplace_back(body);
    }
    body(); // the calling thread works too
    for (auto& thread : pool) {
        thread.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace hdpm::util
