#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hdpm::util::cpu {

/// Instruction-set tiers the packed kernels can dispatch to. Levels are
/// ordered: a higher level implies the lower ones are also usable.
///
/// Every tier computes the *same integer counts* — the scalar functions are
/// the differential baseline, and the wider tiers are only ever selected
/// when the host supports them, so the choice can never change a result,
/// only its speed.
enum class SimdLevel {
    Scalar = 0, ///< portable C++ (std::popcount / VerticalCounter)
    Avx2 = 1,   ///< 256-bit: Mula nibble-LUT popcount, Harley–Seal counters
    Avx512 = 2, ///< 512-bit: VPOPCNTDQ per-qword popcount
};

/// Human-readable name ("scalar", "avx2", "avx512").
[[nodiscard]] const char* level_name(SimdLevel level) noexcept;

/// Parse a level name ("scalar"/"avx2"/"avx512"); nullopt if unrecognized.
/// "auto" parses to nullopt with @p ok set true — callers treat it as
/// "clear any override".
[[nodiscard]] std::optional<SimdLevel> parse_level(std::string_view name,
                                                   bool* ok = nullptr) noexcept;

/// Highest level the host CPU supports (probed once, cached).
[[nodiscard]] SimdLevel max_supported() noexcept;

/// The level the dispatched kernels currently use: the forced override if
/// one is set (clamped to max_supported()), else the HDPM_SIMD environment
/// variable (read once at first call), else max_supported().
[[nodiscard]] SimdLevel active() noexcept;

/// Force the dispatch level (clamped to max_supported()). Thread-safe;
/// pass nullopt to drop the override and return to env/auto selection.
void force(std::optional<SimdLevel> level) noexcept;

/// Word-level counting primitives behind the runtime dispatch. All
/// functions operate on flat arrays of 64-bit words; "popcnt" outputs are
/// per-word bit counts (≤ 64, so they fit a uint8_t).
///
/// The kernels in streams/kernels.cpp call these through kernels(level);
/// every implementation of a slot is integer-exact and bit-identical to
/// the Scalar one by construction.
struct Kernels {
    /// out[i] = popcount(a[i] ^ b[i]) for i < n.
    void (*xor_popcnt)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                       std::uint8_t* out);

    /// out_x[i] = popcount(a[i] ^ b[i]) and out_z[i] = popcount(~(a[i] | b[i]))
    /// in one pass (the (Hd, stable-zero) classifier needs both).
    void (*xor_nor_popcnt)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n, std::uint8_t* out_x, std::uint8_t* out_z);

    /// Positional ones: for sample-major words (sample j occupies
    /// words[j*stride .. j*stride+stride)), accumulate
    /// totals[k*64 + b] += |{j : bit b of words[j*stride + k] set}|.
    /// @p totals must hold stride*64 entries.
    void (*positional_ones)(const std::uint64_t* words, std::size_t samples,
                            std::size_t stride, std::uint64_t* totals);

    /// Positional toggles: same accumulation over prev[i] ^ cur[i], where
    /// @p prev / @p cur each hold transitions*stride words (in practice
    /// prev = cur − stride into the same buffer).
    void (*positional_toggles)(const std::uint64_t* prev, const std::uint64_t* cur,
                               std::size_t transitions, std::size_t stride,
                               std::uint64_t* totals);
};

/// Dispatch table for @p level, clamped to max_supported(). The returned
/// reference is to a static table and stays valid forever.
[[nodiscard]] const Kernels& kernels(SimdLevel level) noexcept;

/// Shorthand for kernels(active()).
[[nodiscard]] inline const Kernels& kernels() noexcept { return kernels(active()); }

} // namespace hdpm::util::cpu
