#pragma once

#include <string>
#include <vector>

namespace hdpm::util {

/// Write a numeric CSV file with the given header and rows.
/// Each row must have exactly header.size() values.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

/// A numeric CSV table read from disk.
struct CsvTable {
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;
};

/// Read a numeric CSV file written by write_csv (first line is the header,
/// remaining lines are comma-separated doubles). Throws RuntimeError on
/// malformed input or I/O failure.
[[nodiscard]] CsvTable read_csv(const std::string& path);

} // namespace hdpm::util
