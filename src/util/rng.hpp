#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace hdpm::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic parts of the library (characterization stimuli, stream
/// generators) take an explicit Rng so that every experiment is reproducible
/// from its seed. The generator satisfies the UniformRandomBitGenerator
/// concept and can be handed to <random> adaptors where convenient.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seed the generator; distinct seeds give decorrelated sequences
    /// (expanded through splitmix64).
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    /// Next raw 64-bit value.
    result_type operator()() noexcept { return next_u64(); }

    /// Next raw 64-bit value.
    std::uint64_t next_u64() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n); n must be positive.
    std::uint64_t uniform_int(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Bernoulli trial with success probability @p p.
    bool bernoulli(double p) noexcept;

    /// Standard normal deviate (Box–Muller with caching).
    double gaussian() noexcept;

    /// Normal deviate with the given mean and standard deviation.
    double gaussian(double mean, double stddev) noexcept;

    /// Fisher–Yates shuffle of a vector.
    template <typename T>
    void shuffle(std::vector<T>& items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_int(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /// Derive an independent child generator (for parallel or per-module
    /// streams that must not share state).
    Rng split() noexcept;

private:
    std::uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace hdpm::util
