#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace hdpm::util {

void TextTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void TextTable::set_alignment(std::vector<Align> alignment)
{
    alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row)
{
    if (!header_.empty()) {
        HDPM_REQUIRE(row.size() == header_.size(), "row has ", row.size(),
                     " cells, header has ", header_.size());
    }
    rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_rule()
{
    rows_.push_back(Row{{}, true});
}

std::string TextTable::str() const
{
    std::size_t cols = header_.size();
    for (const auto& row : rows_) {
        cols = std::max(cols, row.cells.size());
    }
    std::vector<std::size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    widen(header_);
    for (const auto& row : rows_) {
        widen(row.cells);
    }

    std::size_t total = 0;
    for (const std::size_t w : widths) {
        total += w + 3;
    }

    auto align_of = [&](std::size_t col) {
        return col < alignment_.size() ? alignment_[col] : Align::Right;
    };
    auto emit_cells = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << (i == 0 ? "" : " | ");
            if (align_of(i) == Align::Left) {
                os << std::left;
            } else {
                os << std::right;
            }
            os << std::setw(static_cast<int>(widths[i])) << cells[i];
        }
        os << '\n';
    };

    std::ostringstream os;
    if (!header_.empty()) {
        emit_cells(os, header_);
        os << std::string(total > 3 ? total - 3 : total, '-') << '\n';
    }
    for (const auto& row : rows_) {
        if (row.rule) {
            os << std::string(total > 3 ? total - 3 : total, '-') << '\n';
        } else {
            emit_cells(os, row.cells);
        }
    }
    return os.str();
}

void TextTable::print(std::ostream& os) const
{
    os << str();
}

std::string TextTable::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string TextTable::fmt(long long value)
{
    return std::to_string(value);
}

void print_section(std::ostream& os, const std::string& title)
{
    os << '\n' << "== " << title << " ==" << '\n';
}

} // namespace hdpm::util
