#include "util/cpu.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/bitslice.hpp"

// Runtime dispatch is implemented with per-function target attributes, so
// the translation unit builds with the portable baseline flags and only the
// annotated functions use wider instructions — they are never executed
// unless the cpuid probe says the host supports them.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HDPM_X86_DISPATCH 1
#include <immintrin.h>
#else
#define HDPM_X86_DISPATCH 0
#endif

namespace hdpm::util::cpu {

namespace {

// ------------------------------------------------------------- scalar tier

void xor_popcnt_scalar(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                       std::uint8_t* out)
{
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::popcount(a[i] ^ b[i]));
    }
}

void xor_nor_popcnt_scalar(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n, std::uint8_t* out_x, std::uint8_t* out_z)
{
    for (std::size_t i = 0; i < n; ++i) {
        out_x[i] = static_cast<std::uint8_t>(std::popcount(a[i] ^ b[i]));
        out_z[i] = static_cast<std::uint8_t>(std::popcount(~(a[i] | b[i])));
    }
}

/// One CSA vertical counter per word position; a single pass over the
/// sample-major words keeps every counter's working set in cache.
void positional_accumulate_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t flat, std::size_t stride,
                                  std::uint64_t* totals)
{
    std::vector<VerticalCounter> counters(stride);
    for (std::size_t f = 0; f < flat; ++f) {
        counters[f % stride].add(b != nullptr ? a[f] ^ b[f] : a[f]);
    }
    for (std::size_t k = 0; k < stride; ++k) {
        const auto t = counters[k].totals();
        for (std::size_t bit = 0; bit < 64; ++bit) {
            totals[k * 64 + bit] += t[bit];
        }
    }
}

void positional_ones_scalar(const std::uint64_t* words, std::size_t samples,
                            std::size_t stride, std::uint64_t* totals)
{
    positional_accumulate_scalar(words, nullptr, samples * stride, stride, totals);
}

void positional_toggles_scalar(const std::uint64_t* prev, const std::uint64_t* cur,
                               std::size_t transitions, std::size_t stride,
                               std::uint64_t* totals)
{
    positional_accumulate_scalar(prev, cur, transitions * stride, stride, totals);
}

#if HDPM_X86_DISPATCH

// --------------------------------------------------------------- AVX2 tier

/// Mula's nibble-LUT popcount: vpshufb maps each nibble to its bit count,
/// vpsadbw sums the per-byte counts into one count per 64-bit lane.
__attribute__((target("avx2"))) void xor_popcnt_avx2(const std::uint64_t* a,
                                                     const std::uint64_t* b,
                                                     std::size_t n, std::uint8_t* out)
{
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
                         2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
        const __m256i nib =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, _mm256_and_si256(x, low)),
                            _mm256_shuffle_epi8(
                                lut, _mm256_and_si256(_mm256_srli_epi16(x, 4), low)));
        const __m256i sums = _mm256_sad_epu8(nib, _mm256_setzero_si256());
        out[i + 0] = static_cast<std::uint8_t>(_mm256_extract_epi64(sums, 0));
        out[i + 1] = static_cast<std::uint8_t>(_mm256_extract_epi64(sums, 1));
        out[i + 2] = static_cast<std::uint8_t>(_mm256_extract_epi64(sums, 2));
        out[i + 3] = static_cast<std::uint8_t>(_mm256_extract_epi64(sums, 3));
    }
    for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::popcount(a[i] ^ b[i]));
    }
}

__attribute__((target("avx2"))) void xor_nor_popcnt_avx2(const std::uint64_t* a,
                                                         const std::uint64_t* b,
                                                         std::size_t n,
                                                         std::uint8_t* out_x,
                                                         std::uint8_t* out_z)
{
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
                         2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    const __m256i ones = _mm256_set1_epi64x(-1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i x = _mm256_xor_si256(va, vb);
        const __m256i z = _mm256_xor_si256(_mm256_or_si256(va, vb), ones);
        const __m256i nx =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, _mm256_and_si256(x, low)),
                            _mm256_shuffle_epi8(
                                lut, _mm256_and_si256(_mm256_srli_epi16(x, 4), low)));
        const __m256i nz =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, _mm256_and_si256(z, low)),
                            _mm256_shuffle_epi8(
                                lut, _mm256_and_si256(_mm256_srli_epi16(z, 4), low)));
        const __m256i sx = _mm256_sad_epu8(nx, _mm256_setzero_si256());
        const __m256i sz = _mm256_sad_epu8(nz, _mm256_setzero_si256());
        out_x[i + 0] = static_cast<std::uint8_t>(_mm256_extract_epi64(sx, 0));
        out_x[i + 1] = static_cast<std::uint8_t>(_mm256_extract_epi64(sx, 1));
        out_x[i + 2] = static_cast<std::uint8_t>(_mm256_extract_epi64(sx, 2));
        out_x[i + 3] = static_cast<std::uint8_t>(_mm256_extract_epi64(sx, 3));
        out_z[i + 0] = static_cast<std::uint8_t>(_mm256_extract_epi64(sz, 0));
        out_z[i + 1] = static_cast<std::uint8_t>(_mm256_extract_epi64(sz, 1));
        out_z[i + 2] = static_cast<std::uint8_t>(_mm256_extract_epi64(sz, 2));
        out_z[i + 3] = static_cast<std::uint8_t>(_mm256_extract_epi64(sz, 3));
    }
    for (; i < n; ++i) {
        out_x[i] = static_cast<std::uint8_t>(std::popcount(a[i] ^ b[i]));
        out_z[i] = static_cast<std::uint8_t>(std::popcount(~(a[i] | b[i])));
    }
}

/// Drain 256-bit CSA planes into per-lane per-bit totals and zero them.
__attribute__((target("avx2"))) void flush_planes_avx2(__m256i planes[6],
                                                       std::uint64_t lane_totals[4][64])
{
    for (int k = 0; k < 6; ++k) {
        alignas(32) std::uint64_t tmp[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), planes[k]);
        planes[k] = _mm256_setzero_si256();
        for (int lane = 0; lane < 4; ++lane) {
            std::uint64_t plane = tmp[lane];
            while (plane != 0) {
                const int bit = std::countr_zero(plane);
                plane &= plane - 1;
                lane_totals[lane][bit] += std::uint64_t{1} << k;
            }
        }
    }
}

/// Harley–Seal vertical counter over 4 words at a time: the 256-bit planes
/// hold four independent 64-position tallies, one per lane. Because the
/// kernels only use this when stride divides 4, lane L always sees word
/// position L % stride, so the lane totals fold cleanly into per-position
/// totals at the end.
__attribute__((target("avx2"))) void positional_accumulate_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t flat,
    std::size_t stride, std::uint64_t* totals)
{
    __m256i planes[6];
    for (auto& p : planes) {
        p = _mm256_setzero_si256();
    }
    std::uint64_t lane_totals[4][64] = {};
    int pending = 0;
    std::size_t f = 0;
    for (; f + 4 <= flat; f += 4) {
        __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + f));
        if (b != nullptr) {
            w = _mm256_xor_si256(
                w, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + f)));
        }
        __m256i carry = w;
        for (int k = 0; k < 6; ++k) {
            const __m256i t = _mm256_and_si256(planes[k], carry);
            planes[k] = _mm256_xor_si256(planes[k], carry);
            carry = t;
        }
        if (++pending == 63) {
            flush_planes_avx2(planes, lane_totals);
            pending = 0;
        }
    }
    flush_planes_avx2(planes, lane_totals);
    for (int lane = 0; lane < 4; ++lane) {
        const std::size_t k = static_cast<std::size_t>(lane) % stride;
        for (std::size_t bit = 0; bit < 64; ++bit) {
            totals[k * 64 + bit] += lane_totals[lane][bit];
        }
    }
    // Tail words (< 4) go straight into the per-position totals.
    for (; f < flat; ++f) {
        std::uint64_t w = b != nullptr ? a[f] ^ b[f] : a[f];
        const std::size_t k = f % stride;
        while (w != 0) {
            const int bit = std::countr_zero(w);
            w &= w - 1;
            totals[k * 64 + bit] += 1;
        }
    }
}

void positional_ones_avx2(const std::uint64_t* words, std::size_t samples,
                          std::size_t stride, std::uint64_t* totals)
{
    if (4 % stride != 0) {
        positional_ones_scalar(words, samples, stride, totals);
        return;
    }
    positional_accumulate_avx2(words, nullptr, samples * stride, stride, totals);
}

void positional_toggles_avx2(const std::uint64_t* prev, const std::uint64_t* cur,
                             std::size_t transitions, std::size_t stride,
                             std::uint64_t* totals)
{
    if (4 % stride != 0) {
        positional_toggles_scalar(prev, cur, transitions, stride, totals);
        return;
    }
    positional_accumulate_avx2(prev, cur, transitions * stride, stride, totals);
}

// ------------------------------------------------------------- AVX512 tier

__attribute__((target("avx512f,avx512vpopcntdq"))) void xor_popcnt_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n, std::uint8_t* out)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        _mm512_mask_cvtepi64_storeu_epi8(out + i, 0xff, _mm512_popcnt_epi64(x));
    }
    for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::popcount(a[i] ^ b[i]));
    }
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void xor_nor_popcnt_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n, std::uint8_t* out_x,
    std::uint8_t* out_z)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i va = _mm512_loadu_si512(a + i);
        const __m512i vb = _mm512_loadu_si512(b + i);
        const __m512i x = _mm512_xor_si512(va, vb);
        // Truth table 0x03 is ~(A | B) for any third operand.
        const __m512i z = _mm512_ternarylogic_epi64(va, vb, vb, 0x03);
        _mm512_mask_cvtepi64_storeu_epi8(out_x + i, 0xff, _mm512_popcnt_epi64(x));
        _mm512_mask_cvtepi64_storeu_epi8(out_z + i, 0xff, _mm512_popcnt_epi64(z));
    }
    for (; i < n; ++i) {
        out_x[i] = static_cast<std::uint8_t>(std::popcount(a[i] ^ b[i]));
        out_z[i] = static_cast<std::uint8_t>(std::popcount(~(a[i] | b[i])));
    }
}

#endif // HDPM_X86_DISPATCH

SimdLevel probe_max() noexcept
{
#if HDPM_X86_DISPATCH
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vpopcntdq")) {
        return SimdLevel::Avx512;
    }
    if (__builtin_cpu_supports("avx2")) {
        return SimdLevel::Avx2;
    }
#endif
    return SimdLevel::Scalar;
}

SimdLevel clamp_to_host(SimdLevel level) noexcept
{
    const SimdLevel max = max_supported();
    return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

/// Forced dispatch level as int, or -1 when no override is set.
std::atomic<int> g_forced{-1};

} // namespace

const char* level_name(SimdLevel level) noexcept
{
    switch (level) {
    case SimdLevel::Avx512:
        return "avx512";
    case SimdLevel::Avx2:
        return "avx2";
    default:
        return "scalar";
    }
}

std::optional<SimdLevel> parse_level(std::string_view name, bool* ok) noexcept
{
    if (ok != nullptr) {
        *ok = true;
    }
    if (name == "scalar") {
        return SimdLevel::Scalar;
    }
    if (name == "avx2") {
        return SimdLevel::Avx2;
    }
    if (name == "avx512") {
        return SimdLevel::Avx512;
    }
    if (name == "auto") {
        return std::nullopt;
    }
    if (ok != nullptr) {
        *ok = false;
    }
    return std::nullopt;
}

SimdLevel max_supported() noexcept
{
    static const SimdLevel max = probe_max();
    return max;
}

SimdLevel active() noexcept
{
    const int forced = g_forced.load(std::memory_order_relaxed);
    if (forced >= 0) {
        return clamp_to_host(static_cast<SimdLevel>(forced));
    }
    static const SimdLevel env_level = [] {
        if (const char* env = std::getenv("HDPM_SIMD")) {
            bool ok = false;
            const std::optional<SimdLevel> parsed = parse_level(env, &ok);
            if (ok && parsed.has_value()) {
                return clamp_to_host(*parsed);
            }
        }
        return max_supported();
    }();
    return env_level;
}

void force(std::optional<SimdLevel> level) noexcept
{
    g_forced.store(level.has_value()
                       ? static_cast<int>(clamp_to_host(*level))
                       : -1,
                   std::memory_order_relaxed);
}

const Kernels& kernels(SimdLevel level) noexcept
{
    static const Kernels scalar_table{xor_popcnt_scalar, xor_nor_popcnt_scalar,
                                      positional_ones_scalar,
                                      positional_toggles_scalar};
#if HDPM_X86_DISPATCH
    static const Kernels avx2_table{xor_popcnt_avx2, xor_nor_popcnt_avx2,
                                    positional_ones_avx2, positional_toggles_avx2};
    // Positional counting has no VPOPCNTDQ form here; the 512-bit tier
    // reuses the Harley–Seal AVX2 counters alongside its wider popcounts.
    static const Kernels avx512_table{xor_popcnt_avx512, xor_nor_popcnt_avx512,
                                      positional_ones_avx2, positional_toggles_avx2};
    switch (clamp_to_host(level)) {
    case SimdLevel::Avx512:
        return avx512_table;
    case SimdLevel::Avx2:
        return avx2_table;
    default:
        return scalar_table;
    }
#else
    (void)level;
    return scalar_table;
#endif
}

} // namespace hdpm::util::cpu
