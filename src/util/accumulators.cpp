#include "util/accumulators.hpp"

#include <cmath>

namespace hdpm::util {

void RunningStats::merge(const RunningStats& other) noexcept
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    sum_ += other.sum_;
    sum_abs_ += other.sum_abs_;
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
    count_ += other.count_;
}

double RunningStats::stddev() const noexcept
{
    return std::sqrt(variance());
}

void AutocorrAccumulator::add(double x) noexcept
{
    stats_.add(x);
    if (has_prev_) {
        cross_sum_ += prev_ * x;
        lag_sum_ += prev_;
        lead_sum_ += x;
        ++pairs_;
    }
    prev_ = x;
    has_prev_ = true;
}

double AutocorrAccumulator::rho() const noexcept
{
    if (pairs_ == 0) {
        return 0.0;
    }
    const double n = static_cast<double>(pairs_);
    const double cov = cross_sum_ / n - (lag_sum_ / n) * (lead_sum_ / n);
    const double var = stats_.variance();
    if (var <= 0.0) {
        return 0.0;
    }
    double rho = cov / var;
    if (rho > 1.0) {
        rho = 1.0;
    }
    if (rho < -1.0) {
        rho = -1.0;
    }
    return rho;
}

} // namespace hdpm::util
