#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hdpm::streams {

/// Word-level statistics of a scalar data stream — the parameters the
/// Landman-style data model (section 6.1 of the paper) is driven by.
struct WordStats {
    double mean = 0.0;     ///< µ
    double variance = 0.0; ///< σ²
    double rho = 0.0;      ///< lag-1 autocorrelation ρ
    int width = 0;         ///< word length m in bits
    std::size_t count = 0; ///< number of samples measured

    [[nodiscard]] double stddev() const noexcept;
};

/// Measure µ, σ², ρ of a sample stream of @p width-bit words.
[[nodiscard]] WordStats measure_word_stats(std::span<const std::int64_t> values, int width);

/// Word statistics over consecutive non-overlapping windows of @p window
/// samples (the final partial window is dropped). Real signals are rarely
/// stationary — bursty speech, scene cuts in video — and per-window
/// statistics are what drives coefficient-adaptation decisions
/// (AdaptiveHdModel) and block-wise statistical estimation.
[[nodiscard]] std::vector<WordStats> windowed_word_stats(
    std::span<const std::int64_t> values, int width, std::size_t window);

} // namespace hdpm::streams
