#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"

namespace hdpm::streams {

/// Per-bit statistics of a pattern stream: signal probability p_i
/// (fraction of cycles bit i is 1) and transition probability t_i
/// (fraction of consecutive pattern pairs in which bit i toggles).
struct BitStats {
    std::vector<double> signal_prob;
    std::vector<double> transition_prob;
    std::size_t pattern_count = 0;

    [[nodiscard]] int width() const noexcept
    {
        return static_cast<int>(signal_prob.size());
    }

    /// Average Hamming distance of consecutive patterns = Σ t_i.
    [[nodiscard]] double average_hd() const noexcept;
};

/// Measure bit statistics of a BitVec pattern stream (all patterns must
/// share one width).
[[nodiscard]] BitStats measure_bit_stats(std::span<const util::BitVec> patterns);

/// Measure bit statistics of an integer stream encoded as @p width-bit
/// two's complement words.
[[nodiscard]] BitStats measure_bit_stats(std::span<const std::int64_t> values, int width);

/// Empirical Hamming-distance distribution of consecutive patterns:
/// result[i] = p(Hd = i) for i = 0..m. Sums to 1.
[[nodiscard]] std::vector<double> extract_hd_distribution(
    std::span<const util::BitVec> patterns);

/// Empirical average Hamming distance of consecutive patterns.
[[nodiscard]] double extract_average_hd(std::span<const util::BitVec> patterns);

/// Binary number representations supported by the pattern encoders and the
/// data model (ref [10] of the paper extends the dual-bit-type model to
/// "different number representations"; we implement the classic pair).
enum class NumberFormat {
    TwosComplement, ///< sign bits replicate; a sign change toggles them all
    SignMagnitude,  ///< one sign bit; a sign change toggles exactly one bit
};

/// Encode an integer stream as two's-complement BitVec patterns.
[[nodiscard]] std::vector<util::BitVec> to_patterns(std::span<const std::int64_t> values,
                                                    int width);

/// Encode an integer stream in the given number format. Sign-magnitude
/// packs |value| into bits 0..width-2 (clamped to the representable
/// maximum) and the sign into the MSB. When @p clamped is non-null it
/// receives the number of samples whose magnitude was saturated to the
/// representable maximum, so callers can surface silent truncation.
[[nodiscard]] std::vector<util::BitVec> to_patterns(std::span<const std::int64_t> values,
                                                    int width, NumberFormat format,
                                                    std::size_t* clamped = nullptr);

/// Decode a single pattern of the given format back to its integer value.
[[nodiscard]] std::int64_t decode_pattern(const util::BitVec& pattern,
                                          NumberFormat format);

} // namespace hdpm::streams
