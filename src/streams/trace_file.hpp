#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "streams/packed_trace.hpp"

namespace hdpm::streams {

/// Binary recorded-trace file format (".hdt"): a fixed little-endian
/// header followed by the raw PackedTrace word array, 8-byte aligned so a
/// read-only mapping of the file can be served directly as a PackedTrace
/// view — repeated queries against a million-sample trace move no bytes.
///
/// Layout (all integers little-endian):
///   bytes 0..7    magic "HDPMTRC\n"
///   bytes 8..11   format version (1)
///   bytes 12..15  operand count P
///   bytes 16..23  sample count N
///   bytes 24..    P × int32 operand widths
///   ...pad to the next multiple of 8 bytes...
///   then          N × ceil(total_width/64) × uint64 packed words
///
/// Words are written masked (bits above the total width are zero), and the
/// loader re-validates that invariant, so a trace that maps cleanly is
/// safe to feed to the word-parallel kernels unchanged.

/// Serialized byte offset of the word array for @p operand_count operands.
[[nodiscard]] std::size_t trace_file_words_offset(std::size_t operand_count) noexcept;

/// Write @p trace to @p path atomically (tmp + rename). Throws
/// util::FaultError{IoError} on failure.
void write_trace_file(const std::filesystem::path& path, const PackedTrace& trace);

/// A read-only memory mapping of a trace file, bundled with the
/// PackedTrace view pointing into it. Zero-copy: estimation kernels read
/// the mapped pages directly, so the OS page cache is the only copy of a
/// large recorded trace no matter how many queries reference it.
///
/// Movable, not copyable; the view (and every copy of the view handed
/// out) is valid only while this object lives. Throws
/// util::FaultError{IoError} for open/map failures and
/// util::FaultError{ModelFileCorrupt} for a malformed header or word
/// array.
class MappedTrace {
public:
    explicit MappedTrace(const std::filesystem::path& path);
    ~MappedTrace();

    MappedTrace(MappedTrace&& other) noexcept;
    MappedTrace& operator=(MappedTrace&& other) noexcept;
    MappedTrace(const MappedTrace&) = delete;
    MappedTrace& operator=(const MappedTrace&) = delete;

    /// The zero-copy view. Each MappedTrace construction mints a fresh
    /// trace id, so a re-opened file is (correctly) a new cache identity.
    [[nodiscard]] const PackedTrace& trace() const noexcept { return trace_; }

    /// Size of the mapping in bytes.
    [[nodiscard]] std::size_t mapped_bytes() const noexcept { return size_; }

private:
    void unmap() noexcept;

    void* base_ = nullptr;
    std::size_t size_ = 0;
    PackedTrace trace_;
};

} // namespace hdpm::streams
