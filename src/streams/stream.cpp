#include "streams/stream.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdpm::streams {

using util::Rng;

namespace {

constexpr std::array<DataType, 5> kAllTypes = {
    DataType::Random, DataType::Music, DataType::Speech, DataType::Video,
    DataType::Counter,
};

/// Quantize a normalized sample s (nominally in [-1, 1]) to a signed
/// width-bit integer with clamping — the "linear quantization" of the
/// paper's music/speech signals. Clamps are compared in double before the
/// cast so the full 64-bit width (whose limits are not exactly
/// representable) stays defined; results for widths ≤ 33 are identical to
/// integer-exact full-scale arithmetic.
std::int64_t quantize(double s, int width)
{
    const std::int64_t max_v =
        width >= 64 ? std::numeric_limits<std::int64_t>::max()
                    : (std::int64_t{1} << (width - 1)) - 1;
    const std::int64_t min_v = width >= 64
                                   ? std::numeric_limits<std::int64_t>::min()
                                   : -(std::int64_t{1} << (width - 1));
    const double full_scale = std::ldexp(1.0, width - 1) - 1.0;
    const double v = std::round(s * full_scale);
    if (v <= static_cast<double>(min_v)) {
        return min_v;
    }
    if (v >= static_cast<double>(max_v)) {
        return max_v;
    }
    return static_cast<std::int64_t>(v);
}

std::vector<std::int64_t> gen_random(int width, std::size_t n, Rng& rng)
{
    std::vector<std::int64_t> out;
    out.reserve(n);
    if (width >= 64) {
        // Full-range draw: [lo, hi] spans 2^64 values, which the bounded
        // sampler cannot express.
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(static_cast<std::int64_t>(rng.next_u64()));
        }
        return out;
    }
    const std::int64_t lo = -(std::int64_t{1} << (width - 1));
    const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(rng.uniform_int(lo, hi));
    }
    return out;
}

std::vector<std::int64_t> gen_music(int width, std::size_t n, Rng& rng)
{
    // Sum of three partials with incommensurate frequencies plus a lightly
    // filtered noise floor: lag-1 autocorrelation lands around 0.5–0.7
    // ("weak correlation").
    const double f1 = rng.uniform(0.055, 0.085);
    const double f2 = f1 * rng.uniform(2.2, 2.6);
    const double f3 = f1 * rng.uniform(3.5, 4.1);
    const double p1 = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double p2 = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double p3 = rng.uniform(0.0, 2.0 * std::numbers::pi);

    std::vector<std::int64_t> out;
    out.reserve(n);
    double noise = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        const double tt = static_cast<double>(t);
        noise = 0.45 * noise + rng.gaussian(0.0, 0.16);
        const double s = 0.42 * std::sin(2.0 * std::numbers::pi * f1 * tt + p1) +
                         0.22 * std::sin(2.0 * std::numbers::pi * f2 * tt + p2) +
                         0.12 * std::sin(2.0 * std::numbers::pi * f3 * tt + p3) + noise;
        out.push_back(quantize(0.62 * s, width));
    }
    return out;
}

std::vector<std::int64_t> gen_speech(int width, std::size_t n, Rng& rng)
{
    // Bursty AR(2) process: resonant poles give strong short-term
    // correlation (ρ ≈ 0.95); a slow positive envelope modulates amplitude
    // like syllables do.
    const double r = 0.96;
    const double theta = rng.uniform(0.12, 0.22);
    const double a1 = 2.0 * r * std::cos(theta);
    const double a2 = -r * r;
    // Stationary variance of a unit-innovation AR(2).
    const double var =
        (1.0 - a2) / ((1.0 + a2) * ((1.0 - a2) * (1.0 - a2) - a1 * a1));
    const double inv_sigma = 1.0 / std::sqrt(var);

    std::vector<std::int64_t> out;
    out.reserve(n);
    double x1 = 0.0;
    double x2 = 0.0;
    double env = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        const double x = a1 * x1 + a2 * x2 + rng.gaussian();
        x2 = x1;
        x1 = x;
        env = 0.995 * env + rng.gaussian(0.0, 0.05);
        const double envelope = 0.25 + 0.75 * std::min(1.0, std::abs(env));
        out.push_back(quantize(0.40 * envelope * x * inv_sigma, width));
    }
    return out;
}

std::vector<std::int64_t> gen_video(int width, std::size_t n, Rng& rng)
{
    // Scanline model: piecewise-constant regions (objects) with occasional
    // luminance edges, small sensor noise, and a hard cut at each line
    // start. Centered around zero (luma minus mid-grey).
    constexpr std::size_t kLineLength = 64;
    std::vector<std::int64_t> out;
    out.reserve(n);
    double level = rng.uniform(-0.7, 0.7);
    for (std::size_t t = 0; t < n; ++t) {
        if (t % kLineLength == 0 || rng.bernoulli(1.0 / 14.0)) {
            level = rng.uniform(-0.7, 0.7); // new object / new line
        }
        const double s = level + rng.gaussian(0.0, 0.02);
        out.push_back(quantize(s, width));
    }
    return out;
}

std::vector<std::int64_t> gen_counter(int width, std::size_t n, Rng& rng)
{
    // A binary up-counter confined to non-negative values: the paper notes
    // the type V stream keeps every sign bit at zero.
    const std::uint64_t period = std::uint64_t{1} << (width - 1);
    const std::uint64_t start = rng.next_u64() % period;
    std::vector<std::int64_t> out;
    out.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        out.push_back(static_cast<std::int64_t>((start + t) % period));
    }
    return out;
}

} // namespace

std::span<const DataType> all_data_types() noexcept
{
    return kAllTypes;
}

std::string data_type_label(DataType type)
{
    switch (type) {
    case DataType::Random:
        return "I";
    case DataType::Music:
        return "II";
    case DataType::Speech:
        return "III";
    case DataType::Video:
        return "IV";
    case DataType::Counter:
        return "V";
    }
    HDPM_FAIL("unreachable data type");
}

std::string data_type_name(DataType type)
{
    switch (type) {
    case DataType::Random:
        return "random";
    case DataType::Music:
        return "music";
    case DataType::Speech:
        return "speech";
    case DataType::Video:
        return "video";
    case DataType::Counter:
        return "counter";
    }
    HDPM_FAIL("unreachable data type");
}

std::vector<std::int64_t> generate_stream(DataType type, int width, std::size_t n,
                                          std::uint64_t seed)
{
    HDPM_REQUIRE(width >= 2 && width <= 64, "stream width ", width, " out of range");
    Rng rng{seed ^ (static_cast<std::uint64_t>(type) * 0x9e3779b97f4a7c15ULL)};
    switch (type) {
    case DataType::Random:
        return gen_random(width, n, rng);
    case DataType::Music:
        return gen_music(width, n, rng);
    case DataType::Speech:
        return gen_speech(width, n, rng);
    case DataType::Video:
        return gen_video(width, n, rng);
    case DataType::Counter:
        return gen_counter(width, n, rng);
    }
    HDPM_FAIL("unreachable data type");
}

} // namespace hdpm::streams
