#include "streams/packed_trace.hpp"

#include <atomic>

#include "streams/io.hpp"
#include "util/error.hpp"

namespace hdpm::streams {

namespace {

constexpr std::uint64_t width_mask(int width) noexcept
{
    return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

} // namespace

std::uint64_t PackedTrace::next_id() noexcept
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

PackedTrace PackedTrace::from_values(std::span<const std::int64_t> values, int width)
{
    HDPM_REQUIRE(width >= 1 && width <= util::BitVec::kMaxWidth, "trace width ", width,
                 " out of range [1, 64]");
    PackedTrace trace;
    trace.width_ = width;
    trace.operand_widths_ = {width};
    trace.id_ = next_id();
    trace.words_.reserve(values.size());
    const std::uint64_t mask = width_mask(width);
    for (const std::int64_t v : values) {
        const auto bits = static_cast<std::uint64_t>(v) & mask;
        // A sample is in range iff masking preserves its value: sign-extend
        // the masked pattern back and compare (matches BitVec semantics,
        // which silently mask — here the truncation is counted).
        const std::int64_t back =
            width >= 64 ? static_cast<std::int64_t>(bits)
                        : (static_cast<std::int64_t>(bits << (64 - width)) >>
                           (64 - width));
        if (back != v) {
            ++trace.out_of_range_;
        }
        trace.words_.push_back(bits);
    }
    return trace;
}

PackedTrace PackedTrace::from_operands(
    std::span<const std::vector<std::int64_t>> operands, std::span<const int> widths)
{
    HDPM_REQUIRE(!operands.empty(), "no operand streams");
    HDPM_REQUIRE(operands.size() == widths.size(), "got ", operands.size(),
                 " operand streams but ", widths.size(), " widths");
    int total = 0;
    for (const int w : widths) {
        HDPM_REQUIRE(w >= 1, "operand width ", w, " out of range");
        total += w;
    }
    HDPM_REQUIRE(total <= util::BitVec::kMaxWidth, "operand widths sum to ", total,
                 " > 64");
    const std::size_t n = operands.front().size();
    for (std::size_t op = 1; op < operands.size(); ++op) {
        HDPM_REQUIRE(operands[op].size() == n,
                     "operand streams must have equal length");
    }

    PackedTrace trace;
    trace.width_ = total;
    trace.operand_widths_.assign(widths.begin(), widths.end());
    trace.id_ = next_id();
    trace.words_.assign(n, 0);
    int shift = 0;
    for (std::size_t op = 0; op < operands.size(); ++op) {
        const int w = widths[op];
        const std::uint64_t mask = width_mask(w);
        const std::int64_t* src = operands[op].data();
        for (std::size_t j = 0; j < n; ++j) {
            const auto bits = static_cast<std::uint64_t>(src[j]) & mask;
            const std::int64_t back =
                w >= 64 ? static_cast<std::int64_t>(bits)
                        : (static_cast<std::int64_t>(bits << (64 - w)) >> (64 - w));
            if (back != src[j]) {
                ++trace.out_of_range_;
            }
            trace.words_[j] |= bits << shift;
        }
        shift += w;
    }
    return trace;
}

PackedTrace PackedTrace::from_patterns(std::span<const util::BitVec> patterns)
{
    HDPM_REQUIRE(!patterns.empty(), "no patterns");
    const int m = patterns.front().width();
    HDPM_REQUIRE(m >= 1, "zero-width patterns");
    PackedTrace trace;
    trace.width_ = m;
    trace.operand_widths_ = {m};
    trace.id_ = next_id();
    trace.words_.reserve(patterns.size());
    for (std::size_t j = 0; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == m, "pattern width mismatch at index ", j);
        trace.words_.push_back(patterns[j].raw());
    }
    return trace;
}

PackedTrace PackedTrace::from_csv(const std::string& path, int width)
{
    const std::vector<std::int64_t> values = load_stream(path);
    return from_values(values, width);
}

std::vector<util::BitVec> PackedTrace::to_patterns() const
{
    std::vector<util::BitVec> patterns;
    patterns.reserve(words_.size());
    for (const std::uint64_t w : words_) {
        patterns.emplace_back(width_, w);
    }
    return patterns;
}

} // namespace hdpm::streams
