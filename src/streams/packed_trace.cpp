#include "streams/packed_trace.hpp"

#include <atomic>

#include "streams/io.hpp"
#include "util/error.hpp"

namespace hdpm::streams {

namespace {

constexpr std::uint64_t width_mask(int width) noexcept
{
    return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

constexpr std::size_t words_for(int width) noexcept
{
    return (static_cast<std::size_t>(width) + 63) / 64;
}

} // namespace

std::uint64_t PackedTrace::next_id() noexcept
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

PackedTrace PackedTrace::from_values(std::span<const std::int64_t> values, int width)
{
    HDPM_REQUIRE(width >= 1 && width <= kMaxWidth, "trace width ", width,
                 " out of range [1, ", kMaxWidth, "]");
    PackedTrace trace;
    trace.width_ = width;
    trace.operand_widths_ = {width};
    trace.out_of_range_by_operand_ = {0};
    trace.id_ = next_id();
    trace.words_per_sample_ = words_for(width);
    trace.samples_ = values.size();
    const std::size_t stride = trace.words_per_sample_;
    trace.words_.assign(values.size() * stride, 0);

    // Top-word mask: bits of the last word that are inside the width.
    const int top_bits = width - static_cast<int>(stride - 1) * 64;
    const std::uint64_t top_mask = width_mask(top_bits);
    const std::uint64_t mask = width_mask(width < 64 ? width : 64);
    for (std::size_t j = 0; j < values.size(); ++j) {
        const std::int64_t v = values[j];
        std::uint64_t* sample = trace.words_.data() + j * stride;
        if (stride == 1) {
            const std::uint64_t bits = static_cast<std::uint64_t>(v) & mask;
            // A sample is in range iff masking preserves its value:
            // sign-extend the masked pattern back and compare (matches
            // BitVec semantics, which silently mask — here the truncation
            // is counted).
            const std::int64_t back =
                width >= 64 ? static_cast<std::int64_t>(bits)
                            : (static_cast<std::int64_t>(bits << (64 - width)) >>
                               (64 - width));
            if (back != v) {
                ++trace.out_of_range_by_operand_[0];
            }
            sample[0] = bits;
        } else {
            // width > 64: every int64 value is representable; the value
            // occupies the low word and sign-extends across the rest.
            sample[0] = static_cast<std::uint64_t>(v);
            const std::uint64_t ext = v < 0 ? ~std::uint64_t{0} : 0;
            for (std::size_t k = 1; k + 1 < stride; ++k) {
                sample[k] = ext;
            }
            sample[stride - 1] = ext & top_mask;
        }
    }
    trace.out_of_range_ = trace.out_of_range_by_operand_[0];
    return trace;
}

PackedTrace PackedTrace::from_operands(
    std::span<const std::vector<std::int64_t>> operands, std::span<const int> widths)
{
    HDPM_REQUIRE(!operands.empty(), "no operand streams");
    HDPM_REQUIRE(operands.size() == widths.size(), "got ", operands.size(),
                 " operand streams but ", widths.size(), " widths");
    int total = 0;
    for (const int w : widths) {
        HDPM_REQUIRE(w >= 1 && w <= 64, "operand width ", w, " out of range [1, 64]");
        total += w;
    }
    HDPM_REQUIRE(total <= kMaxWidth, "operand widths sum to ", total, " > ",
                 kMaxWidth);
    const std::size_t n = operands.front().size();
    for (std::size_t op = 1; op < operands.size(); ++op) {
        HDPM_REQUIRE(operands[op].size() == n,
                     "operand streams must have equal length");
    }

    PackedTrace trace;
    trace.width_ = total;
    trace.operand_widths_.assign(widths.begin(), widths.end());
    trace.out_of_range_by_operand_.assign(widths.size(), 0);
    trace.id_ = next_id();
    trace.words_per_sample_ = words_for(total);
    trace.samples_ = n;
    const std::size_t stride = trace.words_per_sample_;
    trace.words_.assign(n * stride, 0);
    int bit_offset = 0;
    for (std::size_t op = 0; op < operands.size(); ++op) {
        const int w = widths[op];
        const std::uint64_t mask = width_mask(w);
        const std::size_t word = static_cast<std::size_t>(bit_offset) / 64;
        const int shift = bit_offset % 64;
        const bool straddles = shift + w > 64;
        const std::int64_t* src = operands[op].data();
        std::size_t truncated = 0;
        for (std::size_t j = 0; j < n; ++j) {
            const auto bits = static_cast<std::uint64_t>(src[j]) & mask;
            const std::int64_t back =
                w >= 64 ? static_cast<std::int64_t>(bits)
                        : (static_cast<std::int64_t>(bits << (64 - w)) >> (64 - w));
            if (back != src[j]) {
                ++truncated;
            }
            std::uint64_t* sample = trace.words_.data() + j * stride;
            sample[word] |= bits << shift;
            if (straddles) {
                // shift ≥ 1 whenever w ≤ 64 bits straddle, so 64 − shift
                // is a valid shift count.
                sample[word + 1] |= bits >> (64 - shift);
            }
        }
        trace.out_of_range_by_operand_[op] = truncated;
        trace.out_of_range_ += truncated;
        bit_offset += w;
    }
    return trace;
}

PackedTrace PackedTrace::from_patterns(std::span<const util::BitVec> patterns)
{
    HDPM_REQUIRE(!patterns.empty(), "no patterns");
    const int m = patterns.front().width();
    HDPM_REQUIRE(m >= 1, "zero-width patterns");
    PackedTrace trace;
    trace.width_ = m;
    trace.operand_widths_ = {m};
    trace.out_of_range_by_operand_ = {0};
    trace.id_ = next_id();
    trace.words_per_sample_ = 1;
    trace.samples_ = patterns.size();
    trace.words_.reserve(patterns.size());
    for (std::size_t j = 0; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == m, "pattern width mismatch at index ", j);
        trace.words_.push_back(patterns[j].raw());
    }
    return trace;
}

PackedTrace PackedTrace::from_csv(const std::string& path, int width)
{
    const std::vector<std::int64_t> values = load_stream(path);
    return from_values(values, width);
}

namespace {

/// Shared geometry validation of the adopt/view constructors: checks the
/// operand widths and that @p words holds exactly samples × stride words.
/// Returns (total width, stride).
std::pair<int, std::size_t> check_packed_geometry(std::size_t words,
                                                  std::span<const int> operand_widths,
                                                  std::size_t samples)
{
    HDPM_REQUIRE(!operand_widths.empty(), "no operand widths");
    int total = 0;
    for (const int w : operand_widths) {
        HDPM_REQUIRE(w >= 1 && w <= 64, "operand width ", w, " out of range [1, 64]");
        total += w;
    }
    HDPM_REQUIRE(total <= PackedTrace::kMaxWidth, "operand widths sum to ", total,
                 " > ", PackedTrace::kMaxWidth);
    const std::size_t stride = words_for(total);
    // Divide instead of multiplying: `samples` can be an untrusted value
    // from a wire frame or a file header, and `samples * stride` wrapping
    // around SIZE_MAX must not let a huge sample count match a tiny word
    // buffer (the masking/validation loops below would then run off the end).
    HDPM_REQUIRE(words % stride == 0 && samples == words / stride,
                 "packed word count ", words, " does not match ", samples,
                 " samples of ", stride, " word(s)");
    return {total, stride};
}

/// Mask of the bits inside the width in a sample's top word.
constexpr std::uint64_t top_word_mask(int width, std::size_t stride) noexcept
{
    return width_mask(width - static_cast<int>(stride - 1) * 64);
}

} // namespace

PackedTrace PackedTrace::from_packed_words(std::vector<std::uint64_t> words,
                                           std::span<const int> operand_widths,
                                           std::size_t samples)
{
    const auto [total, stride] =
        check_packed_geometry(words.size(), operand_widths, samples);
    // Defensive masking: the kernels assume bits above the width are zero.
    const std::uint64_t top_mask = top_word_mask(total, stride);
    for (std::size_t j = 0; j < samples; ++j) {
        words[j * stride + stride - 1] &= top_mask;
    }
    PackedTrace trace;
    trace.width_ = total;
    trace.operand_widths_.assign(operand_widths.begin(), operand_widths.end());
    trace.out_of_range_by_operand_.assign(operand_widths.size(), 0);
    trace.id_ = next_id();
    trace.words_per_sample_ = stride;
    trace.samples_ = samples;
    trace.words_ = std::move(words);
    return trace;
}

PackedTrace PackedTrace::view_over(std::span<const std::uint64_t> words,
                                   std::span<const int> operand_widths,
                                   std::size_t samples)
{
    const auto [total, stride] =
        check_packed_geometry(words.size(), operand_widths, samples);
    // The backing store may be an unwritable mapping, so instead of masking
    // we require the invariant to already hold: a stray bit above the width
    // means the file is corrupt (or not a trace file at all).
    const std::uint64_t top_mask = top_word_mask(total, stride);
    for (std::size_t j = 0; j < samples; ++j) {
        HDPM_REQUIRE((words[j * stride + stride - 1] & ~top_mask) == 0,
                     "sample ", j, " has bits above the trace width ", total,
                     " — corrupt packed storage");
    }
    PackedTrace trace;
    trace.width_ = total;
    trace.view_ = words;
    trace.operand_widths_.assign(operand_widths.begin(), operand_widths.end());
    trace.out_of_range_by_operand_.assign(operand_widths.size(), 0);
    trace.id_ = next_id();
    trace.words_per_sample_ = stride;
    trace.samples_ = samples;
    return trace;
}

std::vector<util::BitVec> PackedTrace::to_patterns() const
{
    HDPM_REQUIRE(width_ <= util::BitVec::kMaxWidth, "trace width ", width_,
                 " exceeds BitVec::kMaxWidth; wide traces cannot be expanded");
    std::vector<util::BitVec> patterns;
    patterns.reserve(samples_);
    const std::span<const std::uint64_t> storage = words();
    for (std::size_t j = 0; j < samples_; ++j) {
        patterns.emplace_back(width_, storage[j]);
    }
    return patterns;
}

} // namespace hdpm::streams
