#include "streams/wordstats.hpp"

#include <cmath>

#include "util/accumulators.hpp"
#include "util/error.hpp"

namespace hdpm::streams {

double WordStats::stddev() const noexcept
{
    return std::sqrt(variance);
}

std::vector<WordStats> windowed_word_stats(std::span<const std::int64_t> values,
                                           int width, std::size_t window)
{
    HDPM_REQUIRE(window >= 2, "window must hold at least two samples");
    std::vector<WordStats> result;
    result.reserve(values.size() / window);
    for (std::size_t start = 0; start + window <= values.size(); start += window) {
        result.push_back(measure_word_stats(values.subspan(start, window), width));
    }
    return result;
}

WordStats measure_word_stats(std::span<const std::int64_t> values, int width)
{
    HDPM_REQUIRE(!values.empty(), "empty stream");
    util::AutocorrAccumulator acc;
    for (const std::int64_t v : values) {
        acc.add(static_cast<double>(v));
    }
    WordStats stats;
    stats.mean = acc.mean();
    stats.variance = acc.variance();
    stats.rho = acc.rho();
    stats.width = width;
    stats.count = values.size();
    return stats;
}

} // namespace hdpm::streams
