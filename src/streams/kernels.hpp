#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "streams/packed_trace.hpp"
#include "util/cpu.hpp"

namespace hdpm::streams {

/// Which implementation the stream-classification kernels use.
///
/// Packed is the production path: whole samples processed as uint64 words
/// (popcount, bit-sliced vertical counters), dispatching to the widest
/// SIMD tier the host supports (see util::cpu). Scalar is the original
/// bit-by-bit / BitVec-per-pair code, retained as the differential
/// baseline — all paths produce bit-identical integer counts by
/// construction, for every width, thread count, chunk size, and SIMD
/// level, and the property tests in tests/ hold them to that.
enum class EstimationKernel {
    Scalar, ///< per-pair BitVec ops, per-bit `.get(i)` loops (baseline)
    Packed, ///< word-parallel popcount / vertical-counter kernels
};

[[nodiscard]] std::string kernel_name(EstimationKernel kernel);

/// Knobs shared by the classification kernels.
struct KernelOptions {
    EstimationKernel kernel = EstimationKernel::Packed;

    /// Worker threads for chunked classification; 0 = all hardware
    /// threads, 1 = run inline on the calling thread.
    unsigned threads = 1;

    /// Transitions per chunk when threading. Chunk boundaries overlap by
    /// one sample (pair j needs samples j−1 and j) and per-chunk integer
    /// histograms are merged in chunk order, so counts are bit-identical
    /// for any thread count and chunk size.
    std::size_t chunk = std::size_t{1} << 16;

    /// SIMD tier for the packed kernel; nullopt defers to
    /// util::cpu::active() (runtime detection, the HDPM_SIMD environment
    /// variable, or util::cpu::force()). Requests above the host's
    /// capability are clamped. Has no effect on the scalar kernel.
    std::optional<util::cpu::SimdLevel> simd{};
};

/// Integer Hamming-distance histogram of consecutive samples:
/// counts[i] = |{j : Hd(w[j−1], w[j]) = i}|, i = 0..width.
struct HdHistogram {
    int width = 0;
    std::size_t pairs = 0;
    std::vector<std::uint64_t> counts;

    /// Σ i·counts[i] / pairs — the empirical average Hamming distance.
    [[nodiscard]] double average_hd() const noexcept;

    /// Normalized p(Hd = i) distribution (sums to 1).
    [[nodiscard]] std::vector<double> to_distribution() const;
};

/// Integer (Hd, stable-zero) class histogram — the enhanced model's event
/// classes E_{i,z}: count(hd, zeros) pairs with Hamming distance hd and
/// zeros bit positions that are 0 in both samples (zeros ∈ [0, width−hd]).
struct HdClassHistogram {
    int width = 0;
    std::size_t pairs = 0;
    /// Flattened [hd][zeros] table, stride width+1.
    std::vector<std::uint64_t> counts;

    [[nodiscard]] std::uint64_t count(int hd, int zeros) const;
};

/// Integer per-bit activity counts: ones[i] = cycles bit i is 1 over all
/// samples; toggles[i] = consecutive-sample pairs in which bit i flips.
struct PackedBitCounts {
    int width = 0;
    std::size_t samples = 0;
    std::vector<std::uint64_t> ones;
    std::vector<std::uint64_t> toggles;
};

/// Hd histogram of a packed trace (needs ≥ 2 samples).
[[nodiscard]] HdHistogram hd_histogram(const PackedTrace& trace,
                                       const KernelOptions& options = {});

/// (Hd, stable-zero) class histogram of a packed trace (needs ≥ 2 samples).
[[nodiscard]] HdClassHistogram hd_class_histogram(const PackedTrace& trace,
                                                  const KernelOptions& options = {});

/// Per-bit ones/toggle counts of a packed trace (needs ≥ 2 samples).
[[nodiscard]] PackedBitCounts count_bits(const PackedTrace& trace,
                                         const KernelOptions& options = {});

/// Single-threaded word-span kernels. @p words is sample-major with
/// ceil(width/64) words per sample (the PackedTrace layout), masked to
/// @p width; words.size() must be a multiple of that stride. These are the
/// building blocks the PackedTrace overloads chunk over; exposed for
/// callers that already hold raw words.
[[nodiscard]] HdHistogram hd_histogram_words(
    std::span<const std::uint64_t> words, int width,
    EstimationKernel kernel = EstimationKernel::Packed,
    std::optional<util::cpu::SimdLevel> simd = {});
[[nodiscard]] HdClassHistogram hd_class_histogram_words(
    std::span<const std::uint64_t> words, int width,
    EstimationKernel kernel = EstimationKernel::Packed,
    std::optional<util::cpu::SimdLevel> simd = {});
[[nodiscard]] PackedBitCounts count_bits_words(
    std::span<const std::uint64_t> words, int width,
    EstimationKernel kernel = EstimationKernel::Packed,
    std::optional<util::cpu::SimdLevel> simd = {});

} // namespace hdpm::streams
