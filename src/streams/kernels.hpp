#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "streams/packed_trace.hpp"

namespace hdpm::streams {

/// Which implementation the stream-classification kernels use.
///
/// Packed is the production path: whole samples processed as uint64 words
/// (popcount, bit-sliced vertical counters). Scalar is the original
/// bit-by-bit / BitVec-per-pair code, retained as the differential
/// baseline — both produce bit-identical integer counts by construction,
/// and the property tests in tests/estimation_test.cpp hold them to that.
enum class EstimationKernel {
    Scalar, ///< per-pair BitVec ops, per-bit `.get(i)` loops (baseline)
    Packed, ///< word-parallel popcount / vertical-counter kernels
};

[[nodiscard]] std::string kernel_name(EstimationKernel kernel);

/// Knobs shared by the classification kernels.
struct KernelOptions {
    EstimationKernel kernel = EstimationKernel::Packed;

    /// Worker threads for chunked classification; 0 = all hardware
    /// threads, 1 = run inline on the calling thread.
    unsigned threads = 1;

    /// Transitions per chunk when threading. Chunk boundaries overlap by
    /// one sample (pair j needs words j−1 and j) and per-chunk integer
    /// histograms are merged in chunk order, so counts are bit-identical
    /// for any thread count and chunk size.
    std::size_t chunk = std::size_t{1} << 16;
};

/// Integer Hamming-distance histogram of consecutive samples:
/// counts[i] = |{j : Hd(w[j−1], w[j]) = i}|, i = 0..width.
struct HdHistogram {
    int width = 0;
    std::size_t pairs = 0;
    std::vector<std::uint64_t> counts;

    /// Σ i·counts[i] / pairs — the empirical average Hamming distance.
    [[nodiscard]] double average_hd() const noexcept;

    /// Normalized p(Hd = i) distribution (sums to 1).
    [[nodiscard]] std::vector<double> to_distribution() const;
};

/// Integer (Hd, stable-zero) class histogram — the enhanced model's event
/// classes E_{i,z}: count(hd, zeros) pairs with Hamming distance hd and
/// zeros bit positions that are 0 in both samples (zeros ∈ [0, width−hd]).
struct HdClassHistogram {
    int width = 0;
    std::size_t pairs = 0;
    /// Flattened [hd][zeros] table, stride width+1.
    std::vector<std::uint64_t> counts;

    [[nodiscard]] std::uint64_t count(int hd, int zeros) const;
};

/// Integer per-bit activity counts: ones[i] = cycles bit i is 1 over all
/// samples; toggles[i] = consecutive-sample pairs in which bit i flips.
struct PackedBitCounts {
    int width = 0;
    std::size_t samples = 0;
    std::vector<std::uint64_t> ones;
    std::vector<std::uint64_t> toggles;
};

/// Hd histogram of a packed trace (needs ≥ 2 samples).
[[nodiscard]] HdHistogram hd_histogram(const PackedTrace& trace,
                                       const KernelOptions& options = {});

/// (Hd, stable-zero) class histogram of a packed trace (needs ≥ 2 samples).
[[nodiscard]] HdClassHistogram hd_class_histogram(const PackedTrace& trace,
                                                  const KernelOptions& options = {});

/// Per-bit ones/toggle counts of a packed trace (needs ≥ 2 samples).
[[nodiscard]] PackedBitCounts count_bits(const PackedTrace& trace,
                                         const KernelOptions& options = {});

/// Single-threaded word-span kernels (words must be masked to @p width).
/// These are the building blocks the PackedTrace overloads chunk over;
/// exposed for callers that already hold raw words.
[[nodiscard]] HdHistogram hd_histogram_words(std::span<const std::uint64_t> words,
                                             int width,
                                             EstimationKernel kernel =
                                                 EstimationKernel::Packed);
[[nodiscard]] HdClassHistogram hd_class_histogram_words(
    std::span<const std::uint64_t> words, int width,
    EstimationKernel kernel = EstimationKernel::Packed);
[[nodiscard]] PackedBitCounts count_bits_words(std::span<const std::uint64_t> words,
                                               int width,
                                               EstimationKernel kernel =
                                                   EstimationKernel::Packed);

} // namespace hdpm::streams
