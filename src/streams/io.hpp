#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hdpm::streams {

/// Save an integer sample stream as a single-column CSV file.
void save_stream(const std::string& path, std::span<const std::int64_t> values,
                 const std::string& column_name = "value");

/// Load a stream saved by save_stream (or any single-column numeric CSV,
/// e.g. an exported audio trace). Values are rounded to integers.
/// Throws RuntimeError on malformed input.
[[nodiscard]] std::vector<std::int64_t> load_stream(const std::string& path);

} // namespace hdpm::streams
