#include "streams/bitstats.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hdpm::streams {

using util::BitVec;

double BitStats::average_hd() const noexcept
{
    double sum = 0.0;
    for (const double t : transition_prob) {
        sum += t;
    }
    return sum;
}

BitStats measure_bit_stats(std::span<const BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    const int m = patterns.front().width();

    std::vector<std::uint64_t> ones(static_cast<std::size_t>(m), 0);
    std::vector<std::uint64_t> toggles(static_cast<std::size_t>(m), 0);
    for (std::size_t j = 0; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == m, "pattern width mismatch at index ", j);
        for (int i = 0; i < m; ++i) {
            if (patterns[j].get(i)) {
                ++ones[static_cast<std::size_t>(i)];
            }
        }
        if (j > 0) {
            const BitVec diff = patterns[j] ^ patterns[j - 1];
            for (int i = 0; i < m; ++i) {
                if (diff.get(i)) {
                    ++toggles[static_cast<std::size_t>(i)];
                }
            }
        }
    }

    BitStats stats;
    stats.pattern_count = patterns.size();
    stats.signal_prob.resize(static_cast<std::size_t>(m));
    stats.transition_prob.resize(static_cast<std::size_t>(m));
    const double n = static_cast<double>(patterns.size());
    const double pairs = static_cast<double>(patterns.size() - 1);
    for (int i = 0; i < m; ++i) {
        stats.signal_prob[static_cast<std::size_t>(i)] =
            static_cast<double>(ones[static_cast<std::size_t>(i)]) / n;
        stats.transition_prob[static_cast<std::size_t>(i)] =
            static_cast<double>(toggles[static_cast<std::size_t>(i)]) / pairs;
    }
    return stats;
}

BitStats measure_bit_stats(std::span<const std::int64_t> values, int width)
{
    const std::vector<BitVec> patterns = to_patterns(values, width);
    return measure_bit_stats(patterns);
}

std::vector<double> extract_hd_distribution(std::span<const BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    const int m = patterns.front().width();
    std::vector<double> dist(static_cast<std::size_t>(m) + 1, 0.0);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        const int hd = BitVec::hamming_distance(patterns[j - 1], patterns[j]);
        dist[static_cast<std::size_t>(hd)] += 1.0;
    }
    const double pairs = static_cast<double>(patterns.size() - 1);
    for (double& p : dist) {
        p /= pairs;
    }
    return dist;
}

double extract_average_hd(std::span<const BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    std::uint64_t total = 0;
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        total += static_cast<std::uint64_t>(
            BitVec::hamming_distance(patterns[j - 1], patterns[j]));
    }
    return static_cast<double>(total) / static_cast<double>(patterns.size() - 1);
}

std::vector<BitVec> to_patterns(std::span<const std::int64_t> values, int width)
{
    std::vector<BitVec> patterns;
    patterns.reserve(values.size());
    for (const std::int64_t v : values) {
        patterns.emplace_back(width, static_cast<std::uint64_t>(v));
    }
    return patterns;
}

std::vector<BitVec> to_patterns(std::span<const std::int64_t> values, int width,
                                NumberFormat format)
{
    if (format == NumberFormat::TwosComplement) {
        return to_patterns(values, width);
    }
    HDPM_REQUIRE(width >= 2, "sign-magnitude needs at least two bits");
    const std::int64_t max_mag = (std::int64_t{1} << (width - 1)) - 1;
    std::vector<BitVec> patterns;
    patterns.reserve(values.size());
    for (const std::int64_t v : values) {
        const std::int64_t mag = std::min(v < 0 ? -v : v, max_mag);
        BitVec pattern{width, static_cast<std::uint64_t>(mag)};
        pattern.set(width - 1, v < 0);
        patterns.push_back(pattern);
    }
    return patterns;
}

std::int64_t decode_pattern(const BitVec& pattern, NumberFormat format)
{
    if (format == NumberFormat::TwosComplement) {
        return util::decode_twos_complement(pattern);
    }
    HDPM_REQUIRE(pattern.width() >= 2, "sign-magnitude needs at least two bits");
    const auto mag =
        static_cast<std::int64_t>(pattern.slice(0, pattern.width() - 1).raw());
    return pattern.get(pattern.width() - 1) ? -mag : mag;
}

} // namespace hdpm::streams
