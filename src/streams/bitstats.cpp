#include "streams/bitstats.hpp"

#include <algorithm>

#include "streams/kernels.hpp"
#include "util/error.hpp"

namespace hdpm::streams {

using util::BitVec;

double BitStats::average_hd() const noexcept
{
    double sum = 0.0;
    for (const double t : transition_prob) {
        sum += t;
    }
    return sum;
}

BitStats measure_bit_stats(std::span<const BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    const int m = patterns.front().width();

    // Width check and word gather in one pass; the per-bit counting itself
    // runs word-parallel (CSA vertical counters) instead of `.get(i)` loops.
    std::vector<std::uint64_t> words;
    words.reserve(patterns.size());
    for (std::size_t j = 0; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == m, "pattern width mismatch at index ", j);
        words.push_back(patterns[j].raw());
    }
    const PackedBitCounts counts =
        count_bits_words(words, m, EstimationKernel::Packed);

    BitStats stats;
    stats.pattern_count = patterns.size();
    stats.signal_prob.resize(static_cast<std::size_t>(m));
    stats.transition_prob.resize(static_cast<std::size_t>(m));
    const double n = static_cast<double>(patterns.size());
    const double pairs = static_cast<double>(patterns.size() - 1);
    for (int i = 0; i < m; ++i) {
        stats.signal_prob[static_cast<std::size_t>(i)] =
            static_cast<double>(counts.ones[static_cast<std::size_t>(i)]) / n;
        stats.transition_prob[static_cast<std::size_t>(i)] =
            static_cast<double>(counts.toggles[static_cast<std::size_t>(i)]) / pairs;
    }
    return stats;
}

BitStats measure_bit_stats(std::span<const std::int64_t> values, int width)
{
    const std::vector<BitVec> patterns = to_patterns(values, width);
    return measure_bit_stats(patterns);
}

std::vector<double> extract_hd_distribution(std::span<const BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    const int m = patterns.front().width();
    std::vector<double> dist(static_cast<std::size_t>(m) + 1, 0.0);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        const int hd = BitVec::hamming_distance(patterns[j - 1], patterns[j]);
        dist[static_cast<std::size_t>(hd)] += 1.0;
    }
    const double pairs = static_cast<double>(patterns.size() - 1);
    for (double& p : dist) {
        p /= pairs;
    }
    return dist;
}

double extract_average_hd(std::span<const BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    std::uint64_t total = 0;
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        total += static_cast<std::uint64_t>(
            BitVec::hamming_distance(patterns[j - 1], patterns[j]));
    }
    return static_cast<double>(total) / static_cast<double>(patterns.size() - 1);
}

std::vector<BitVec> to_patterns(std::span<const std::int64_t> values, int width)
{
    std::vector<BitVec> patterns;
    patterns.reserve(values.size());
    for (const std::int64_t v : values) {
        patterns.emplace_back(width, static_cast<std::uint64_t>(v));
    }
    return patterns;
}

std::vector<BitVec> to_patterns(std::span<const std::int64_t> values, int width,
                                NumberFormat format, std::size_t* clamped)
{
    if (clamped != nullptr) {
        *clamped = 0;
    }
    if (format == NumberFormat::TwosComplement) {
        return to_patterns(values, width);
    }
    HDPM_REQUIRE(width >= 2, "sign-magnitude needs at least two bits");
    const std::uint64_t max_mag = (std::uint64_t{1} << (width - 1)) - 1;
    std::vector<BitVec> patterns;
    patterns.reserve(values.size());
    for (const std::int64_t v : values) {
        // Magnitude in unsigned arithmetic: negating INT64_MIN as int64_t
        // would overflow, but its magnitude is representable as uint64_t.
        const std::uint64_t abs_v = v < 0 ? ~static_cast<std::uint64_t>(v) + 1
                                          : static_cast<std::uint64_t>(v);
        const std::uint64_t mag = std::min(abs_v, max_mag);
        if (mag != abs_v && clamped != nullptr) {
            ++*clamped;
        }
        BitVec pattern{width, mag};
        pattern.set(width - 1, v < 0);
        patterns.push_back(pattern);
    }
    return patterns;
}

std::int64_t decode_pattern(const BitVec& pattern, NumberFormat format)
{
    if (format == NumberFormat::TwosComplement) {
        return util::decode_twos_complement(pattern);
    }
    HDPM_REQUIRE(pattern.width() >= 2, "sign-magnitude needs at least two bits");
    const auto mag =
        static_cast<std::int64_t>(pattern.slice(0, pattern.width() - 1).raw());
    return pattern.get(pattern.width() - 1) ? -mag : mag;
}

} // namespace hdpm::streams
