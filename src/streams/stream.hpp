#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hdpm::streams {

/// The input data-stream classes of the paper's robustness evaluation
/// (section 4.2):
///   I   random patterns (same statistics as the characterization stream)
///   II  linear quantized music signals (weak correlation)
///   III linear quantized speech signals (strong correlation)
///   IV  video signals (strong correlation)
///   V   outputs of a binary counter
///
/// The paper's recorded signals are proprietary; these generators are
/// synthetic processes engineered to match the *word-level statistics* the
/// paper classifies each type by (zero/non-zero mean, variance scale,
/// lag-1 autocorrelation, sign activity) — the quantities the data model of
/// section 6 consumes.
enum class DataType {
    Random,  ///< I: uniform random patterns
    Music,   ///< II: sinusoid mix + noise, ρ ≈ 0.5–0.7
    Speech,  ///< III: bursty AR(2), ρ ≈ 0.9–0.97
    Video,   ///< IV: scanline model with region plateaus, ρ ≈ 0.85–0.95
    Counter, ///< V: binary up-counter (non-negative values only)
};

/// All data types in paper order I..V.
[[nodiscard]] std::span<const DataType> all_data_types() noexcept;

/// Roman-numeral label used in the paper's tables ("I".."V").
[[nodiscard]] std::string data_type_label(DataType type);

/// Descriptive name ("random", "music", ...).
[[nodiscard]] std::string data_type_name(DataType type);

/// Generate @p n samples of a data stream for a @p width-bit signed word.
/// Values lie in [-2^(width-1), 2^(width-1)-1] (Counter stays non-negative).
/// The same (type, width, n, seed) always yields the same stream.
[[nodiscard]] std::vector<std::int64_t> generate_stream(DataType type, int width,
                                                        std::size_t n,
                                                        std::uint64_t seed);

} // namespace hdpm::streams
