#include "streams/trace_file.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fault.hpp"

namespace hdpm::streams {

namespace {

constexpr char kMagic[8] = {'H', 'D', 'P', 'M', 'T', 'R', 'C', '\n'};
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void io_fault(const std::filesystem::path& path, std::string detail)
{
    util::FaultContext context;
    context.component = path.string();
    context.detail = std::move(detail);
    throw util::FaultError{util::FaultKind::IoError, std::move(context)};
}

[[noreturn]] void corrupt_fault(const std::filesystem::path& path, std::string detail)
{
    util::FaultContext context;
    context.component = path.string();
    context.detail = std::move(detail);
    throw util::FaultError{util::FaultKind::ModelFileCorrupt, std::move(context)};
}

void put_u32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

void put_u64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
}

std::uint32_t get_u32(const unsigned char* p) noexcept
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | p[i];
    }
    return v;
}

std::uint64_t get_u64(const unsigned char* p) noexcept
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | p[i];
    }
    return v;
}

} // namespace

std::size_t trace_file_words_offset(std::size_t operand_count) noexcept
{
    const std::size_t header = 8 + 4 + 4 + 8 + 4 * operand_count;
    return (header + 7) / 8 * 8;
}

void write_trace_file(const std::filesystem::path& path, const PackedTrace& trace)
{
    std::string header;
    header.append(kMagic, sizeof kMagic);
    put_u32(header, kVersion);
    put_u32(header, static_cast<std::uint32_t>(trace.operand_widths().size()));
    put_u64(header, trace.size());
    for (const int w : trace.operand_widths()) {
        put_u32(header, static_cast<std::uint32_t>(w));
    }
    header.resize(trace_file_words_offset(trace.operand_widths().size()), '\0');

    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
        if (!out) {
            io_fault(tmp, "cannot open for writing");
        }
        out.write(header.data(), static_cast<std::streamsize>(header.size()));
        const auto words = trace.words();
        // The in-memory representation is already little-endian uint64 on
        // every target this tree builds for (x86-64 / aarch64-le).
        out.write(reinterpret_cast<const char*>(words.data()),
                  static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
        out.flush();
        if (!out) {
            std::error_code ignore;
            std::filesystem::remove(tmp, ignore);
            io_fault(tmp, "short write");
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code ignore;
        std::filesystem::remove(tmp, ignore);
        io_fault(path, "rename failed: " + ec.message());
    }
}

MappedTrace::MappedTrace(const std::filesystem::path& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        io_fault(path, std::string{"open failed: "} + std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        io_fault(path, std::string{"fstat failed: "} + std::strerror(err));
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < trace_file_words_offset(0)) {
        ::close(fd);
        corrupt_fault(path, "file shorter than the fixed header");
    }
    base_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (base_ == MAP_FAILED) {
        base_ = nullptr;
        io_fault(path, std::string{"mmap failed: "} + std::strerror(errno));
    }

    const auto* bytes = static_cast<const unsigned char*>(base_);
    if (std::memcmp(bytes, kMagic, sizeof kMagic) != 0) {
        unmap();
        corrupt_fault(path, "bad magic (not a trace file)");
    }
    const std::uint32_t version = get_u32(bytes + 8);
    if (version != kVersion) {
        unmap();
        corrupt_fault(path, "unsupported format version " + std::to_string(version));
    }
    const std::uint32_t operand_count = get_u32(bytes + 12);
    const std::uint64_t samples = get_u64(bytes + 16);
    if (operand_count == 0 || operand_count > PackedTrace::kMaxWidth) {
        unmap();
        corrupt_fault(path, "implausible operand count " +
                                std::to_string(operand_count));
    }
    const std::size_t offset = trace_file_words_offset(operand_count);
    if (size_ < offset) {
        unmap();
        corrupt_fault(path, "file shorter than its operand-width table");
    }
    std::vector<int> widths(operand_count);
    for (std::uint32_t i = 0; i < operand_count; ++i) {
        widths[i] = static_cast<int>(get_u32(bytes + 24 + 4 * i));
    }
    const auto* words = reinterpret_cast<const std::uint64_t*>(bytes + offset);
    const std::size_t word_count = (size_ - offset) / sizeof(std::uint64_t);
    try {
        trace_ = PackedTrace::view_over(
            std::span<const std::uint64_t>{words, word_count}, widths,
            static_cast<std::size_t>(samples));
    } catch (const std::exception& error) {
        const std::string detail = error.what();
        unmap();
        corrupt_fault(path, detail);
    }
}

MappedTrace::~MappedTrace()
{
    unmap();
}

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : base_(other.base_), size_(other.size_), trace_(std::move(other.trace_))
{
    other.base_ = nullptr;
    other.size_ = 0;
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept
{
    if (this != &other) {
        unmap();
        base_ = other.base_;
        size_ = other.size_;
        trace_ = std::move(other.trace_);
        other.base_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

void MappedTrace::unmap() noexcept
{
    if (base_ != nullptr) {
        ::munmap(base_, size_);
        base_ = nullptr;
        size_ = 0;
    }
}

} // namespace hdpm::streams
