#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace hdpm::streams {

struct PackedTraceTestAccess;

/// A pattern stream packed for word-parallel estimation: each sample is
/// `words_per_sample()` contiguous `uint64_t` words (one for total widths
/// up to 64, more for wider modules), stored sample-major, built once and
/// reused across estimation queries.
///
/// This is the serving-side counterpart of `std::vector<BitVec>`: the same
/// bit layout (operand 0 in the low bits, each operand two's complement,
/// LSB-first — see DatapathModule::encode), but without one width field per
/// sample and without re-materializing patterns per query. Global bit i of
/// sample j lives in word `j*words_per_sample() + i/64`, bit `i%64`; bits
/// above width() in a sample's top word are always zero. The multi-operand
/// constructor concatenates operand value streams directly with shifts
/// (splitting values that straddle a word boundary), so no intermediate
/// BitVec is ever created.
///
/// Values are encoded by masking to the operand width (exactly like
/// `BitVec{width, bits}` and `to_patterns`); samples whose value does not
/// survive the masking round trip are counted per operand in
/// out_of_range_by_operand() — and in aggregate in out_of_range() — so
/// callers can surface *which* stream silently truncated.
class PackedTrace {
public:
    /// Sanity cap on the total concatenated width (64 words per sample).
    static constexpr int kMaxWidth = 4096;

    PackedTrace() = default;

    /// Pack a single @p width-bit operand stream (two's complement; values
    /// are sign-extended across words when width > 64).
    [[nodiscard]] static PackedTrace from_values(std::span<const std::int64_t> values,
                                                 int width);

    /// Pack multiple operand streams into concatenated module-input words.
    /// All streams must have equal length; each operand width must be in
    /// [1, 64] and the widths may sum to any total up to kMaxWidth.
    [[nodiscard]] static PackedTrace from_operands(
        std::span<const std::vector<std::int64_t>> operands,
        std::span<const int> widths);

    /// Pack an existing BitVec pattern stream (all widths must match).
    [[nodiscard]] static PackedTrace from_patterns(
        std::span<const util::BitVec> patterns);

    /// Load a single-operand trace from a CSV file via load_stream().
    [[nodiscard]] static PackedTrace from_csv(const std::string& path, int width);

    /// Adopt already-packed sample words (the words()/sample() layout:
    /// sample-major, ceil(width/64) words per sample). Bits above the
    /// total width in each sample's top word are masked off defensively,
    /// so the kernels' masked-top-word invariant always holds. This is the
    /// ingestion path for wire-transferred traces, where the client packed
    /// the samples itself.
    [[nodiscard]] static PackedTrace from_packed_words(
        std::vector<std::uint64_t> words, std::span<const int> operand_widths,
        std::size_t samples);

    /// Non-owning view over externally stored packed words (e.g. a
    /// read-only file mapping): the trace moves no bytes, it just points at
    /// @p words. The storage must outlive the view and every copy of it —
    /// see MappedTrace, which bundles the mapping with its view. Because
    /// the backing store is immutable and possibly unwritable, bits above
    /// the total width must already be zero in every sample's top word;
    /// a sample violating that is rejected (corrupt file, not a bug).
    [[nodiscard]] static PackedTrace view_over(std::span<const std::uint64_t> words,
                                              std::span<const int> operand_widths,
                                              std::size_t samples);

    /// Concatenated sample width in bits (the model's m).
    [[nodiscard]] int width() const noexcept { return width_; }

    /// Words each sample occupies: ceil(width / 64), ≥ 1 for non-empty
    /// traces. The stride between consecutive samples in words().
    [[nodiscard]] std::size_t words_per_sample() const noexcept
    {
        return words_per_sample_;
    }

    /// Number of samples.
    [[nodiscard]] std::size_t size() const noexcept { return samples_; }

    /// Number of consecutive-sample transitions (0 if fewer than 2 samples).
    [[nodiscard]] std::size_t cycles() const noexcept
    {
        return samples_ == 0 ? 0 : samples_ - 1;
    }

    [[nodiscard]] bool empty() const noexcept { return samples_ == 0; }

    /// The packed words, sample-major: sample j is words()[j*stride ..
    /// j*stride+stride) with stride = words_per_sample(). Bits above
    /// width() in each sample's top word are zero. For a view_over trace
    /// this spans the external storage; otherwise the owned buffer.
    [[nodiscard]] std::span<const std::uint64_t> words() const noexcept
    {
        return view_.data() != nullptr ? view_
                                       : std::span<const std::uint64_t>{words_};
    }

    /// The words of sample @p j.
    [[nodiscard]] std::span<const std::uint64_t> sample(std::size_t j) const noexcept
    {
        return words().subspan(j * words_per_sample_, words_per_sample_);
    }

    /// True when this trace is a non-owning view over external storage.
    [[nodiscard]] bool is_view() const noexcept { return view_.data() != nullptr; }

    /// Widths of the concatenated operands (one entry per operand).
    [[nodiscard]] std::span<const int> operand_widths() const noexcept
    {
        return operand_widths_;
    }

    /// Samples whose value exceeded its operand's two's-complement range
    /// and was truncated by the width mask during packing (all operands).
    [[nodiscard]] std::size_t out_of_range() const noexcept { return out_of_range_; }

    /// Per-operand truncation counts, parallel to operand_widths().
    [[nodiscard]] std::span<const std::size_t> out_of_range_by_operand() const noexcept
    {
        return out_of_range_by_operand_;
    }

    /// Identity for caching derived artifacts (histograms): unique per
    /// constructed trace, shared by copies. A PackedTrace is immutable
    /// after construction, so equal ids imply equal contents.
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

    /// Expand back to BitVec patterns (for the scalar baseline and the
    /// reference simulator, which consume per-sample vectors). Only
    /// available for traces up to BitVec::kMaxWidth bits.
    [[nodiscard]] std::vector<util::BitVec> to_patterns() const;

private:
    friend struct PackedTraceTestAccess;

    [[nodiscard]] static std::uint64_t next_id() noexcept;

    std::vector<std::uint64_t> words_;
    std::span<const std::uint64_t> view_{}; ///< non-owning storage (view_over)
    std::vector<int> operand_widths_;
    std::vector<std::size_t> out_of_range_by_operand_;
    int width_ = 0;
    std::size_t words_per_sample_ = 1;
    std::size_t samples_ = 0;
    std::size_t out_of_range_ = 0;
    std::uint64_t id_ = 0;
};

/// Test-only backdoor: lets regression tests forge trace identities (e.g.
/// to prove a cache keyed on id alone would alias distinct geometries).
/// Not for production use — forged ids break the "equal ids imply equal
/// contents" caching contract on purpose.
struct PackedTraceTestAccess {
    static void set_id(PackedTrace& trace, std::uint64_t id) noexcept
    {
        trace.id_ = id;
    }
};

} // namespace hdpm::streams
