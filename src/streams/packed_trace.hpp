#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace hdpm::streams {

/// A pattern stream packed for word-parallel estimation: one `uint64_t`
/// word per ≤64-bit sample, stored contiguously, built once and reused
/// across estimation queries.
///
/// This is the serving-side counterpart of `std::vector<BitVec>`: the same
/// bit layout (operand 0 in the low bits, each operand two's complement,
/// LSB-first — see DatapathModule::encode), but without one width field per
/// sample and without re-materializing patterns per query. The multi-operand
/// constructor concatenates operand value streams directly with shifts, so
/// no intermediate BitVec is ever created.
///
/// Values are encoded by masking to the operand width (exactly like
/// `BitVec{width, bits}` and `to_patterns`); samples whose value does not
/// survive the masking round trip are counted in out_of_range() so callers
/// can surface silent truncation instead of absorbing it.
class PackedTrace {
public:
    PackedTrace() = default;

    /// Pack a single @p width-bit operand stream (two's complement).
    [[nodiscard]] static PackedTrace from_values(std::span<const std::int64_t> values,
                                                 int width);

    /// Pack multiple operand streams into concatenated module-input words.
    /// All streams must have equal length; operand widths must sum to ≤ 64.
    [[nodiscard]] static PackedTrace from_operands(
        std::span<const std::vector<std::int64_t>> operands,
        std::span<const int> widths);

    /// Pack an existing BitVec pattern stream (all widths must match).
    [[nodiscard]] static PackedTrace from_patterns(
        std::span<const util::BitVec> patterns);

    /// Load a single-operand trace from a CSV file via load_stream().
    [[nodiscard]] static PackedTrace from_csv(const std::string& path, int width);

    /// Concatenated sample width in bits (the model's m).
    [[nodiscard]] int width() const noexcept { return width_; }

    /// Number of samples (words).
    [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }

    /// Number of consecutive-sample transitions (0 if fewer than 2 samples).
    [[nodiscard]] std::size_t cycles() const noexcept
    {
        return words_.empty() ? 0 : words_.size() - 1;
    }

    [[nodiscard]] bool empty() const noexcept { return words_.empty(); }

    /// The packed words; bits above width() are zero in every word.
    [[nodiscard]] std::span<const std::uint64_t> words() const noexcept
    {
        return words_;
    }

    /// Widths of the concatenated operands (one entry per operand).
    [[nodiscard]] std::span<const int> operand_widths() const noexcept
    {
        return operand_widths_;
    }

    /// Samples whose value exceeded its operand's two's-complement range
    /// and was truncated by the width mask during packing.
    [[nodiscard]] std::size_t out_of_range() const noexcept { return out_of_range_; }

    /// Identity for caching derived artifacts (histograms): unique per
    /// constructed trace, shared by copies. A PackedTrace is immutable
    /// after construction, so equal ids imply equal contents.
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

    /// Expand back to BitVec patterns (for the scalar baseline and the
    /// reference simulator, which consume per-sample vectors).
    [[nodiscard]] std::vector<util::BitVec> to_patterns() const;

private:
    [[nodiscard]] static std::uint64_t next_id() noexcept;

    std::vector<std::uint64_t> words_;
    std::vector<int> operand_widths_;
    int width_ = 0;
    std::size_t out_of_range_ = 0;
    std::uint64_t id_ = 0;
};

} // namespace hdpm::streams
