#include "streams/io.hpp"

#include <cmath>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace hdpm::streams {

void save_stream(const std::string& path, std::span<const std::int64_t> values,
                 const std::string& column_name)
{
    std::vector<std::vector<double>> rows;
    rows.reserve(values.size());
    for (const std::int64_t v : values) {
        rows.push_back({static_cast<double>(v)});
    }
    util::write_csv(path, {column_name}, rows);
}

std::vector<std::int64_t> load_stream(const std::string& path)
{
    const util::CsvTable table = util::read_csv(path);
    HDPM_REQUIRE(table.header.size() == 1, "'", path, "' must have exactly one column");
    std::vector<std::int64_t> values;
    values.reserve(table.rows.size());
    for (const auto& row : table.rows) {
        values.push_back(static_cast<std::int64_t>(std::llround(row[0])));
    }
    return values;
}

} // namespace hdpm::streams
