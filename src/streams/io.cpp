#include "streams/io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <string_view>

#include "util/error.hpp"

namespace hdpm::streams {

namespace {

/// Strip a trailing '\r' so CRLF files parse like LF files.
std::string_view trim_cr(std::string_view line) noexcept
{
    if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
    }
    return line;
}

/// Parse one cell: integer fast path, double fallback (rounded) so streams
/// exported with fractional formatting still load. Returns false if the
/// cell is not fully numeric.
bool parse_cell(std::string_view cell, std::int64_t& out) noexcept
{
    const char* begin = cell.data();
    const char* end = begin + cell.size();
    std::int64_t iv = 0;
    auto [p, ec] = std::from_chars(begin, end, iv);
    if (ec == std::errc{} && p == end) {
        out = iv;
        return true;
    }
    double dv = 0.0;
    auto [pd, ecd] = std::from_chars(begin, end, dv);
    if (ecd == std::errc{} && pd == end && std::isfinite(dv)) {
        out = static_cast<std::int64_t>(std::llround(dv));
        return true;
    }
    return false;
}

} // namespace

void save_stream(const std::string& path, std::span<const std::int64_t> values,
                 const std::string& column_name)
{
    std::ofstream out{path, std::ios::binary};
    if (!out) {
        HDPM_FAIL("cannot open '", path, "' for writing");
    }
    // Buffer whole lines and write integers directly — no per-value double
    // round trip, no stream formatting per sample.
    std::string buffer;
    buffer.reserve(values.size() * 8 + column_name.size() + 1);
    buffer.append(column_name);
    buffer.push_back('\n');
    char digits[24];
    for (const std::int64_t v : values) {
        auto [p, ec] = std::to_chars(digits, digits + sizeof(digits), v);
        (void)ec;
        buffer.append(digits, p);
        buffer.push_back('\n');
    }
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    if (!out) {
        HDPM_FAIL("write to '", path, "' failed");
    }
}

std::vector<std::int64_t> load_stream(const std::string& path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        HDPM_FAIL("cannot open '", path, "' for reading");
    }
    std::string text;
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size > 0) {
        text.resize(static_cast<std::size_t>(size));
        in.seekg(0);
        in.read(text.data(), size);
    }
    if (!in || text.empty()) {
        HDPM_FAIL("'", path, "' is empty");
    }

    std::string_view rest{text};
    const auto next_line = [&rest]() {
        const std::size_t nl = rest.find('\n');
        std::string_view line;
        if (nl == std::string_view::npos) {
            line = rest;
            rest = {};
        } else {
            line = rest.substr(0, nl);
            rest.remove_prefix(nl + 1);
        }
        return trim_cr(line);
    };

    const std::string_view header = next_line();
    HDPM_REQUIRE(header.find(',') == std::string_view::npos, "'", path,
                 "' must have exactly one column");

    std::vector<std::int64_t> values;
    // Estimate capacity from the payload size (≥ 2 bytes per "v\n" line).
    values.reserve(rest.size() / 2 + 1);
    std::size_t row = 0;
    while (!rest.empty()) {
        const std::string_view line = next_line();
        if (line.empty()) {
            continue;
        }
        ++row;
        if (line.find(',') != std::string_view::npos) {
            HDPM_FAIL("'", path, "': row ", row, " has more than one column");
        }
        std::int64_t v = 0;
        if (!parse_cell(line, v)) {
            HDPM_FAIL("'", path, "': non-numeric cell '", std::string{line}, "'");
        }
        values.push_back(v);
    }
    return values;
}

} // namespace hdpm::streams
