#include "streams/kernels.hpp"

#include <algorithm>
#include <bit>

#include "util/bitslice.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace hdpm::streams {

using util::BitVec;

namespace {

/// Range convention shared by all kernels: a chunk [begin, end) over the
/// sample index space owns the per-sample statistics of words begin..end−1
/// and the transitions (j−1, j) for j in [max(begin,1), end). Adjacent
/// chunks therefore overlap by one *read* (the predecessor word) but never
/// by a counted event, so per-chunk integer histograms merged in chunk
/// order reproduce the single-pass counts bit-for-bit.

HdHistogram hd_histogram_range(std::span<const std::uint64_t> words, std::size_t begin,
                               std::size_t end, int width, EstimationKernel kernel)
{
    HdHistogram h;
    h.width = width;
    const std::size_t first = std::max<std::size_t>(begin, 1);
    h.pairs = end - first;
    const auto bins = static_cast<std::size_t>(width) + 1;
    h.counts.assign(bins, 0);
    if (first >= end) {
        return h;
    }

    if (kernel == EstimationKernel::Scalar) {
        // Baseline: one BitVec pair per transition, as estimate_cycles and
        // extract_hd_distribution have always classified.
        for (std::size_t j = first; j < end; ++j) {
            const int hd =
                BitVec::hamming_distance(BitVec{width, words[j - 1]},
                                         BitVec{width, words[j]});
            ++h.counts[static_cast<std::size_t>(hd)];
        }
        return h;
    }

    // Packed: popcount over word XORs. Adjacent transitions are paired and
    // counted with ONE increment into a bins×bins table — halving the
    // read-modify-write traffic that dominates a histogram loop — and two
    // tables are interleaved so consecutive equal pair-indices don't
    // serialize on one counter's store-to-load dependency. The fold at the
    // end credits each (r, c) cell to bin r and bin c; all counts stay
    // integers, so the result is identical to incrementing per transition.
    std::vector<std::uint64_t> pairs2(bins * bins * 2, 0);
    std::uint64_t* t0 = pairs2.data();
    std::uint64_t* t1 = t0 + bins * bins;
    const std::uint64_t* w = words.data();
    std::size_t j = first;
    for (; j + 8 <= end; j += 8) {
        const auto a = static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]));
        const auto b = static_cast<std::size_t>(std::popcount(w[j + 1] ^ w[j]));
        const auto c = static_cast<std::size_t>(std::popcount(w[j + 2] ^ w[j + 1]));
        const auto d = static_cast<std::size_t>(std::popcount(w[j + 3] ^ w[j + 2]));
        const auto e = static_cast<std::size_t>(std::popcount(w[j + 4] ^ w[j + 3]));
        const auto f = static_cast<std::size_t>(std::popcount(w[j + 5] ^ w[j + 4]));
        const auto g = static_cast<std::size_t>(std::popcount(w[j + 6] ^ w[j + 5]));
        const auto i = static_cast<std::size_t>(std::popcount(w[j + 7] ^ w[j + 6]));
        ++t0[a * bins + b];
        ++t1[c * bins + d];
        ++t0[e * bins + f];
        ++t1[g * bins + i];
    }
    for (; j < end; ++j) {
        ++h.counts[static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]))];
    }
    for (std::size_t r = 0; r < bins; ++r) {
        for (std::size_t c = 0; c < bins; ++c) {
            const std::uint64_t cnt = t0[r * bins + c] + t1[r * bins + c];
            h.counts[r] += cnt;
            h.counts[c] += cnt;
        }
    }
    return h;
}

HdClassHistogram hd_class_histogram_range(std::span<const std::uint64_t> words,
                                          std::size_t begin, std::size_t end, int width,
                                          EstimationKernel kernel)
{
    HdClassHistogram h;
    h.width = width;
    const std::size_t first = std::max<std::size_t>(begin, 1);
    h.pairs = end - first;
    const auto stride = static_cast<std::size_t>(width) + 1;
    h.counts.assign(stride * stride, 0);
    if (first >= end) {
        return h;
    }

    if (kernel == EstimationKernel::Scalar) {
        for (std::size_t j = first; j < end; ++j) {
            const BitVec u{width, words[j - 1]};
            const BitVec v{width, words[j]};
            const auto hd = static_cast<std::size_t>(BitVec::hamming_distance(u, v));
            const auto zeros = static_cast<std::size_t>(BitVec::stable_zeros(u, v));
            ++h.counts[hd * stride + zeros];
        }
        return h;
    }

    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    std::vector<std::uint64_t> sub(stride * stride * 2, 0);
    std::uint64_t* s0 = sub.data();
    std::uint64_t* s1 = s0 + stride * stride;
    const std::uint64_t* w = words.data();
    std::size_t j = first;
    for (; j + 2 <= end; j += 2) {
        const auto hd0 = static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]));
        const auto z0 = static_cast<std::size_t>(std::popcount(~(w[j] | w[j - 1]) & mask));
        ++s0[hd0 * stride + z0];
        const auto hd1 = static_cast<std::size_t>(std::popcount(w[j + 1] ^ w[j]));
        const auto z1 =
            static_cast<std::size_t>(std::popcount(~(w[j + 1] | w[j]) & mask));
        ++s1[hd1 * stride + z1];
    }
    for (; j < end; ++j) {
        const auto hd = static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]));
        const auto z = static_cast<std::size_t>(std::popcount(~(w[j] | w[j - 1]) & mask));
        ++s0[hd * stride + z];
    }
    for (std::size_t i = 0; i < stride * stride; ++i) {
        h.counts[i] = s0[i] + s1[i];
    }
    return h;
}

PackedBitCounts count_bits_range(std::span<const std::uint64_t> words, std::size_t begin,
                                 std::size_t end, int width, EstimationKernel kernel)
{
    PackedBitCounts c;
    c.width = width;
    c.samples = end - begin;
    const auto m = static_cast<std::size_t>(width);
    c.ones.assign(m, 0);
    c.toggles.assign(m, 0);
    const std::size_t first = std::max<std::size_t>(begin, 1);

    if (kernel == EstimationKernel::Scalar) {
        // Baseline: the original per-bit `.get(i)` walk of measure_bit_stats.
        for (std::size_t j = begin; j < end; ++j) {
            const BitVec pattern{width, words[j]};
            for (int i = 0; i < width; ++i) {
                if (pattern.get(i)) {
                    ++c.ones[static_cast<std::size_t>(i)];
                }
            }
        }
        for (std::size_t j = first; j < end; ++j) {
            const BitVec diff = BitVec{width, words[j]} ^ BitVec{width, words[j - 1]};
            for (int i = 0; i < width; ++i) {
                if (diff.get(i)) {
                    ++c.toggles[static_cast<std::size_t>(i)];
                }
            }
        }
        return c;
    }

    // Packed: two CSA vertical counters accumulate the per-position tallies
    // with O(1) word-level ops per sample instead of a width-long bit loop.
    util::VerticalCounter ones;
    util::VerticalCounter toggles;
    for (std::size_t j = begin; j < end; ++j) {
        ones.add(words[j]);
    }
    for (std::size_t j = first; j < end; ++j) {
        toggles.add(words[j] ^ words[j - 1]);
    }
    const auto one_totals = ones.totals();
    const auto toggle_totals = toggles.totals();
    for (std::size_t i = 0; i < m; ++i) {
        c.ones[i] = one_totals[i];
        c.toggles[i] = toggle_totals[i];
    }
    return c;
}

/// Split [0, n) into deterministic sample chunks, run @p fn per chunk on
/// the pool, and fold the per-chunk results in chunk order with @p merge.
/// The chunk layout depends only on (n, options.chunk) — never on the
/// thread count — and all counts are integers, so the merged result is
/// bit-identical for any `threads`.
template <typename Result, typename RangeFn, typename MergeFn>
Result run_chunked(const PackedTrace& trace, const KernelOptions& options,
                   const RangeFn& fn, const MergeFn& merge)
{
    HDPM_REQUIRE(trace.size() >= 2, "need at least two samples");
    const std::size_t n = trace.size();
    const std::size_t chunk = std::max<std::size_t>(options.chunk, 2);
    if (options.threads == 1 || n <= chunk) {
        return fn(0, n);
    }
    const std::size_t chunks = (n + chunk - 1) / chunk;
    const util::ThreadPool pool{options.threads};
    std::vector<Result> parts = pool.parallel_map(chunks, [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        return fn(begin, end);
    });
    Result total = std::move(parts.front());
    for (std::size_t c = 1; c < parts.size(); ++c) {
        merge(total, parts[c]);
    }
    return total;
}

} // namespace

std::string kernel_name(EstimationKernel kernel)
{
    return kernel == EstimationKernel::Scalar ? "scalar" : "packed";
}

double HdHistogram::average_hd() const noexcept
{
    if (pairs == 0) {
        return 0.0;
    }
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        total += static_cast<std::uint64_t>(i) * counts[i];
    }
    return static_cast<double>(total) / static_cast<double>(pairs);
}

std::vector<double> HdHistogram::to_distribution() const
{
    HDPM_REQUIRE(pairs > 0, "empty histogram");
    std::vector<double> dist(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        dist[i] = static_cast<double>(counts[i]) / static_cast<double>(pairs);
    }
    return dist;
}

std::uint64_t HdClassHistogram::count(int hd, int zeros) const
{
    HDPM_REQUIRE(hd >= 0 && hd <= width, "Hd ", hd, " outside [0, ", width, "]");
    HDPM_REQUIRE(zeros >= 0 && zeros <= width - hd, "zeros ", zeros, " outside [0, ",
                 width - hd, "] for Hd ", hd);
    const auto stride = static_cast<std::size_t>(width) + 1;
    return counts[static_cast<std::size_t>(hd) * stride + static_cast<std::size_t>(zeros)];
}

HdHistogram hd_histogram_words(std::span<const std::uint64_t> words, int width,
                               EstimationKernel kernel)
{
    HDPM_REQUIRE(words.size() >= 2, "need at least two samples");
    return hd_histogram_range(words, 0, words.size(), width, kernel);
}

HdClassHistogram hd_class_histogram_words(std::span<const std::uint64_t> words,
                                          int width, EstimationKernel kernel)
{
    HDPM_REQUIRE(words.size() >= 2, "need at least two samples");
    return hd_class_histogram_range(words, 0, words.size(), width, kernel);
}

PackedBitCounts count_bits_words(std::span<const std::uint64_t> words, int width,
                                 EstimationKernel kernel)
{
    HDPM_REQUIRE(words.size() >= 2, "need at least two samples");
    return count_bits_range(words, 0, words.size(), width, kernel);
}

HdHistogram hd_histogram(const PackedTrace& trace, const KernelOptions& options)
{
    return run_chunked<HdHistogram>(
        trace, options,
        [&](std::size_t begin, std::size_t end) {
            return hd_histogram_range(trace.words(), begin, end, trace.width(),
                                      options.kernel);
        },
        [](HdHistogram& total, const HdHistogram& part) {
            total.pairs += part.pairs;
            for (std::size_t i = 0; i < total.counts.size(); ++i) {
                total.counts[i] += part.counts[i];
            }
        });
}

HdClassHistogram hd_class_histogram(const PackedTrace& trace,
                                    const KernelOptions& options)
{
    return run_chunked<HdClassHistogram>(
        trace, options,
        [&](std::size_t begin, std::size_t end) {
            return hd_class_histogram_range(trace.words(), begin, end, trace.width(),
                                            options.kernel);
        },
        [](HdClassHistogram& total, const HdClassHistogram& part) {
            total.pairs += part.pairs;
            for (std::size_t i = 0; i < total.counts.size(); ++i) {
                total.counts[i] += part.counts[i];
            }
        });
}

PackedBitCounts count_bits(const PackedTrace& trace, const KernelOptions& options)
{
    return run_chunked<PackedBitCounts>(
        trace, options,
        [&](std::size_t begin, std::size_t end) {
            return count_bits_range(trace.words(), begin, end, trace.width(),
                                    options.kernel);
        },
        [](PackedBitCounts& total, const PackedBitCounts& part) {
            total.samples += part.samples;
            for (std::size_t i = 0; i < total.ones.size(); ++i) {
                total.ones[i] += part.ones[i];
                total.toggles[i] += part.toggles[i];
            }
        });
}

} // namespace hdpm::streams
