#include "streams/kernels.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace hdpm::streams {

using util::BitVec;

namespace {

/// Words per sample for a given total width (the PackedTrace stride).
constexpr std::size_t stride_for(int width) noexcept
{
    return (static_cast<std::size_t>(width) + 63) / 64;
}

/// Transitions per dispatch block: sized so the per-word popcount buffers
/// stay within a few KB (L1-resident) regardless of stride.
constexpr std::size_t kBlockWords = 4096;

constexpr std::size_t block_transitions(std::size_t stride) noexcept
{
    return std::max<std::size_t>(kBlockWords / stride, 1);
}

/// Range convention shared by all kernels: a chunk [begin, end) over the
/// sample index space owns the per-sample statistics of samples
/// begin..end−1 and the transitions (j−1, j) for j in [max(begin,1), end).
/// Adjacent chunks therefore overlap by one *read* (the predecessor
/// sample) but never by a counted event, so per-chunk integer histograms
/// merged in chunk order reproduce the single-pass counts bit-for-bit.

HdHistogram hd_histogram_range(std::span<const std::uint64_t> words, std::size_t begin,
                               std::size_t end, int width, EstimationKernel kernel,
                               util::cpu::SimdLevel level)
{
    HdHistogram h;
    h.width = width;
    const std::size_t first = std::max<std::size_t>(begin, 1);
    h.pairs = end - first;
    const auto bins = static_cast<std::size_t>(width) + 1;
    h.counts.assign(bins, 0);
    if (first >= end) {
        return h;
    }
    const std::size_t stride = stride_for(width);
    const std::uint64_t* w = words.data();

    if (kernel == EstimationKernel::Scalar) {
        if (stride == 1) {
            // Baseline: one BitVec pair per transition, as estimate_cycles
            // and extract_hd_distribution have always classified.
            for (std::size_t j = first; j < end; ++j) {
                const int hd =
                    BitVec::hamming_distance(BitVec{width, words[j - 1]},
                                             BitVec{width, words[j]});
                ++h.counts[static_cast<std::size_t>(hd)];
            }
        } else {
            // Wide baseline: a per-bit walk with no popcounts at all, the
            // most naive (and most independent) classification possible.
            for (std::size_t j = first; j < end; ++j) {
                const std::uint64_t* prev = w + (j - 1) * stride;
                const std::uint64_t* cur = w + j * stride;
                std::size_t hd = 0;
                for (int i = 0; i < width; ++i) {
                    hd += ((prev[i / 64] ^ cur[i / 64]) >> (i % 64)) & 1U;
                }
                ++h.counts[hd];
            }
        }
        return h;
    }

    if (stride == 1 && level == util::cpu::SimdLevel::Scalar) {
        // Single-word fast path: popcount over word XORs. Adjacent
        // transitions are paired and counted with ONE increment into a
        // bins×bins table — halving the read-modify-write traffic that
        // dominates a histogram loop — and two tables are interleaved so
        // consecutive equal pair-indices don't serialize on one counter's
        // store-to-load dependency. The fold at the end credits each
        // (r, c) cell to bin r and bin c; all counts stay integers, so the
        // result is identical to incrementing per transition.
        std::vector<std::uint64_t> pairs2(bins * bins * 2, 0);
        std::uint64_t* t0 = pairs2.data();
        std::uint64_t* t1 = t0 + bins * bins;
        std::size_t j = first;
        for (; j + 8 <= end; j += 8) {
            const auto a = static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]));
            const auto b = static_cast<std::size_t>(std::popcount(w[j + 1] ^ w[j]));
            const auto c = static_cast<std::size_t>(std::popcount(w[j + 2] ^ w[j + 1]));
            const auto d = static_cast<std::size_t>(std::popcount(w[j + 3] ^ w[j + 2]));
            const auto e = static_cast<std::size_t>(std::popcount(w[j + 4] ^ w[j + 3]));
            const auto f = static_cast<std::size_t>(std::popcount(w[j + 5] ^ w[j + 4]));
            const auto g = static_cast<std::size_t>(std::popcount(w[j + 6] ^ w[j + 5]));
            const auto i = static_cast<std::size_t>(std::popcount(w[j + 7] ^ w[j + 6]));
            ++t0[a * bins + b];
            ++t1[c * bins + d];
            ++t0[e * bins + f];
            ++t1[g * bins + i];
        }
        for (; j < end; ++j) {
            ++h.counts[static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]))];
        }
        for (std::size_t r = 0; r < bins; ++r) {
            for (std::size_t c = 0; c < bins; ++c) {
                const std::uint64_t cnt = t0[r * bins + c] + t1[r * bins + c];
                h.counts[r] += cnt;
                h.counts[c] += cnt;
            }
        }
        return h;
    }

    // Width-generic dispatched path: block the transition range so the
    // per-word popcount buffer stays L1-resident, let the selected SIMD
    // tier fill it, and bin on the way out. Eight interleaved sub-tables
    // keep the binning loop's read-modify-writes independent — a run of
    // equal distances (the common case on correlated streams) would
    // otherwise serialize on one counter's store-to-load forwarding; the
    // fold keeps everything integer-exact.
    const util::cpu::Kernels& prim = util::cpu::kernels(level);
    const std::size_t block = block_transitions(stride);
    std::vector<std::uint8_t> buf(block * stride);
    std::vector<std::uint64_t> sub(bins * 8, 0);
    std::size_t t = first;
    while (t < end) {
        const std::size_t cnt = std::min(block, end - t);
        prim.xor_popcnt(w + (t - 1) * stride, w + t * stride, cnt * stride,
                        buf.data());
        if (stride == 1) {
            std::size_t i = 0;
            for (; i + 8 <= cnt; i += 8) {
                ++sub[static_cast<std::size_t>(buf[i]) * 8];
                ++sub[static_cast<std::size_t>(buf[i + 1]) * 8 + 1];
                ++sub[static_cast<std::size_t>(buf[i + 2]) * 8 + 2];
                ++sub[static_cast<std::size_t>(buf[i + 3]) * 8 + 3];
                ++sub[static_cast<std::size_t>(buf[i + 4]) * 8 + 4];
                ++sub[static_cast<std::size_t>(buf[i + 5]) * 8 + 5];
                ++sub[static_cast<std::size_t>(buf[i + 6]) * 8 + 6];
                ++sub[static_cast<std::size_t>(buf[i + 7]) * 8 + 7];
            }
            for (; i < cnt; ++i) {
                ++sub[static_cast<std::size_t>(buf[i]) * 8];
            }
        } else {
            for (std::size_t i = 0; i < cnt; ++i) {
                const std::uint8_t* p = buf.data() + i * stride;
                std::size_t hd = 0;
                for (std::size_t k = 0; k < stride; ++k) {
                    hd += p[k];
                }
                ++sub[hd * 8 + (i & 7)];
            }
        }
        t += cnt;
    }
    for (std::size_t i = 0; i < bins; ++i) {
        for (std::size_t k = 0; k < 8; ++k) {
            h.counts[i] += sub[i * 8 + k];
        }
    }
    return h;
}

HdClassHistogram hd_class_histogram_range(std::span<const std::uint64_t> words,
                                          std::size_t begin, std::size_t end, int width,
                                          EstimationKernel kernel,
                                          util::cpu::SimdLevel level)
{
    HdClassHistogram h;
    h.width = width;
    const std::size_t first = std::max<std::size_t>(begin, 1);
    h.pairs = end - first;
    const auto table = static_cast<std::size_t>(width) + 1;
    h.counts.assign(table * table, 0);
    if (first >= end) {
        return h;
    }
    const std::size_t stride = stride_for(width);
    const std::uint64_t* w = words.data();

    if (kernel == EstimationKernel::Scalar) {
        if (stride == 1) {
            for (std::size_t j = first; j < end; ++j) {
                const BitVec u{width, words[j - 1]};
                const BitVec v{width, words[j]};
                const auto hd =
                    static_cast<std::size_t>(BitVec::hamming_distance(u, v));
                const auto zeros = static_cast<std::size_t>(BitVec::stable_zeros(u, v));
                ++h.counts[hd * table + zeros];
            }
        } else {
            for (std::size_t j = first; j < end; ++j) {
                const std::uint64_t* prev = w + (j - 1) * stride;
                const std::uint64_t* cur = w + j * stride;
                std::size_t hd = 0;
                std::size_t zeros = 0;
                for (int i = 0; i < width; ++i) {
                    const std::uint64_t p = (prev[i / 64] >> (i % 64)) & 1U;
                    const std::uint64_t c = (cur[i / 64] >> (i % 64)) & 1U;
                    hd += p ^ c;
                    zeros += (p | c) ^ 1U;
                }
                ++h.counts[hd * table + zeros];
            }
        }
        return h;
    }

    if (stride == 1 && level == util::cpu::SimdLevel::Scalar) {
        // Single-word fast path: two interleaved sub-tables (see the Hd
        // kernel) folded at the end.
        const std::uint64_t mask =
            width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
        std::vector<std::uint64_t> sub(table * table * 2, 0);
        std::uint64_t* s0 = sub.data();
        std::uint64_t* s1 = s0 + table * table;
        std::size_t j = first;
        for (; j + 2 <= end; j += 2) {
            const auto hd0 = static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]));
            const auto z0 =
                static_cast<std::size_t>(std::popcount(~(w[j] | w[j - 1]) & mask));
            ++s0[hd0 * table + z0];
            const auto hd1 = static_cast<std::size_t>(std::popcount(w[j + 1] ^ w[j]));
            const auto z1 =
                static_cast<std::size_t>(std::popcount(~(w[j + 1] | w[j]) & mask));
            ++s1[hd1 * table + z1];
        }
        for (; j < end; ++j) {
            const auto hd = static_cast<std::size_t>(std::popcount(w[j] ^ w[j - 1]));
            const auto z =
                static_cast<std::size_t>(std::popcount(~(w[j] | w[j - 1]) & mask));
            ++s0[hd * table + z];
        }
        for (std::size_t i = 0; i < table * table; ++i) {
            h.counts[i] = s0[i] + s1[i];
        }
        return h;
    }

    // Width-generic dispatched path. The NOR popcounts are taken over full
    // 64-bit words; the bits above width in each sample's top word are
    // zero in both operands, so they inflate every transition's raw stable
    // zero count by the same constant slack = stride·64 − width, which is
    // subtracted instead of masking inside the primitives.
    const util::cpu::Kernels& prim = util::cpu::kernels(level);
    const std::size_t slack = stride * 64 - static_cast<std::size_t>(width);
    const std::size_t block = block_transitions(stride);
    std::vector<std::uint8_t> buf_x(block * stride);
    std::vector<std::uint8_t> buf_z(block * stride);
    std::size_t t = first;
    while (t < end) {
        const std::size_t cnt = std::min(block, end - t);
        prim.xor_nor_popcnt(w + (t - 1) * stride, w + t * stride, cnt * stride,
                            buf_x.data(), buf_z.data());
        for (std::size_t i = 0; i < cnt; ++i) {
            std::size_t hd = 0;
            std::size_t zraw = 0;
            for (std::size_t k = 0; k < stride; ++k) {
                hd += buf_x[i * stride + k];
                zraw += buf_z[i * stride + k];
            }
            ++h.counts[hd * table + (zraw - slack)];
        }
        t += cnt;
    }
    return h;
}

PackedBitCounts count_bits_range(std::span<const std::uint64_t> words, std::size_t begin,
                                 std::size_t end, int width, EstimationKernel kernel,
                                 util::cpu::SimdLevel level)
{
    PackedBitCounts c;
    c.width = width;
    c.samples = end - begin;
    const auto m = static_cast<std::size_t>(width);
    c.ones.assign(m, 0);
    c.toggles.assign(m, 0);
    const std::size_t first = std::max<std::size_t>(begin, 1);
    const std::size_t stride = stride_for(width);
    const std::uint64_t* w = words.data();

    if (kernel == EstimationKernel::Scalar) {
        // Baseline: the original per-bit walk of measure_bit_stats (a
        // BitVec `.get(i)` loop for single-word samples, the same shift
        // walk for wider ones).
        for (std::size_t j = begin; j < end; ++j) {
            const std::uint64_t* s = w + j * stride;
            for (int i = 0; i < width; ++i) {
                if ((s[i / 64] >> (i % 64)) & 1U) {
                    ++c.ones[static_cast<std::size_t>(i)];
                }
            }
        }
        for (std::size_t j = first; j < end; ++j) {
            const std::uint64_t* prev = w + (j - 1) * stride;
            const std::uint64_t* cur = w + j * stride;
            for (int i = 0; i < width; ++i) {
                if (((prev[i / 64] ^ cur[i / 64]) >> (i % 64)) & 1U) {
                    ++c.toggles[static_cast<std::size_t>(i)];
                }
            }
        }
        return c;
    }

    // Packed: CSA vertical counters (scalar or Harley–Seal AVX2 via the
    // dispatch table) accumulate per-position tallies with O(1) word-level
    // ops per sample instead of a width-long bit loop. Totals are laid out
    // word-major (k·64 + bit), which is exactly the global bit order.
    const util::cpu::Kernels& prim = util::cpu::kernels(level);
    std::vector<std::uint64_t> one_totals(stride * 64, 0);
    std::vector<std::uint64_t> toggle_totals(stride * 64, 0);
    prim.positional_ones(w + begin * stride, end - begin, stride, one_totals.data());
    if (first < end) {
        prim.positional_toggles(w + (first - 1) * stride, w + first * stride,
                                end - first, stride, toggle_totals.data());
    }
    for (std::size_t i = 0; i < m; ++i) {
        c.ones[i] = one_totals[i];
        c.toggles[i] = toggle_totals[i];
    }
    return c;
}

/// Split [0, n) into deterministic sample chunks, run @p fn per chunk on
/// the pool, and fold the per-chunk results in chunk order with @p merge.
/// The chunk layout depends only on (n, options.chunk) — never on the
/// thread count or SIMD tier — and all counts are integers, so the merged
/// result is bit-identical for any `threads`.
template <typename Result, typename RangeFn, typename MergeFn>
Result run_chunked(const PackedTrace& trace, const KernelOptions& options,
                   const RangeFn& fn, const MergeFn& merge)
{
    HDPM_REQUIRE(trace.size() >= 2, "need at least two samples");
    const std::size_t n = trace.size();
    const std::size_t chunk = std::max<std::size_t>(options.chunk, 2);
    if (options.threads == 1 || n <= chunk) {
        return fn(0, n);
    }
    const std::size_t chunks = (n + chunk - 1) / chunk;
    const util::ThreadPool pool{options.threads};
    std::vector<Result> parts = pool.parallel_map(chunks, [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        return fn(begin, end);
    });
    Result total = std::move(parts.front());
    for (std::size_t c = 1; c < parts.size(); ++c) {
        merge(total, parts[c]);
    }
    return total;
}

/// Resolve the per-call SIMD choice once, so every chunk of one
/// classification uses the same tier even if util::cpu::force() runs
/// concurrently.
util::cpu::SimdLevel resolve_level(const std::optional<util::cpu::SimdLevel>& simd)
{
    return simd.has_value() ? *simd : util::cpu::active();
}

} // namespace

std::string kernel_name(EstimationKernel kernel)
{
    return kernel == EstimationKernel::Scalar ? "scalar" : "packed";
}

double HdHistogram::average_hd() const noexcept
{
    if (pairs == 0) {
        return 0.0;
    }
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        total += static_cast<std::uint64_t>(i) * counts[i];
    }
    return static_cast<double>(total) / static_cast<double>(pairs);
}

std::vector<double> HdHistogram::to_distribution() const
{
    HDPM_REQUIRE(pairs > 0, "empty histogram");
    std::vector<double> dist(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        dist[i] = static_cast<double>(counts[i]) / static_cast<double>(pairs);
    }
    return dist;
}

std::uint64_t HdClassHistogram::count(int hd, int zeros) const
{
    HDPM_REQUIRE(hd >= 0 && hd <= width, "Hd ", hd, " outside [0, ", width, "]");
    HDPM_REQUIRE(zeros >= 0 && zeros <= width - hd, "zeros ", zeros, " outside [0, ",
                 width - hd, "] for Hd ", hd);
    const auto stride = static_cast<std::size_t>(width) + 1;
    return counts[static_cast<std::size_t>(hd) * stride + static_cast<std::size_t>(zeros)];
}

HdHistogram hd_histogram_words(std::span<const std::uint64_t> words, int width,
                               EstimationKernel kernel,
                               std::optional<util::cpu::SimdLevel> simd)
{
    const std::size_t stride = stride_for(width);
    HDPM_REQUIRE(words.size() % stride == 0, "word count ", words.size(),
                 " is not a multiple of the ", stride, "-word sample stride");
    const std::size_t n = words.size() / stride;
    HDPM_REQUIRE(n >= 2, "need at least two samples");
    return hd_histogram_range(words, 0, n, width, kernel, resolve_level(simd));
}

HdClassHistogram hd_class_histogram_words(std::span<const std::uint64_t> words,
                                          int width, EstimationKernel kernel,
                                          std::optional<util::cpu::SimdLevel> simd)
{
    const std::size_t stride = stride_for(width);
    HDPM_REQUIRE(words.size() % stride == 0, "word count ", words.size(),
                 " is not a multiple of the ", stride, "-word sample stride");
    const std::size_t n = words.size() / stride;
    HDPM_REQUIRE(n >= 2, "need at least two samples");
    return hd_class_histogram_range(words, 0, n, width, kernel, resolve_level(simd));
}

PackedBitCounts count_bits_words(std::span<const std::uint64_t> words, int width,
                                 EstimationKernel kernel,
                                 std::optional<util::cpu::SimdLevel> simd)
{
    const std::size_t stride = stride_for(width);
    HDPM_REQUIRE(words.size() % stride == 0, "word count ", words.size(),
                 " is not a multiple of the ", stride, "-word sample stride");
    const std::size_t n = words.size() / stride;
    HDPM_REQUIRE(n >= 2, "need at least two samples");
    return count_bits_range(words, 0, n, width, kernel, resolve_level(simd));
}

HdHistogram hd_histogram(const PackedTrace& trace, const KernelOptions& options)
{
    const util::cpu::SimdLevel level = resolve_level(options.simd);
    return run_chunked<HdHistogram>(
        trace, options,
        [&](std::size_t begin, std::size_t end) {
            return hd_histogram_range(trace.words(), begin, end, trace.width(),
                                      options.kernel, level);
        },
        [](HdHistogram& total, const HdHistogram& part) {
            total.pairs += part.pairs;
            for (std::size_t i = 0; i < total.counts.size(); ++i) {
                total.counts[i] += part.counts[i];
            }
        });
}

HdClassHistogram hd_class_histogram(const PackedTrace& trace,
                                    const KernelOptions& options)
{
    const util::cpu::SimdLevel level = resolve_level(options.simd);
    return run_chunked<HdClassHistogram>(
        trace, options,
        [&](std::size_t begin, std::size_t end) {
            return hd_class_histogram_range(trace.words(), begin, end, trace.width(),
                                            options.kernel, level);
        },
        [](HdClassHistogram& total, const HdClassHistogram& part) {
            total.pairs += part.pairs;
            for (std::size_t i = 0; i < total.counts.size(); ++i) {
                total.counts[i] += part.counts[i];
            }
        });
}

PackedBitCounts count_bits(const PackedTrace& trace, const KernelOptions& options)
{
    const util::cpu::SimdLevel level = resolve_level(options.simd);
    return run_chunked<PackedBitCounts>(
        trace, options,
        [&](std::size_t begin, std::size_t end) {
            return count_bits_range(trace.words(), begin, end, trace.width(),
                                    options.kernel, level);
        },
        [](PackedBitCounts& total, const PackedBitCounts& part) {
            total.samples += part.samples;
            for (std::size_t i = 0; i < total.ones.size(); ++i) {
                total.ones[i] += part.ones[i];
                total.toggles[i] += part.toggles[i];
            }
        });
}

} // namespace hdpm::streams
