#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/electrical.hpp"
#include "sim/sim_context.hpp"
#include "util/bitvec.hpp"

namespace hdpm::sim {

class VcdWriter;

/// Options of the event-driven simulator.
struct EventSimOptions {
    /// Include the charge absorbed by the module's input pin capacitance
    /// when a primary input toggles (PowerMill-style module accounting).
    bool count_input_charge = true;

    /// 0 = pure transport delays: every scheduled output change propagates,
    /// so all glitches are kept.
    /// > 0 = a scheduled change cancels a pending change on the same net if
    /// they are closer than this window — an inertial-delay approximation
    /// that filters narrow glitches, as transistor-level simulation (the
    /// paper's PowerMill reference) inherently does. The default of 100 ps
    /// is on the order of one gate delay in the generic350 library; the
    /// glitch-model ablation sweeps this knob.
    std::int64_t inertial_window_ps = 100;

    /// Safety valve against runaway simulations.
    std::uint64_t max_events_per_cycle = 50'000'000;
};

/// Per-cycle simulation result.
struct CycleResult {
    double charge_fc = 0.0;          ///< supply charge drawn this cycle [fC]
    std::uint64_t transitions = 0;   ///< actual net toggles (including glitches)
    std::int64_t settle_time_ps = 0; ///< time of the last toggle
};

/// Event-driven gate-level logic and power simulator.
///
/// This is the library's reference power estimator — the substitute for the
/// transistor-level PowerMill runs in the paper. It propagates input vector
/// changes through the netlist with per-cell load-dependent delays
/// (transport semantics by default), so unequal path delays produce
/// glitches whose charge is fully accounted. Charge per net toggle comes
/// from the ElectricalView.
///
/// Typical use: initialize(u) to settle on the first vector, then apply(v)
/// once per subsequent vector; each apply returns the cycle charge Q[j].
///
/// Threading: a simulator instance is not thread-safe, but all shared data
/// lives in the (immutable) SimContext — N instances over one context may
/// run concurrently on N threads. The context-borrowing constructor is the
/// cheap one (per-instance state only); the (netlist, library) convenience
/// constructor builds and owns a private context.
class EventSimulator {
public:
    /// Borrow a shared immutable context; it must outlive the simulator.
    explicit EventSimulator(const SimContext& context, EventSimOptions options = {});

    /// Share ownership of a context (for simulators that outlive the scope
    /// that built it).
    explicit EventSimulator(std::shared_ptr<const SimContext> context,
                            EventSimOptions options = {});

    /// Convenience: build (and own) a context for @p netlist.
    EventSimulator(const netlist::Netlist& netlist, const gate::TechLibrary& library,
                   EventSimOptions options = {});

    /// Establish the steady state for @p inputs (zero-delay evaluation, no
    /// charge is accounted). Resets cumulative counters' baseline state.
    void initialize(const util::BitVec& inputs);

    /// Apply the next input vector and simulate until quiescence.
    CycleResult apply(const util::BitVec& inputs);

    /// Value of a net in the current steady state.
    [[nodiscard]] bool value(netlist::NetId net) const { return values_.at(net) != 0; }

    /// Primary outputs packed LSB-first.
    [[nodiscard]] util::BitVec outputs() const;

    /// Electrical annotation in use.
    [[nodiscard]] const ElectricalView& electrical() const noexcept
    {
        return context_->electrical();
    }

    /// The (possibly shared) immutable context this simulator reads.
    [[nodiscard]] const SimContext& context() const noexcept { return *context_; }

    /// Total toggles per net since construction (glitch analysis).
    [[nodiscard]] const std::vector<std::uint64_t>& cumulative_transitions() const noexcept
    {
        return transition_count_;
    }

    /// Total charge drawn per net since construction [fC] (power hot-spot
    /// reports; see sim/report.hpp).
    [[nodiscard]] const std::vector<double>& cumulative_charge_per_net() const noexcept
    {
        return charge_per_net_;
    }

    /// Attach a VCD tracer (may be nullptr to detach). The tracer must
    /// outlive the simulator or be detached before destruction.
    void set_tracer(VcdWriter* tracer) noexcept { tracer_ = tracer; }

private:
    struct Event {
        std::int64_t time;
        std::uint64_t seq;
        netlist::NetId net;
        std::uint8_t value;
        std::uint32_t generation;
    };
    struct EventLater {
        bool operator()(const Event& a, const Event& b) const noexcept
        {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };

    void toggle_net(netlist::NetId net, std::uint8_t value, std::int64_t time,
                    bool count_charge, CycleResult& result);
    void schedule(netlist::NetId net, std::uint8_t value, std::int64_t time);

    std::shared_ptr<const SimContext> owned_context_; // set by the convenience ctor
    const SimContext* context_;
    const netlist::Netlist* netlist_;
    EventSimOptions options_;

    std::vector<std::uint8_t> values_;
    std::vector<std::uint8_t> scheduled_value_; // value after all pending events
    std::vector<std::uint32_t> generation_;     // current valid generation per net
    std::vector<std::uint32_t> pending_count_;  // pending valid events per net
    std::vector<std::int64_t> pending_time_;    // time of last scheduled event

    // Per-timestamp cell evaluation dedup.
    std::vector<std::uint64_t> cell_stamp_;
    std::uint64_t stamp_epoch_ = 0;

    std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
    std::uint64_t seq_counter_ = 0;
    std::vector<std::uint64_t> transition_count_;
    std::vector<double> charge_per_net_;

    std::int64_t cycle_start_time_ = 0; ///< global time of the current cycle (for VCD)
    VcdWriter* tracer_ = nullptr;
    bool initialized_ = false;
};

} // namespace hdpm::sim
