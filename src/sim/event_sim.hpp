#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "sim/electrical.hpp"
#include "sim/sim_context.hpp"
#include "util/bitvec.hpp"

namespace hdpm::sim {

class VcdWriter;

/// Which event-queue implementation the simulator runs on. Both produce
/// bit-identical results — events are ordered by (time, schedule sequence)
/// either way; see docs/simulator.md for the argument.
enum class SchedulerKind : std::uint8_t {
    /// Calendar / timing-wheel queue: O(1) push and pop, arena-backed slot
    /// buckets with no per-event allocation, LUT-compiled cell evaluation
    /// over the SimContext SoA view. The production kernel.
    TimingWheel,

    /// The original std::priority_queue kernel with switch-based gate
    /// evaluation through Netlist::cell. Retained as the differential-
    /// testing and benchmarking baseline; not optimized further.
    BinaryHeap,
};

/// Options of the event-driven simulator.
struct EventSimOptions {
    /// Include the charge absorbed by the module's input pin capacitance
    /// when a primary input toggles (PowerMill-style module accounting).
    bool count_input_charge = true;

    /// 0 = pure transport delays: every scheduled output change propagates,
    /// so all glitches are kept.
    /// > 0 = a scheduled change cancels a pending change on the same net if
    /// they are closer than this window — an inertial-delay approximation
    /// that filters narrow glitches, as transistor-level simulation (the
    /// paper's PowerMill reference) inherently does. The default of 100 ps
    /// is on the order of one gate delay in the generic350 library; the
    /// glitch-model ablation sweeps this knob.
    std::int64_t inertial_window_ps = 100;

    /// Safety valve against runaway simulations. Exceeding it throws a
    /// util::FaultError of kind SimBudgetExceeded whose context carries the
    /// cycle's exact (u, v) input vector pair, so the offending transition
    /// can be replayed in isolation. The simulator itself stays usable: the
    /// next initialize()/load_state() performs a full scheduler reset.
    std::uint64_t max_events_per_cycle = 50'000'000;

    /// Event-queue implementation (results are identical; see above).
    SchedulerKind scheduler = SchedulerKind::TimingWheel;
};

/// Per-cycle simulation result.
struct CycleResult {
    double charge_fc = 0.0;          ///< supply charge drawn this cycle [fC]
    std::uint64_t transitions = 0;   ///< actual net toggles (including glitches)
    std::int64_t settle_time_ps = 0; ///< time of the last toggle
};

/// Cumulative scheduler counters since construction (throughput
/// observability; folded into core::CharRunStats by the characterizer).
struct KernelStats {
    std::uint64_t events_processed = 0; ///< queue pops, incl. superseded events
    std::size_t max_queue_depth = 0;    ///< peak simultaneously pending events
};

/// Event-driven gate-level logic and power simulator.
///
/// This is the library's reference power estimator — the substitute for the
/// transistor-level PowerMill runs in the paper. It propagates input vector
/// changes through the netlist with per-cell load-dependent delays
/// (transport semantics by default), so unequal path delays produce
/// glitches whose charge is fully accounted. Charge per net toggle comes
/// from the ElectricalView.
///
/// Typical use: initialize(u) to settle on the first vector, then apply(v)
/// once per subsequent vector; each apply returns the cycle charge Q[j].
///
/// Threading: a simulator instance is not thread-safe, but all shared data
/// lives in the (immutable) SimContext — N instances over one context may
/// run concurrently on N threads. The context-borrowing constructor is the
/// cheap one (per-instance state only); the (netlist, library) convenience
/// constructor builds and owns a private context.
class EventSimulator {
public:
    /// Borrow a shared immutable context; it must outlive the simulator.
    explicit EventSimulator(const SimContext& context, EventSimOptions options = {});

    /// Share ownership of a context (for simulators that outlive the scope
    /// that built it).
    explicit EventSimulator(std::shared_ptr<const SimContext> context,
                            EventSimOptions options = {});

    /// Convenience: build (and own) a context for @p netlist.
    EventSimulator(const netlist::Netlist& netlist, const gate::TechLibrary& library,
                   EventSimOptions options = {});

    /// Establish the steady state for @p inputs (zero-delay evaluation, no
    /// charge is accounted) and reset all per-cycle scheduler state —
    /// repeated initialize calls start from an identical state regardless
    /// of what ran before. Cumulative counters (transition/charge per net,
    /// kernel stats) are not cleared.
    void initialize(const util::BitVec& inputs);

    /// Adopt an externally settled steady state instead of re-settling:
    /// @p net_values holds one 0/1 byte per net (the layout
    /// BatchedEvaluator::export_lane produces) and must be the zero-delay
    /// fixpoint of @p inputs — for a combinational netlist that fixpoint is
    /// unique, so the post-call state is exactly the post-initialize(inputs)
    /// state (same values, same full scheduler/sequence/stamp reset) without
    /// the O(cells) settle pass. The characterizer's batched pairs-mode
    /// warm-up is the intended caller.
    void load_state(const util::BitVec& inputs,
                    std::span<const std::uint8_t> net_values);

    /// Apply the next input vector and simulate until quiescence.
    CycleResult apply(const util::BitVec& inputs);

    /// Value of a net in the current steady state.
    [[nodiscard]] bool value(netlist::NetId net) const { return values_.at(net) != 0; }

    /// Primary outputs packed LSB-first.
    [[nodiscard]] util::BitVec outputs() const;

    /// Electrical annotation in use.
    [[nodiscard]] const ElectricalView& electrical() const noexcept
    {
        return context_->electrical();
    }

    /// The (possibly shared) immutable context this simulator reads.
    [[nodiscard]] const SimContext& context() const noexcept { return *context_; }

    /// Total toggles per net since construction (glitch analysis).
    [[nodiscard]] const std::vector<std::uint64_t>& cumulative_transitions() const noexcept
    {
        return transition_count_;
    }

    /// Opt-in per-cycle toggle tracking — the multi-corner sweep's data
    /// source: when enabled, every apply() records which nets toggled this
    /// cycle and how often, readable until the next apply() / initialize()
    /// / load_state(). Off by default: the hot loop then pays one
    /// predictable branch, and when enabled the per-cycle clear touches
    /// only the nets that actually toggled (allocation-free after the
    /// first enable).
    void set_cycle_toggle_tracking(bool enabled);

    /// Nets toggled by the last apply(), in first-toggle order (a
    /// deterministic function of the simulation — the multi-corner charge
    /// accumulation order). Empty unless tracking is enabled.
    [[nodiscard]] std::span<const netlist::NetId> cycle_toggled_nets() const noexcept
    {
        return cycle_dirty_;
    }

    /// Toggle count of @p net in the last apply() (0 when untoggled;
    /// meaningless unless tracking is enabled).
    [[nodiscard]] std::uint32_t cycle_toggle_count(netlist::NetId net) const
    {
        return cycle_toggle_count_[net];
    }

    /// Total charge drawn per net since construction [fC] (power hot-spot
    /// reports; see sim/report.hpp).
    [[nodiscard]] const std::vector<double>& cumulative_charge_per_net() const noexcept
    {
        return charge_per_net_;
    }

    /// Cumulative scheduler counters since construction.
    [[nodiscard]] const KernelStats& kernel_stats() const noexcept { return stats_; }

    /// Attach a VCD tracer (may be nullptr to detach). The tracer must
    /// outlive the simulator or be detached before destruction.
    void set_tracer(VcdWriter* tracer) noexcept { tracer_ = tracer; }

private:
    /// Per-net scheduler state, packed so the hot paths (event validation
    /// and schedule preparation) touch one 16-byte slot instead of four
    /// parallel arrays. pending_count is bounded by the number of distinct
    /// pending timestamps, which the wheel horizon caps far below 2^16.
    struct NetSched {
        std::uint8_t scheduled_value = 0; ///< value after all pending events
        std::uint8_t unused = 0;
        std::uint16_t pending_count = 0; ///< pending valid events on the net
        std::uint32_t generation = 0;    ///< current valid event generation
        std::int64_t pending_time = 0;   ///< time of the last scheduled event
    };
    static_assert(sizeof(NetSched) == 16);

    struct HeapEvent {
        std::int64_t time;
        std::uint64_t seq;
        netlist::NetId net;
        std::uint8_t value;
        std::uint32_t generation;
    };
    struct HeapLater {
        bool operator()(const HeapEvent& a, const HeapEvent& b) const noexcept
        {
            return a.time != b.time ? a.time > b.time : a.seq > b.seq;
        }
    };
    using HeapQueue = std::priority_queue<HeapEvent, std::vector<HeapEvent>, HeapLater>;

    /// A pending net change in the timing wheel, packed into 8 bytes: bit 31
    /// of net_val is the scheduled value, the low bits the net (the netlist
    /// layer never allocates 2^31 nets). No time or sequence field: the slot
    /// encodes the time, and the bucket's push order is the schedule
    /// sequence order (the wheel only ever appends), which reproduces the
    /// heap's (time, seq) tie-break exactly.
    struct WheelEvent {
        std::uint32_t net_val;
        std::uint32_t generation;

        static WheelEvent make(netlist::NetId net, std::uint8_t value,
                               std::uint32_t generation) noexcept
        {
            return {net | (static_cast<std::uint32_t>(value) << 31), generation};
        }
        [[nodiscard]] netlist::NetId net() const noexcept
        {
            return net_val & 0x7fff'ffffU;
        }
        [[nodiscard]] std::uint8_t value() const noexcept
        {
            return static_cast<std::uint8_t>(net_val >> 31);
        }
    };
    static_assert(sizeof(WheelEvent) == 8);

    /// Calendar queue over slots [0, W) with W = bit_ceil(max delay + 1).
    /// All pending times lie in (now, now + max delay], a window shorter
    /// than W, so "time mod W" maps every pending timestamp to a distinct
    /// slot. Slot buckets are arena-style vectors that are cleared but
    /// never deallocated, and a bitmap tracks occupied slots so advancing
    /// to the next timestamp is a word scan + countr_zero, not a slot walk.
    class TimingWheel {
    public:
        void configure(std::int64_t max_delay);
        void reset(); ///< drop pending events, rewind to t = 0 (keeps capacity)
        [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }
        [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
        void push(std::int64_t time, WheelEvent ev);
        /// Advance to the next non-empty timestamp; requires !empty().
        std::int64_t advance();
        /// Events at the timestamp advance() returned, in schedule order.
        [[nodiscard]] std::span<const WheelEvent> bucket() const
        {
            return slots_[current_slot_];
        }
        /// Discard the current bucket after processing (keeps capacity).
        void pop_bucket();

    private:
        [[nodiscard]] std::size_t find_next_occupied(std::size_t start) const;

        std::vector<std::vector<WheelEvent>> slots_;
        std::vector<std::uint64_t> occupied_; // bitmap, one bit per slot
        std::size_t mask_ = 0;                // slot count - 1 (power of two)
        std::int64_t horizon_ = 1;            // max schedulable delay
        std::int64_t now_ = 0;
        std::size_t current_slot_ = 0;
        std::size_t pending_ = 0;
    };

    CycleResult apply_heap(const util::BitVec& inputs, std::uint64_t budget);
    CycleResult apply_wheel(const util::BitVec& inputs, std::uint64_t budget);
    /// Throw the structured SimBudgetExceeded diagnostic for this cycle.
    [[noreturn]] void fail_event_budget(std::uint64_t budget) const;
    /// The per-cycle scheduler reset shared by initialize and load_state.
    void reset_cycle_state();
    void toggle_net(netlist::NetId net, std::uint8_t value, std::int64_t time,
                    bool count_charge, CycleResult& result);
    /// Shared inertial-window/cancellation bookkeeping; returns true when
    /// the caller must enqueue an event for (net, value, time). Kept inline
    /// in the header so both apply kernels fold it into their hot loops.
    bool prepare_schedule(NetSched& ns, std::uint8_t current, std::uint8_t value,
                          std::int64_t time)
    {
        if (ns.pending_count == 0) {
            ns.scheduled_value = current;
        }
        if (value == ns.scheduled_value) {
            return false; // the net already heads to this value
        }
        if (options_.inertial_window_ps > 0 && ns.pending_count > 0 &&
            time - ns.pending_time <= options_.inertial_window_ps) {
            // Inertial approximation: the new change supersedes pending ones.
            ++ns.generation;
            ns.pending_count = 0;
            if (value == current) {
                ns.scheduled_value = value;
                return false; // pulse fully swallowed
            }
        }
        ns.scheduled_value = value;
        ns.pending_time = time;
        ++ns.pending_count;
        return true;
    }

    std::shared_ptr<const SimContext> owned_context_; // set by the convenience ctor
    const SimContext* context_;
    const netlist::Netlist* netlist_;
    EventSimOptions options_;

    std::vector<std::uint8_t> values_;
    std::vector<NetSched> sched_; // per-net scheduler state

    // Per-timestamp cell evaluation dedup.
    std::vector<std::uint64_t> cell_stamp_;
    std::uint64_t stamp_epoch_ = 0;

    HeapQueue queue_;               // BinaryHeap scheduler
    std::uint64_t seq_counter_ = 0; // BinaryHeap tie-break sequence
    TimingWheel wheel_;             // TimingWheel scheduler

    std::vector<netlist::CellId> touched_; // per-timestamp scratch
    KernelStats stats_;
    std::vector<std::uint64_t> transition_count_;
    std::vector<double> charge_per_net_;

    /// Per-cycle toggle tracking (see set_cycle_toggle_tracking).
    void clear_cycle_toggles();
    bool track_cycle_toggles_ = false;
    std::vector<std::uint32_t> cycle_toggle_count_; // per net, last apply only
    std::vector<netlist::NetId> cycle_dirty_;       // nets toggled, first-toggle order

    /// The current cycle's input vector pair (u = steady state before
    /// apply, v = the applied vector), captured so a budget-exceeded fault
    /// can name the exact transition to replay. Plain integer stores — no
    /// allocation on the apply hot path.
    std::uint64_t cycle_u_bits_ = 0;
    std::uint64_t cycle_v_bits_ = 0;

    std::int64_t cycle_start_time_ = 0; ///< global time of the current cycle (for VCD)
    VcdWriter* tracer_ = nullptr;
    bool initialized_ = false;
};

} // namespace hdpm::sim
