#pragma once

#include <cstdint>
#include <vector>

#include "gatelib/techlib.hpp"
#include "netlist/netlist.hpp"

namespace hdpm::sim {

/// Electrical annotation of a netlist under a technology library:
/// per-net capacitance, per-net charge drawn per edge, and per-cell
/// propagation delay under its actual load.
///
/// Charge accounting (the "PowerMill substitute" cost model):
///   per logic edge on net n:  q(n) = ½·C(n)·Vdd  +  E_int(driver)/Vdd
/// with C(n) = driver output cap + Σ sink input caps + wire cap
/// (base + per-fanout). Charge is reported in fC; dividing the per-cycle
/// charge by the cycle time and multiplying by Vdd gives power, so — as in
/// the paper — charge and power are used synonymously up to a constant.
class ElectricalView {
public:
    ElectricalView(const netlist::Netlist& netlist, const gate::TechLibrary& library);

    /// Total capacitance on a net [fF].
    [[nodiscard]] double net_cap_ff(netlist::NetId net) const { return net_cap_ff_.at(net); }

    /// Charge drawn from the supply per logic edge on a net [fC].
    [[nodiscard]] double edge_charge_fc(netlist::NetId net) const
    {
        return edge_charge_fc_.at(net);
    }

    /// Propagation delay of a cell under its load [ps] (≥ 1).
    [[nodiscard]] std::int64_t cell_delay_ps(netlist::CellId cell) const
    {
        return cell_delay_ps_.at(cell);
    }

    /// Supply voltage [V].
    [[nodiscard]] double vdd() const noexcept { return vdd_; }

    /// Sum of all net capacitances [fF] — a coarse area/complexity proxy.
    [[nodiscard]] double total_cap_ff() const noexcept { return total_cap_ff_; }

    /// Worst-case topological path delay [ps] (static timing, no false-path
    /// analysis). Useful for choosing cycle times in reports.
    [[nodiscard]] std::int64_t critical_path_ps() const noexcept { return critical_path_ps_; }

private:
    double vdd_;
    double total_cap_ff_ = 0.0;
    std::int64_t critical_path_ps_ = 0;
    std::vector<double> net_cap_ff_;
    std::vector<double> edge_charge_fc_;
    std::vector<std::int64_t> cell_delay_ps_;
};

} // namespace hdpm::sim
