#include "sim/sequential.hpp"

#include "util/error.hpp"

namespace hdpm::sim {

using util::BitVec;

PipelineSimulator::PipelineSimulator(std::vector<const netlist::Netlist*> stages,
                                     const gate::TechLibrary& library,
                                     DffCosts dff_costs, EventSimOptions sim_options)
    : stages_(std::move(stages)), dff_costs_(dff_costs)
{
    HDPM_REQUIRE(!stages_.empty(), "pipeline needs at least one stage");
    HDPM_REQUIRE(dff_costs_.clock_charge_fc >= 0.0 &&
                     dff_costs_.data_toggle_charge_fc >= 0.0,
                 "negative flop costs");
    for (std::size_t k = 0; k < stages_.size(); ++k) {
        HDPM_REQUIRE(stages_[k] != nullptr, "null stage ", k);
        if (k > 0) {
            HDPM_REQUIRE(stages_[k]->primary_inputs().size() ==
                             stages_[k - 1]->primary_outputs().size(),
                         "stage ", k, " takes ", stages_[k]->primary_inputs().size(),
                         " bits but stage ", k - 1, " produces ",
                         stages_[k - 1]->primary_outputs().size());
        }
        sims_.push_back(
            std::make_unique<EventSimulator>(*stages_[k], library, sim_options));
    }
    per_stage_fc_.assign(stages_.size(), 0.0);
    reset();
}

void PipelineSimulator::reset()
{
    banks_.clear();
    for (std::size_t k = 0; k < stages_.size(); ++k) {
        const BitVec zero{static_cast<int>(stages_[k]->primary_inputs().size())};
        banks_.push_back(zero);
        sims_[k]->initialize(zero);
    }
    per_stage_fc_.assign(stages_.size(), 0.0);
}

PipelineCycleResult PipelineSimulator::step(const BitVec& input)
{
    HDPM_REQUIRE(input.width() == banks_.front().width(), "input has ", input.width(),
                 " bits, pipeline takes ", banks_.front().width());

    // All banks capture on the same edge: bank 0 takes the new primary
    // input, bank k takes stage k-1's current (settled) outputs.
    std::vector<BitVec> next_banks;
    next_banks.reserve(banks_.size());
    next_banks.push_back(input);
    for (std::size_t k = 1; k < stages_.size(); ++k) {
        next_banks.push_back(sims_[k - 1]->outputs());
    }

    PipelineCycleResult result;
    for (std::size_t k = 0; k < banks_.size(); ++k) {
        const int toggles = BitVec::hamming_distance(banks_[k], next_banks[k]);
        if (dff_costs_.clock_gating) {
            result.register_fc += dff_costs_.gating_overhead_fc;
            if (toggles == 0) {
                continue; // the bank's clock is gated off this cycle
            }
        }
        result.register_fc +=
            dff_costs_.clock_charge_fc * static_cast<double>(banks_[k].width()) +
            dff_costs_.data_toggle_charge_fc * static_cast<double>(toggles);
    }

    // Stages then evaluate the newly captured values.
    for (std::size_t k = 0; k < stages_.size(); ++k) {
        const CycleResult stage = sims_[k]->apply(next_banks[k]);
        result.combinational_fc += stage.charge_fc;
        per_stage_fc_[k] += stage.charge_fc;
    }
    banks_ = std::move(next_banks);
    return result;
}

BitVec PipelineSimulator::outputs() const
{
    return sims_.back()->outputs();
}

PipelinePowerResult PipelineSimulator::run(std::span<const BitVec> inputs)
{
    HDPM_REQUIRE(!inputs.empty(), "empty input stream");
    reset();
    PipelinePowerResult result;
    result.cycles.reserve(inputs.size());
    for (const BitVec& input : inputs) {
        const PipelineCycleResult cycle = step(input);
        result.combinational_fc += cycle.combinational_fc;
        result.register_fc += cycle.register_fc;
        result.cycles.push_back(cycle);
    }
    result.per_stage_fc = per_stage_fc_;
    return result;
}

} // namespace hdpm::sim
