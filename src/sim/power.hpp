#pragma once

#include <span>
#include <vector>

#include "sim/event_sim.hpp"

namespace hdpm::sim {

/// Result of simulating a pattern stream.
struct StreamPowerResult {
    /// Charge per measured cycle Q[j], j = 0..n-2 for an n-pattern stream
    /// (the first pattern only establishes the initial state) [fC].
    std::vector<double> cycle_charge_fc;

    /// Sum of cycle_charge_fc [fC].
    double total_charge_fc = 0.0;

    /// Total net toggles over all measured cycles (glitches included).
    std::uint64_t total_transitions = 0;

    /// Mean charge per cycle [fC]; 0 if no cycle was measured.
    [[nodiscard]] double mean_charge_fc() const noexcept
    {
        return cycle_charge_fc.empty()
                   ? 0.0
                   : total_charge_fc / static_cast<double>(cycle_charge_fc.size());
    }
};

/// Stream-level harness around the EventSimulator: the reference "power
/// simulation" used both for macro-model characterization and for accuracy
/// evaluation (stands in for the paper's PowerMill runs).
class PowerSimulator {
public:
    PowerSimulator(const netlist::Netlist& netlist, const gate::TechLibrary& library,
                   EventSimOptions options = {});

    /// Simulate a whole pattern stream. patterns[0] initializes the state;
    /// each later pattern contributes one measured cycle.
    [[nodiscard]] StreamPowerResult run(std::span<const util::BitVec> patterns);

    /// Charge of the single transition u → v from a cold settled state.
    [[nodiscard]] CycleResult measure_pair(const util::BitVec& u, const util::BitVec& v);

    /// Underlying event simulator (for tracing or incremental use).
    [[nodiscard]] EventSimulator& simulator() noexcept { return sim_; }

private:
    EventSimulator sim_;
};

} // namespace hdpm::sim
