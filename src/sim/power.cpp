#include "sim/power.hpp"

#include "util/error.hpp"

namespace hdpm::sim {

PowerSimulator::PowerSimulator(const netlist::Netlist& netlist,
                               const gate::TechLibrary& library, EventSimOptions options)
    : sim_(netlist, library, options)
{
}

StreamPowerResult PowerSimulator::run(std::span<const util::BitVec> patterns)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns (got ", patterns.size(),
                 ")");
    StreamPowerResult result;
    result.cycle_charge_fc.reserve(patterns.size() - 1);
    sim_.initialize(patterns[0]);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        const CycleResult cycle = sim_.apply(patterns[j]);
        result.cycle_charge_fc.push_back(cycle.charge_fc);
        result.total_charge_fc += cycle.charge_fc;
        result.total_transitions += cycle.transitions;
    }
    return result;
}

CycleResult PowerSimulator::measure_pair(const util::BitVec& u, const util::BitVec& v)
{
    sim_.initialize(u);
    return sim_.apply(v);
}

} // namespace hdpm::sim
