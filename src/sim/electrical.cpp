#include "sim/electrical.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;

ElectricalView::ElectricalView(const netlist::Netlist& netlist,
                               const gate::TechLibrary& library)
    : vdd_(library.vdd()),
      net_cap_ff_(netlist.num_nets(), 0.0),
      edge_charge_fc_(netlist.num_nets(), 0.0),
      cell_delay_ps_(netlist.num_cells(), 1)
{
    // Net capacitance: driver drain cap + sink pin caps + wire model.
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        double cap = library.wire_cap_base_ff();
        const CellId drv = netlist.driver(net);
        if (drv != kInvalidId) {
            cap += library.spec(netlist.cell(drv).kind).output_cap_ff;
        }
        net_cap_ff_[net] = cap;
    }
    std::vector<std::size_t> fanout_pins(netlist.num_nets(), 0);
    for (const Cell& cell : netlist.cells()) {
        for (const NetId in : cell.input_span()) {
            net_cap_ff_[in] += library.spec(cell.kind).input_cap_ff;
            ++fanout_pins[in];
        }
    }
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        net_cap_ff_[net] +=
            library.wire_cap_per_fanout_ff() * static_cast<double>(fanout_pins[net]);
        total_cap_ff_ += net_cap_ff_[net];
    }

    // Per-edge charge: switched capacitance plus the driver's internal
    // energy expressed as charge at Vdd. Primary inputs have no driver —
    // the module still absorbs the charge into its pin capacitance.
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        double q = 0.5 * net_cap_ff_[net] * vdd_;
        const CellId drv = netlist.driver(net);
        if (drv != kInvalidId) {
            q += library.spec(netlist.cell(drv).kind).internal_energy_fj / vdd_;
        }
        edge_charge_fc_[net] = q;
    }

    // Cell delays under load.
    for (CellId id = 0; id < netlist.num_cells(); ++id) {
        const Cell& cell = netlist.cell(id);
        const auto& spec = library.spec(cell.kind);
        const double d = spec.intrinsic_delay_ps + spec.delay_per_ff_ps * net_cap_ff_[cell.output];
        cell_delay_ps_[id] = std::max<std::int64_t>(1, std::llround(d));
    }

    // Static timing: longest arrival over the topological order.
    std::vector<std::int64_t> arrival(netlist.num_nets(), 0);
    for (const CellId id : netlist.topological_order()) {
        const Cell& cell = netlist.cell(id);
        std::int64_t in_arrival = 0;
        for (const NetId in : cell.input_span()) {
            in_arrival = std::max(in_arrival, arrival[in]);
        }
        arrival[cell.output] = in_arrival + cell_delay_ps_[id];
        critical_path_ps_ = std::max(critical_path_ps_, arrival[cell.output]);
    }
}

} // namespace hdpm::sim
