#include "sim/event_sim.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hdpm::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using util::BitVec;

// ---------------------------------------------------------------------------
// TimingWheel

void EventSimulator::TimingWheel::configure(std::int64_t max_delay)
{
    horizon_ = std::max<std::int64_t>(1, max_delay);
    const auto slots = std::bit_ceil(static_cast<std::size_t>(horizon_) + 1);
    slots_.assign(slots, {});
    occupied_.assign((slots + 63) / 64, 0);
    mask_ = slots - 1;
    now_ = 0;
    current_slot_ = 0;
    pending_ = 0;
}

void EventSimulator::TimingWheel::reset()
{
    if (pending_ != 0) {
        for (std::size_t w = 0; w < occupied_.size(); ++w) {
            std::uint64_t word = occupied_[w];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                slots_[(w << 6) + bit].clear();
                word &= word - 1;
            }
            occupied_[w] = 0;
        }
        pending_ = 0;
    }
    now_ = 0;
    current_slot_ = 0;
}

void EventSimulator::TimingWheel::push(std::int64_t time, WheelEvent ev)
{
    HDPM_ASSERT(time > now_ && time - now_ <= horizon_,
                "wheel push outside horizon at t=", time, " now=", now_);
    const auto slot = static_cast<std::size_t>(time) & mask_;
    if (slots_[slot].empty()) {
        occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    }
    slots_[slot].push_back(ev);
    ++pending_;
}

std::size_t EventSimulator::TimingWheel::find_next_occupied(std::size_t start) const
{
    const std::size_t words = occupied_.size();
    std::size_t w = start >> 6;
    std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (start & 63));
    // Scan at most every word plus the (unmasked) starting word again so a
    // lone bit below `start` in the starting word is still found after the
    // wrap-around.
    for (std::size_t n = 0; n <= words; ++n) {
        if (word != 0) {
            return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        }
        w = w + 1 == words ? 0 : w + 1;
        word = occupied_[w];
    }
    HDPM_FAIL("timing wheel occupancy bitmap inconsistent with pending count");
}

std::int64_t EventSimulator::TimingWheel::advance()
{
    HDPM_ASSERT(pending_ > 0, "advance on an empty wheel");
    const std::size_t start = (static_cast<std::size_t>(now_) + 1) & mask_;
    const std::size_t slot = find_next_occupied(start);
    const std::size_t delta = ((slot - start) & mask_) + 1;
    now_ += static_cast<std::int64_t>(delta);
    current_slot_ = slot;
    return now_;
}

void EventSimulator::TimingWheel::pop_bucket()
{
    std::vector<WheelEvent>& bucket = slots_[current_slot_];
    pending_ -= bucket.size();
    bucket.clear(); // keeps capacity: the slot arena never shrinks
    occupied_[current_slot_ >> 6] &= ~(std::uint64_t{1} << (current_slot_ & 63));
}

// ---------------------------------------------------------------------------
// EventSimulator

EventSimulator::EventSimulator(const SimContext& context, EventSimOptions options)
    : context_(&context),
      netlist_(&context.netlist()),
      options_(options),
      values_(netlist_->num_nets(), 0),
      sched_(netlist_->num_nets()),
      cell_stamp_(netlist_->num_cells(), 0),
      transition_count_(netlist_->num_nets(), 0),
      charge_per_net_(netlist_->num_nets(), 0.0)
{
    HDPM_REQUIRE(netlist_->num_nets() < (std::size_t{1} << 31),
                 "netlist too large for packed wheel events");
    wheel_.configure(context.max_cell_delay_ps());
}

EventSimulator::EventSimulator(std::shared_ptr<const SimContext> context,
                               EventSimOptions options)
    : EventSimulator(*context, options)
{
    owned_context_ = std::move(context);
}

EventSimulator::EventSimulator(const netlist::Netlist& netlist,
                               const gate::TechLibrary& library, EventSimOptions options)
    : EventSimulator(std::make_shared<const SimContext>(netlist, library), options)
{
}

void EventSimulator::initialize(const BitVec& inputs)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");

    // Zero-delay settle over the shared compiled view (no charge
    // accounting) — the steady state the next apply() diffs against.
    for (std::size_t i = 0; i < pis.size(); ++i) {
        values_[pis[i]] = inputs.get(static_cast<int>(i)) ? 1 : 0;
    }
    const CompiledNetlist& cn = context_->compiled();
    for (const CellId id : cn.topological_order()) {
        values_[cn.output(id)] = cn.eval(id, values_.data());
    }

    reset_cycle_state();
}

void EventSimulator::load_state(const BitVec& inputs,
                                std::span<const std::uint8_t> net_values)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");
    HDPM_REQUIRE(net_values.size() == values_.size(), "netlist '", netlist_->name(),
                 "' has ", values_.size(), " nets, state has ", net_values.size());
    std::copy(net_values.begin(), net_values.end(), values_.begin());
    for (std::size_t i = 0; i < pis.size(); ++i) {
        HDPM_ASSERT(values_[pis[i]] == (inputs.get(static_cast<int>(i)) ? 1 : 0),
                    "load_state input ", i, " disagrees with the adopted net values");
    }

    reset_cycle_state();
}

/// Reset every piece of per-cycle scheduler state so repeated
/// initialize/load_state calls start from one identical state:
/// swap-against-empty instead of a pop loop for the heap, bucket-clearing
/// rewind for the wheel, and zeroed sequence / generation / stamp counters.
/// Cumulative counters (transition/charge per net, kernel stats) survive.
void EventSimulator::reset_cycle_state()
{
    for (std::size_t net = 0; net < sched_.size(); ++net) {
        sched_[net] = NetSched{values_[net], 0, 0, 0, 0};
    }
    std::fill(cell_stamp_.begin(), cell_stamp_.end(), 0);
    stamp_epoch_ = 0;
    seq_counter_ = 0;
    HeapQueue{}.swap(queue_);
    wheel_.reset();

    initialized_ = true;
    if (track_cycle_toggles_) {
        clear_cycle_toggles();
    }
    if (tracer_ != nullptr) {
        tracer_->dump_all(cycle_start_time_, values_);
    }
}

void EventSimulator::set_cycle_toggle_tracking(bool enabled)
{
    track_cycle_toggles_ = enabled;
    if (enabled) {
        cycle_toggle_count_.assign(netlist_->num_nets(), 0);
        cycle_dirty_.clear();
        cycle_dirty_.reserve(netlist_->num_nets());
    }
}

void EventSimulator::clear_cycle_toggles()
{
    for (const NetId net : cycle_dirty_) {
        cycle_toggle_count_[net] = 0;
    }
    cycle_dirty_.clear();
}

void EventSimulator::toggle_net(NetId net, std::uint8_t value, std::int64_t time,
                                bool count_charge, CycleResult& result)
{
    values_[net] = value;
    ++transition_count_[net];
    if (track_cycle_toggles_) {
        if (cycle_toggle_count_[net]++ == 0) {
            cycle_dirty_.push_back(net);
        }
    }
    ++result.transitions;
    result.settle_time_ps = std::max(result.settle_time_ps, time);
    if (count_charge) {
        const double q = context_->edge_charge_fc(net);
        result.charge_fc += q;
        charge_per_net_[net] += q;
    }
    if (tracer_ != nullptr) {
        tracer_->change(cycle_start_time_ + time, net, value != 0);
    }
}

CycleResult EventSimulator::apply(const BitVec& inputs)
{
    HDPM_REQUIRE(initialized_, "EventSimulator::apply before initialize");
    if (track_cycle_toggles_) {
        clear_cycle_toggles();
    }
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");
    // Record the cycle's (u, v) vector pair before any net toggles, so a
    // budget-exceeded fault can report the exact transition to replay.
    cycle_u_bits_ = 0;
    for (std::size_t i = 0; i < pis.size(); ++i) {
        cycle_u_bits_ |= static_cast<std::uint64_t>(values_[pis[i]]) << i;
    }
    cycle_v_bits_ = inputs.raw();
    const std::uint64_t budget = HDPM_FAULT_FIRE(util::FaultPoint::EventBudget)
                                     ? 0
                                     : options_.max_events_per_cycle;
    return options_.scheduler == SchedulerKind::BinaryHeap ? apply_heap(inputs, budget)
                                                           : apply_wheel(inputs, budget);
}

void EventSimulator::fail_event_budget(const std::uint64_t budget) const
{
    util::FaultContext context;
    context.component = netlist_->name();
    context.bitwidth = static_cast<int>(netlist_->primary_inputs().size());
    context.vector_u = cycle_u_bits_;
    context.vector_v = cycle_v_bits_;
    context.has_vectors = true;
    context.detail = "event budget of " + std::to_string(budget) +
                     " exceeded — runaway oscillation? replay the recorded "
                     "(u, v) pair to reproduce";
    throw util::FaultError{util::FaultKind::SimBudgetExceeded, std::move(context)};
}

CycleResult EventSimulator::apply_wheel(const BitVec& inputs, const std::uint64_t budget)
{
    const CompiledNetlist& cn = context_->compiled();
    const auto& pis = netlist_->primary_inputs();
    CycleResult result;
    std::uint64_t processed = 0;
    touched_.clear();

    // Apply primary-input changes at t = 0. Fanout consumers are appended
    // without per-cell deduplication: a cell touched through two of its
    // inputs evaluates twice, but the second evaluation computes the same
    // output and prepare_schedule sees the net already heading there, so
    // the event stream is unchanged while the common case sheds one stamp
    // read-modify-write per consumer (measured duplicate rate is a few
    // percent of visits).
    for (std::size_t i = 0; i < pis.size(); ++i) {
        const NetId net = pis[i];
        const std::uint8_t v = inputs.get(static_cast<int>(i)) ? 1 : 0;
        if (v == values_[net]) {
            continue;
        }
        toggle_net(net, v, 0, options_.count_input_charge, result);
        const auto fo = cn.fanout(net);
        touched_.insert(touched_.end(), fo.begin(), fo.end());
    }

    auto evaluate_and_schedule = [&](CellId id, std::int64_t now) {
        const SimContext::CellRec& cr = context_->cell_rec(id);
        const std::uint8_t out = SimContext::eval_rec(cr, values_.data());
        const NetId net = cr.out;
        const std::int64_t t = now + cr.delay_ps;
        NetSched& ns = sched_[net];
        if (prepare_schedule(ns, values_[net], out, t)) {
            wheel_.push(t, WheelEvent::make(net, out, ns.generation));
        }
    };

    for (const CellId id : touched_) {
        evaluate_and_schedule(id, 0);
    }

    // Main event loop: drain the wheel one timestamp bucket at a time so
    // each cell evaluates at most once per time step. Bucket order is push
    // order, which is schedule-sequence order — the heap's tie-break.
    // Queue depth peaks right before an advance (it only grows between
    // pops), so sampling it here reports the same maximum as checking
    // after every push.
    while (!wheel_.empty()) {
        stats_.max_queue_depth = std::max(stats_.max_queue_depth, wheel_.pending());
        const std::int64_t now = wheel_.advance();
        touched_.clear();
        for (const WheelEvent& ev : wheel_.bucket()) {
            if (++processed > budget) {
                fail_event_budget(budget);
            }
            const NetId net = ev.net();
            NetSched& ns = sched_[net];
            if (ev.generation != ns.generation) {
                continue; // superseded by an inertial cancellation
            }
            --ns.pending_count;
            const std::uint8_t v = ev.value();
            // Per-net event times are monotone and scheduled values
            // alternate, so a valid event always toggles its net.
            HDPM_ASSERT(v != values_[net], "no-op event on net ", net);
            toggle_net(net, v, now, true, result);
            const auto fo = cn.fanout(net);
            touched_.insert(touched_.end(), fo.begin(), fo.end());
        }
        wheel_.pop_bucket();
        for (const CellId id : touched_) {
            evaluate_and_schedule(id, now);
        }
    }
    wheel_.reset(); // rewind to t = 0 for the next cycle (wheel is empty)

    stats_.events_processed += processed;
    if (tracer_ != nullptr) {
        cycle_start_time_ += tracer_->cycle_period_ps();
    }
    return result;
}

CycleResult EventSimulator::apply_heap(const BitVec& inputs, const std::uint64_t budget)
{
    const auto& pis = netlist_->primary_inputs();
    CycleResult result;
    std::uint64_t processed = 0;
    ++stamp_epoch_;
    touched_.clear();

    // Apply primary-input changes at t = 0.
    for (std::size_t i = 0; i < pis.size(); ++i) {
        const NetId net = pis[i];
        const std::uint8_t v = inputs.get(static_cast<int>(i)) ? 1 : 0;
        if (v == values_[net]) {
            continue;
        }
        toggle_net(net, v, 0, options_.count_input_charge, result);
        for (const CellId consumer : context_->fanout(net)) {
            if (cell_stamp_[consumer] != stamp_epoch_) {
                cell_stamp_[consumer] = stamp_epoch_;
                touched_.push_back(consumer);
            }
        }
    }

    std::uint8_t in_vals[gate::kMaxGateInputs];
    auto evaluate_and_schedule = [&](CellId id, std::int64_t now) {
        const Cell& cell = netlist_->cell(id);
        const auto ins = cell.input_span();
        for (std::size_t i = 0; i < ins.size(); ++i) {
            in_vals[i] = values_[ins[i]];
        }
        const std::uint8_t out =
            gate::gate_eval(cell.kind, {in_vals, ins.size()}) ? 1 : 0;
        const std::int64_t t = now + context_->electrical().cell_delay_ps(id);
        NetSched& ns = sched_[cell.output];
        if (prepare_schedule(ns, values_[cell.output], out, t)) {
            queue_.push(HeapEvent{t, seq_counter_++, cell.output, out, ns.generation});
            stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
        }
    };

    for (const CellId id : touched_) {
        evaluate_and_schedule(id, 0);
    }

    // Main event loop: drain the queue, grouping events per timestamp so
    // each cell evaluates at most once per time step.
    while (!queue_.empty()) {
        const std::int64_t now = queue_.top().time;
        touched_.clear();
        ++stamp_epoch_;
        while (!queue_.empty() && queue_.top().time == now) {
            const HeapEvent ev = queue_.top();
            queue_.pop();
            if (++processed > budget) {
                fail_event_budget(budget);
            }
            if (ev.generation != sched_[ev.net].generation) {
                continue; // superseded by an inertial cancellation
            }
            --sched_[ev.net].pending_count;
            // Per-net event times are monotone and scheduled values
            // alternate, so a valid event always toggles its net.
            HDPM_ASSERT(ev.value != values_[ev.net], "no-op event on net ", ev.net);
            toggle_net(ev.net, ev.value, now, true, result);
            for (const CellId consumer : context_->fanout(ev.net)) {
                if (cell_stamp_[consumer] != stamp_epoch_) {
                    cell_stamp_[consumer] = stamp_epoch_;
                    touched_.push_back(consumer);
                }
            }
        }
        for (const CellId id : touched_) {
            evaluate_and_schedule(id, now);
        }
    }

    stats_.events_processed += processed;
    if (tracer_ != nullptr) {
        cycle_start_time_ += tracer_->cycle_period_ps();
    }
    return result;
}

BitVec EventSimulator::outputs() const
{
    const auto& pos = netlist_->primary_outputs();
    BitVec out{static_cast<int>(pos.size())};
    for (std::size_t i = 0; i < pos.size(); ++i) {
        out.set(static_cast<int>(i), values_[pos[i]] != 0);
    }
    return out;
}

} // namespace hdpm::sim
