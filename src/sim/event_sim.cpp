#include "sim/event_sim.hpp"

#include <algorithm>

#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace hdpm::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::kInvalidId;
using netlist::NetId;
using util::BitVec;

EventSimulator::EventSimulator(const SimContext& context, EventSimOptions options)
    : context_(&context),
      netlist_(&context.netlist()),
      options_(options),
      values_(netlist_->num_nets(), 0),
      scheduled_value_(netlist_->num_nets(), 0),
      generation_(netlist_->num_nets(), 0),
      pending_count_(netlist_->num_nets(), 0),
      pending_time_(netlist_->num_nets(), 0),
      cell_stamp_(netlist_->num_cells(), 0),
      transition_count_(netlist_->num_nets(), 0),
      charge_per_net_(netlist_->num_nets(), 0.0)
{
}

EventSimulator::EventSimulator(std::shared_ptr<const SimContext> context,
                               EventSimOptions options)
    : EventSimulator(*context, options)
{
    owned_context_ = std::move(context);
}

EventSimulator::EventSimulator(const netlist::Netlist& netlist,
                               const gate::TechLibrary& library, EventSimOptions options)
    : EventSimulator(std::make_shared<const SimContext>(netlist, library), options)
{
}

void EventSimulator::initialize(const BitVec& inputs)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");

    // Zero-delay settle over the shared topological order (no charge
    // accounting) — the steady state the next apply() diffs against.
    for (std::size_t i = 0; i < pis.size(); ++i) {
        values_[pis[i]] = inputs.get(static_cast<int>(i)) ? 1 : 0;
    }
    std::uint8_t in_vals[3];
    for (const CellId id : context_->topological_order()) {
        const Cell& cell = netlist_->cell(id);
        const auto ins = cell.input_span();
        for (std::size_t i = 0; i < ins.size(); ++i) {
            in_vals[i] = values_[ins[i]];
        }
        values_[cell.output] = gate::gate_eval(cell.kind, {in_vals, ins.size()}) ? 1 : 0;
    }
    scheduled_value_ = values_;
    std::fill(pending_count_.begin(), pending_count_.end(), 0);
    while (!queue_.empty()) {
        queue_.pop();
    }
    initialized_ = true;
    if (tracer_ != nullptr) {
        tracer_->dump_all(cycle_start_time_, values_);
    }
}

void EventSimulator::toggle_net(NetId net, std::uint8_t value, std::int64_t time,
                                bool count_charge, CycleResult& result)
{
    values_[net] = value;
    ++transition_count_[net];
    ++result.transitions;
    result.settle_time_ps = std::max(result.settle_time_ps, time);
    if (count_charge) {
        const double q = context_->electrical().edge_charge_fc(net);
        result.charge_fc += q;
        charge_per_net_[net] += q;
    }
    if (tracer_ != nullptr) {
        tracer_->change(cycle_start_time_ + time, net, value != 0);
    }
}

void EventSimulator::schedule(NetId net, std::uint8_t value, std::int64_t time)
{
    if (pending_count_[net] == 0) {
        scheduled_value_[net] = values_[net];
    }
    if (value == scheduled_value_[net]) {
        return; // the net already heads to this value
    }
    if (options_.inertial_window_ps > 0 && pending_count_[net] > 0 &&
        time - pending_time_[net] <= options_.inertial_window_ps) {
        // Inertial approximation: the new change supersedes pending ones.
        ++generation_[net];
        pending_count_[net] = 0;
        if (value == values_[net]) {
            scheduled_value_[net] = value;
            return; // pulse fully swallowed
        }
    }
    queue_.push(Event{time, seq_counter_++, net, value, generation_[net]});
    scheduled_value_[net] = value;
    pending_time_[net] = time;
    ++pending_count_[net];
}

CycleResult EventSimulator::apply(const BitVec& inputs)
{
    HDPM_REQUIRE(initialized_, "EventSimulator::apply before initialize");
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");

    CycleResult result;
    std::uint64_t processed = 0;
    ++stamp_epoch_;
    std::vector<CellId> touched;

    // Apply primary-input changes at t = 0.
    for (std::size_t i = 0; i < pis.size(); ++i) {
        const NetId net = pis[i];
        const std::uint8_t v = inputs.get(static_cast<int>(i)) ? 1 : 0;
        if (v == values_[net]) {
            continue;
        }
        toggle_net(net, v, 0, options_.count_input_charge, result);
        for (const CellId consumer : context_->fanout(net)) {
            if (cell_stamp_[consumer] != stamp_epoch_) {
                cell_stamp_[consumer] = stamp_epoch_;
                touched.push_back(consumer);
            }
        }
    }

    std::uint8_t in_vals[3];
    auto evaluate_and_schedule = [&](CellId id, std::int64_t now) {
        const Cell& cell = netlist_->cell(id);
        const auto ins = cell.input_span();
        for (std::size_t i = 0; i < ins.size(); ++i) {
            in_vals[i] = values_[ins[i]];
        }
        const std::uint8_t out =
            gate::gate_eval(cell.kind, {in_vals, ins.size()}) ? 1 : 0;
        schedule(cell.output, out, now + context_->electrical().cell_delay_ps(id));
    };

    for (const CellId id : touched) {
        evaluate_and_schedule(id, 0);
    }

    // Main event loop: drain the queue, grouping events per timestamp so
    // each cell evaluates at most once per time step.
    while (!queue_.empty()) {
        const std::int64_t now = queue_.top().time;
        touched.clear();
        ++stamp_epoch_;
        while (!queue_.empty() && queue_.top().time == now) {
            const Event ev = queue_.top();
            queue_.pop();
            if (++processed > options_.max_events_per_cycle) {
                HDPM_FAIL("event budget exceeded in '", netlist_->name(),
                          "' — runaway simulation?");
            }
            if (ev.generation != generation_[ev.net]) {
                continue; // superseded by an inertial cancellation
            }
            --pending_count_[ev.net];
            // Per-net event times are monotone and scheduled values
            // alternate, so a valid event always toggles its net.
            HDPM_ASSERT(ev.value != values_[ev.net], "no-op event on net ", ev.net);
            toggle_net(ev.net, ev.value, now, true, result);
            for (const CellId consumer : context_->fanout(ev.net)) {
                if (cell_stamp_[consumer] != stamp_epoch_) {
                    cell_stamp_[consumer] = stamp_epoch_;
                    touched.push_back(consumer);
                }
            }
        }
        for (const CellId id : touched) {
            evaluate_and_schedule(id, now);
        }
    }

    if (tracer_ != nullptr) {
        cycle_start_time_ += tracer_->cycle_period_ps();
    }
    return result;
}

BitVec EventSimulator::outputs() const
{
    const auto& pos = netlist_->primary_outputs();
    BitVec out{static_cast<int>(pos.size())};
    for (std::size_t i = 0; i < pos.size(); ++i) {
        out.set(static_cast<int>(i), values_[pos[i]] != 0);
    }
    return out;
}

} // namespace hdpm::sim
