#pragma once

#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "util/bitvec.hpp"

namespace hdpm::sim {

class SimContext;

/// Zero-delay functional evaluator.
///
/// Evaluates the netlist once in topological order over the compiled SoA
/// view (truth-table lookups, no gate_eval switch). This is the golden
/// logic reference used by tests (datapath generators are checked against
/// integer arithmetic through it) and by the event simulator to establish
/// the initial steady state. It models no timing and therefore no glitches.
class FunctionalEvaluator {
public:
    /// Prepare an evaluator for @p netlist, compiling a private view. The
    /// netlist must outlive the evaluator and must be valid (acyclic).
    explicit FunctionalEvaluator(const netlist::Netlist& netlist);

    /// Borrow the compiled view of an existing SimContext instead of
    /// compiling a second one; the context must outlive the evaluator.
    explicit FunctionalEvaluator(const SimContext& context);

    /// Evaluate with the primary inputs taken LSB-first from @p inputs
    /// (inputs.width() must equal the number of primary input nets);
    /// returns the primary outputs packed LSB-first.
    util::BitVec eval(const util::BitVec& inputs);

    /// Value of an arbitrary net after the last eval().
    [[nodiscard]] bool value(netlist::NetId net) const { return values_.at(net) != 0; }

    /// All net values after the last eval() (indexed by NetId).
    [[nodiscard]] const std::vector<std::uint8_t>& values() const noexcept { return values_; }

private:
    const netlist::Netlist* netlist_;
    std::unique_ptr<const CompiledNetlist> owned_; // null when borrowing
    const CompiledNetlist* compiled_;
    std::vector<std::uint8_t> values_;
};

} // namespace hdpm::sim
