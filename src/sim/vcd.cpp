#include "sim/vcd.hpp"

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::NetId;

namespace {

/// VCD identifier codes: base-94 strings over the printable ASCII range.
std::string vcd_identifier(NetId net)
{
    std::string id;
    std::uint32_t n = net;
    do {
        id.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n != 0);
    return id;
}

} // namespace

VcdWriter::VcdWriter(std::ostream& os, const netlist::Netlist& netlist,
                     std::int64_t cycle_period_ps)
    : os_(&os), cycle_period_ps_(cycle_period_ps)
{
    HDPM_REQUIRE(cycle_period_ps > 0, "cycle period must be positive");
    *os_ << "$timescale 1ps $end\n";
    *os_ << "$scope module " << netlist.name() << " $end\n";
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        std::string label = netlist.net_label(net);
        if (label.empty()) {
            label = "n" + std::to_string(net);
        }
        for (char& c : label) {
            if (c == ' ') {
                c = '_';
            }
        }
        *os_ << "$var wire 1 " << vcd_identifier(net) << ' ' << label << " $end\n";
    }
    *os_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::id_of(NetId net) const
{
    return vcd_identifier(net);
}

void VcdWriter::emit_time(std::int64_t time_ps)
{
    if (time_ps != last_time_) {
        *os_ << '#' << time_ps << '\n';
        last_time_ = time_ps;
    }
}

void VcdWriter::change(std::int64_t time_ps, NetId net, bool value)
{
    emit_time(time_ps);
    *os_ << (value ? '1' : '0') << id_of(net) << '\n';
}

void VcdWriter::dump_all(std::int64_t time_ps, const std::vector<std::uint8_t>& values)
{
    emit_time(time_ps);
    *os_ << "$dumpvars\n";
    for (NetId net = 0; net < values.size(); ++net) {
        *os_ << (values[net] != 0 ? '1' : '0') << id_of(net) << '\n';
    }
    *os_ << "$end\n";
}

} // namespace hdpm::sim
