#pragma once

#include <span>
#include <vector>

#include "sim/electrical.hpp"

namespace hdpm::sim {

/// Per-net activity figures of a probabilistic analysis.
struct NetActivity {
    double signal_prob = 0.0;     ///< P(net = 1)
    double transition_prob = 0.0; ///< P(net toggles between consecutive cycles)
};

/// Probabilistic (pattern-free) switching-activity and power analysis.
///
/// Section 6 of the paper points to "probabilistic simulation" as the fast
/// alternative to bit-level pattern simulation. This engine implements the
/// classic zero-delay propagation: every primary input carries a signal
/// probability p and a transition probability t; gates combine them by
/// exact enumeration of the (independent) input pair-states
///   P(0→0) = 1 − p − t/2,  P(0→1) = P(1→0) = t/2,  P(1→1) = p − t/2,
/// yielding each internal net's signal and transition probability in one
/// topological pass — no patterns, no event queue.
///
/// Accuracy caveats (inherent to the method, documented for honesty):
///  - spatial independence is assumed — reconvergent fanout correlations
///    are ignored (the classic source of error in probabilistic power
///    estimation);
///  - zero-delay semantics count no glitches, so estimates are a *lower*
///    bound relative to the event-driven reference.
class ProbabilisticAnalyzer {
public:
    ProbabilisticAnalyzer(const netlist::Netlist& netlist,
                          const gate::TechLibrary& library);

    /// Propagate input activities (one entry per primary input, in
    /// primary_inputs() order) through the netlist.
    void propagate(std::span<const NetActivity> input_activity);

    /// Convenience: every input gets signal probability 1/2 and the given
    /// transition probability (uniform random inputs ↔ t = 1/2).
    void propagate_uniform(double transition_prob = 0.5);

    /// Activity of a net after propagate().
    [[nodiscard]] const NetActivity& activity(netlist::NetId net) const;

    /// Zero-delay average charge per cycle [fC]:
    /// Σ_nets t(net)·q_edge(net).
    [[nodiscard]] double average_charge_fc() const;

    /// Total switching activity Σ t over all nets (toggles per cycle).
    [[nodiscard]] double total_activity() const;

private:
    const netlist::Netlist* netlist_;
    ElectricalView electrical_;
    std::vector<NetActivity> activity_;
    bool propagated_ = false;
};

} // namespace hdpm::sim
