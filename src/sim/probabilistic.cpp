#include "sim/probabilistic.hpp"

#include <array>

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::NetId;

namespace {

/// Pair-state probabilities of one net across two consecutive cycles:
/// index 2·v_t + v_{t+1}.
using PairProbs = std::array<double, 4>;

PairProbs pair_probs(const NetActivity& a)
{
    const double half_t = 0.5 * a.transition_prob;
    PairProbs p{};
    p[0b00] = 1.0 - a.signal_prob - half_t; // stays 0
    p[0b01] = half_t;                       // rises
    p[0b10] = half_t;                       // falls
    p[0b11] = a.signal_prob - half_t;       // stays 1
    // Guard against inconsistent (p, t) combinations near the boundary.
    for (double& v : p) {
        if (v < 0.0) {
            v = 0.0;
        }
    }
    double total = p[0] + p[1] + p[2] + p[3];
    if (total <= 0.0) {
        p = {1.0, 0.0, 0.0, 0.0};
        total = 1.0;
    }
    for (double& v : p) {
        v /= total;
    }
    return p;
}

} // namespace

ProbabilisticAnalyzer::ProbabilisticAnalyzer(const netlist::Netlist& netlist,
                                             const gate::TechLibrary& library)
    : netlist_(&netlist),
      electrical_(netlist, library),
      activity_(netlist.num_nets())
{
}

void ProbabilisticAnalyzer::propagate(std::span<const NetActivity> input_activity)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(input_activity.size() == pis.size(), "netlist has ", pis.size(),
                 " inputs, got ", input_activity.size(), " activities");
    for (std::size_t i = 0; i < pis.size(); ++i) {
        HDPM_REQUIRE(input_activity[i].signal_prob >= 0.0 &&
                         input_activity[i].signal_prob <= 1.0,
                     "signal probability out of range at input ", i);
        HDPM_REQUIRE(input_activity[i].transition_prob >= 0.0 &&
                         input_activity[i].transition_prob <= 1.0,
                     "transition probability out of range at input ", i);
        activity_[pis[i]] = input_activity[i];
    }

    for (const CellId id : netlist_->topological_order()) {
        const Cell& cell = netlist_->cell(id);
        const auto ins = cell.input_span();
        const auto k = ins.size();

        // Pair-state distributions of the (assumed independent) inputs.
        std::array<PairProbs, 3> in_pairs{};
        for (std::size_t i = 0; i < k; ++i) {
            in_pairs[i] = pair_probs(activity_[ins[i]]);
        }

        // Enumerate all joint pair-states: 4^k ≤ 64 combinations.
        double p_one = 0.0;      // P(out_{t+1} = 1)
        double p_toggle = 0.0;   // P(out_t ≠ out_{t+1})
        const std::size_t combos = std::size_t{1} << (2 * k);
        std::uint8_t now[3];
        std::uint8_t next[3];
        for (std::size_t combo = 0; combo < combos; ++combo) {
            double prob = 1.0;
            for (std::size_t i = 0; i < k; ++i) {
                const auto state = (combo >> (2 * i)) & 0b11U;
                prob *= in_pairs[i][state];
                now[i] = static_cast<std::uint8_t>((state >> 1) & 1U);
                next[i] = static_cast<std::uint8_t>(state & 1U);
            }
            if (prob == 0.0) {
                continue;
            }
            const bool out_now = gate::gate_eval(cell.kind, {now, k});
            const bool out_next = gate::gate_eval(cell.kind, {next, k});
            if (out_next) {
                p_one += prob;
            }
            if (out_now != out_next) {
                p_toggle += prob;
            }
        }
        activity_[cell.output].signal_prob = p_one;
        activity_[cell.output].transition_prob = p_toggle;
    }
    propagated_ = true;
}

void ProbabilisticAnalyzer::propagate_uniform(double transition_prob)
{
    std::vector<NetActivity> inputs(netlist_->primary_inputs().size(),
                                    NetActivity{0.5, transition_prob});
    propagate(inputs);
}

const NetActivity& ProbabilisticAnalyzer::activity(NetId net) const
{
    HDPM_REQUIRE(propagated_, "call propagate() first");
    return activity_.at(net);
}

double ProbabilisticAnalyzer::average_charge_fc() const
{
    HDPM_REQUIRE(propagated_, "call propagate() first");
    double q = 0.0;
    for (NetId net = 0; net < activity_.size(); ++net) {
        q += activity_[net].transition_prob * electrical_.edge_charge_fc(net);
    }
    return q;
}

double ProbabilisticAnalyzer::total_activity() const
{
    HDPM_REQUIRE(propagated_, "call propagate() first");
    double t = 0.0;
    for (const NetActivity& a : activity_) {
        t += a.transition_prob;
    }
    return t;
}

} // namespace hdpm::sim
