#include "sim/glitch.hpp"

#include <algorithm>
#include <ostream>

#include "sim/functional.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace hdpm::sim {

using netlist::NetId;
using util::BitVec;

GlitchReport analyze_glitches(const netlist::Netlist& netlist,
                              const gate::TechLibrary& library,
                              std::span<const BitVec> patterns, EventSimOptions options)
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");

    EventSimulator timed{netlist, library, options};
    FunctionalEvaluator functional{netlist};
    const ElectricalView electrical{netlist, library};

    timed.initialize(patterns[0]);
    (void)functional.eval(patterns[0]);
    std::vector<std::uint8_t> previous = functional.values();

    std::vector<std::uint64_t> functional_toggles(netlist.num_nets(), 0);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        (void)timed.apply(patterns[j]);
        (void)functional.eval(patterns[j]);
        for (NetId net = 0; net < netlist.num_nets(); ++net) {
            if (previous[net] != functional.values()[net]) {
                ++functional_toggles[net];
            }
        }
        previous = functional.values();
    }

    GlitchReport report;
    report.nets.reserve(netlist.num_nets());
    const auto& timed_toggles = timed.cumulative_transitions();
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        NetGlitch entry;
        entry.net = net;
        entry.label = netlist.net_label(net).empty() ? "n" + std::to_string(net)
                                                     : netlist.net_label(net);
        entry.functional_toggles = functional_toggles[net];
        entry.timed_toggles = timed_toggles[net];
        report.functional_toggles += entry.functional_toggles;
        report.timed_toggles += entry.timed_toggles;
        report.functional_charge_fc +=
            static_cast<double>(entry.functional_toggles) *
            electrical.edge_charge_fc(net);
        report.timed_charge_fc += static_cast<double>(entry.timed_toggles) *
                                  electrical.edge_charge_fc(net);
        report.nets.push_back(std::move(entry));
    }
    return report;
}

std::vector<NetGlitch> top_glitchy_nets(const GlitchReport& report, std::size_t k)
{
    std::vector<NetGlitch> sorted = report.nets;
    std::sort(sorted.begin(), sorted.end(), [](const NetGlitch& a, const NetGlitch& b) {
        return (a.timed_toggles - std::min(a.timed_toggles, a.functional_toggles)) >
               (b.timed_toggles - std::min(b.timed_toggles, b.functional_toggles));
    });
    if (sorted.size() > k) {
        sorted.resize(k);
    }
    return sorted;
}

void print_glitch_report(std::ostream& os, const GlitchReport& report, std::size_t top_k)
{
    os << "glitch report: " << report.timed_toggles << " timed vs "
       << report.functional_toggles << " functional toggles (factor "
       << util::TextTable::fmt(report.glitch_factor(), 2) << "), glitch charge share "
       << util::TextTable::fmt(100.0 * report.glitch_charge_share(), 1) << "%\n";

    util::TextTable table;
    table.set_header({"net", "functional", "timed", "factor"});
    table.set_alignment({util::Align::Left});
    for (const NetGlitch& entry : top_glitchy_nets(report, top_k)) {
        table.add_row({entry.label, std::to_string(entry.functional_toggles),
                       std::to_string(entry.timed_toggles),
                       util::TextTable::fmt(entry.glitch_factor(), 2)});
    }
    table.print(os);
}

} // namespace hdpm::sim
