#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace hdpm::sim {

/// Minimal VCD (value change dump) writer for debugging simulations in a
/// standard waveform viewer.
///
/// Attach to an EventSimulator with set_tracer(); each simulated cycle is
/// laid out on the global time axis at multiples of cycle_period_ps.
class VcdWriter {
public:
    /// Write the VCD header for @p netlist to @p os. The stream must
    /// outlive the writer. @p cycle_period_ps spaces consecutive cycles.
    VcdWriter(std::ostream& os, const netlist::Netlist& netlist,
              std::int64_t cycle_period_ps);

    /// Record a value change at absolute time @p time_ps.
    void change(std::int64_t time_ps, netlist::NetId net, bool value);

    /// Dump the full state of all nets at @p time_ps (used at initialize).
    void dump_all(std::int64_t time_ps, const std::vector<std::uint8_t>& values);

    /// Spacing between cycles on the global time axis.
    [[nodiscard]] std::int64_t cycle_period_ps() const noexcept { return cycle_period_ps_; }

private:
    void emit_time(std::int64_t time_ps);
    [[nodiscard]] std::string id_of(netlist::NetId net) const;

    std::ostream* os_;
    std::int64_t cycle_period_ps_;
    std::int64_t last_time_ = -1;
};

} // namespace hdpm::sim
