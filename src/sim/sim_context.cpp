#include "sim/sim_context.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::CellId;
using netlist::NetId;

SimContext::SimContext(const netlist::Netlist& netlist,
                       const gate::TechLibrary& library)
    : netlist_(&netlist), electrical_(netlist, library), compiled_(netlist)
{
    delay_ps_.reserve(netlist.num_cells());
    for (CellId id = 0; id < netlist.num_cells(); ++id) {
        const std::int64_t d = electrical_.cell_delay_ps(id);
        // The timing wheel allocates O(max delay) slots; a delay this large
        // means the electrical annotation is corrupt, not that the design
        // is slow (generic350 delays are tens of ps).
        HDPM_REQUIRE(d >= 1 && d <= (std::int64_t{1} << 20),
                     "cell ", id, " delay ", d, " ps out of range");
        delay_ps_.push_back(static_cast<std::int32_t>(d));
        max_cell_delay_ps_ = std::max(max_cell_delay_ps_, d);
    }
    edge_charge_fc_.reserve(netlist.num_nets());
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        edge_charge_fc_.push_back(electrical_.edge_charge_fc(net));
    }
}

} // namespace hdpm::sim
