#include "sim/sim_context.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::CellId;
using netlist::NetId;

SimContext::SimContext(const netlist::Netlist& netlist,
                       const gate::TechLibrary& library)
    : netlist_(&netlist), electrical_(netlist, library), compiled_(netlist)
{
    delay_ps_.reserve(netlist.num_cells());
    for (CellId id = 0; id < netlist.num_cells(); ++id) {
        const std::int64_t d = electrical_.cell_delay_ps(id);
        // The timing wheel allocates O(max delay) slots; a delay this large
        // means the electrical annotation is corrupt, not that the design
        // is slow (generic350 delays are tens of ps).
        HDPM_REQUIRE(d >= 1 && d <= (std::int64_t{1} << 20),
                     "cell ", id, " delay ", d, " ps out of range");
        delay_ps_.push_back(static_cast<std::int32_t>(d));
        max_cell_delay_ps_ = std::max(max_cell_delay_ps_, d);
    }
    cell_rec_.reserve(netlist.num_cells());
    for (CellId id = 0; id < netlist.num_cells(); ++id) {
        const auto ins = compiled_.inputs(id);
        CellRec rec{};
        for (std::size_t k = 0; k < 3; ++k) {
            rec.in[k] = k < ins.size() ? ins[k] : NetId{0};
        }
        rec.out = compiled_.output(id);
        rec.delay_ps = delay_ps_[id];
        rec.num_inputs = static_cast<std::uint8_t>(ins.size());
        // Replicate the n-input truth table across all 2^3 gather indices so
        // the value bits of the unused (net-0-aliased) inputs are don't-cares.
        const unsigned n = ins.size();
        std::uint8_t t8 = 0;
        for (unsigned idx = 0; idx < 8; ++idx) {
            const unsigned folded = idx & ((1U << n) - 1U);
            t8 |= static_cast<std::uint8_t>((compiled_.truth(id) >> folded) & 1U)
                  << idx;
        }
        rec.truth8 = t8;
        cell_rec_.push_back(rec);
    }
    edge_charge_fc_.reserve(netlist.num_nets());
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        edge_charge_fc_.push_back(electrical_.edge_charge_fc(net));
    }
}

} // namespace hdpm::sim
