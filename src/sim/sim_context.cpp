#include "sim/sim_context.hpp"

namespace hdpm::sim {

using netlist::NetId;

SimContext::SimContext(const netlist::Netlist& netlist,
                       const gate::TechLibrary& library)
    : netlist_(&netlist),
      electrical_(netlist, library),
      topo_(netlist.topological_order())
{
    const auto fanout = netlist.fanout_table();
    fanout_offset_.assign(netlist.num_nets() + 1, 0);
    std::size_t total = 0;
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        fanout_offset_[net] = static_cast<std::uint32_t>(total);
        total += fanout[net].size();
    }
    fanout_offset_[netlist.num_nets()] = static_cast<std::uint32_t>(total);
    fanout_cell_.reserve(total);
    for (NetId net = 0; net < netlist.num_nets(); ++net) {
        fanout_cell_.insert(fanout_cell_.end(), fanout[net].begin(), fanout[net].end());
    }
}

} // namespace hdpm::sim
