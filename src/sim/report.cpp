#include "sim/report.hpp"

#include <algorithm>
#include <array>
#include <ostream>

#include "util/table.hpp"

namespace hdpm::sim {

using netlist::NetId;

std::vector<NetPowerEntry> top_power_nets(const netlist::Netlist& netlist,
                                          const EventSimulator& simulator, std::size_t k)
{
    const auto& charge = simulator.cumulative_charge_per_net();
    const auto& transitions = simulator.cumulative_transitions();
    double total = 0.0;
    for (const double q : charge) {
        total += q;
    }

    std::vector<NetPowerEntry> entries;
    entries.reserve(charge.size());
    for (NetId net = 0; net < charge.size(); ++net) {
        if (charge[net] <= 0.0) {
            continue;
        }
        NetPowerEntry entry;
        entry.net = net;
        entry.label = netlist.net_label(net).empty() ? "n" + std::to_string(net)
                                                     : netlist.net_label(net);
        entry.transitions = transitions[net];
        entry.charge_fc = charge[net];
        entry.share = total > 0.0 ? charge[net] / total : 0.0;
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const NetPowerEntry& a, const NetPowerEntry& b) {
                  return a.charge_fc > b.charge_fc;
              });
    if (entries.size() > k) {
        entries.resize(k);
    }
    return entries;
}

std::vector<KindPowerEntry> power_by_gate_kind(const netlist::Netlist& netlist,
                                               const EventSimulator& simulator)
{
    const auto& charge = simulator.cumulative_charge_per_net();
    double total = 0.0;
    std::array<double, gate::kNumGateKinds> by_kind{};
    std::array<std::size_t, gate::kNumGateKinds> cells{};
    for (NetId net = 0; net < charge.size(); ++net) {
        total += charge[net];
        const netlist::CellId driver = netlist.driver(net);
        const gate::GateKind kind = driver == netlist::kInvalidId
                                        ? gate::GateKind::Const0
                                        : netlist.cell(driver).kind;
        by_kind[static_cast<std::size_t>(kind)] += charge[net];
    }
    for (const netlist::Cell& cell : netlist.cells()) {
        ++cells[static_cast<std::size_t>(cell.kind)];
    }

    std::vector<KindPowerEntry> entries;
    for (int k = 0; k < gate::kNumGateKinds; ++k) {
        if (by_kind[static_cast<std::size_t>(k)] <= 0.0) {
            continue;
        }
        KindPowerEntry entry;
        entry.kind = static_cast<gate::GateKind>(k);
        entry.cells = cells[static_cast<std::size_t>(k)];
        entry.charge_fc = by_kind[static_cast<std::size_t>(k)];
        entry.share = total > 0.0 ? entry.charge_fc / total : 0.0;
        entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const KindPowerEntry& a, const KindPowerEntry& b) {
                  return a.charge_fc > b.charge_fc;
              });
    return entries;
}

void print_power_report(std::ostream& os, const netlist::Netlist& netlist,
                        const EventSimulator& simulator, std::size_t top_k)
{
    os << "power report for '" << netlist.name() << "'\n";

    util::TextTable nets;
    nets.set_header({"net", "toggles", "charge [fC]", "share [%]"});
    nets.set_alignment({util::Align::Left});
    for (const NetPowerEntry& entry : top_power_nets(netlist, simulator, top_k)) {
        nets.add_row({entry.label, std::to_string(entry.transitions),
                      util::TextTable::fmt(entry.charge_fc, 1),
                      util::TextTable::fmt(100.0 * entry.share, 1)});
    }
    os << "top nets:\n";
    nets.print(os);

    util::TextTable kinds;
    kinds.set_header({"gate kind", "cells", "charge [fC]", "share [%]"});
    kinds.set_alignment({util::Align::Left});
    for (const KindPowerEntry& entry : power_by_gate_kind(netlist, simulator)) {
        kinds.add_row({std::string{gate::gate_name(entry.kind)},
                       std::to_string(entry.cells),
                       util::TextTable::fmt(entry.charge_fc, 1),
                       util::TextTable::fmt(100.0 * entry.share, 1)});
    }
    os << "by driving gate kind (CONST0 row = primary-input pin charge):\n";
    kinds.print(os);
}

} // namespace hdpm::sim
