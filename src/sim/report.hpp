#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_sim.hpp"

namespace hdpm::sim {

/// One net in a power hot-spot report.
struct NetPowerEntry {
    netlist::NetId net = netlist::kInvalidId;
    std::string label;              ///< net label (or "n<id>")
    std::uint64_t transitions = 0;  ///< cumulative toggles
    double charge_fc = 0.0;         ///< cumulative charge [fC]
    double share = 0.0;             ///< fraction of the total charge
};

/// Per-gate-kind aggregation of a simulation's charge.
struct KindPowerEntry {
    gate::GateKind kind{};
    std::size_t cells = 0;
    double charge_fc = 0.0;
    double share = 0.0;
};

/// The @p k nets that drew the most charge in @p simulator's lifetime,
/// most expensive first.
[[nodiscard]] std::vector<NetPowerEntry> top_power_nets(
    const netlist::Netlist& netlist, const EventSimulator& simulator, std::size_t k);

/// Charge grouped by the *driving* gate kind (primary-input charge is
/// reported under Const0 — no driver). Sorted by charge, descending.
[[nodiscard]] std::vector<KindPowerEntry> power_by_gate_kind(
    const netlist::Netlist& netlist, const EventSimulator& simulator);

/// Print a human-readable hot-spot report (top nets + per-kind breakdown).
void print_power_report(std::ostream& os, const netlist::Netlist& netlist,
                        const EventSimulator& simulator, std::size_t top_k = 10);

} // namespace hdpm::sim
