#include "sim/compiled.hpp"

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::CellId;
using netlist::NetId;

CompiledNetlist::CompiledNetlist(const netlist::Netlist& netlist)
    : num_nets_(netlist.num_nets()), topo_(netlist.topological_order())
{
    const std::size_t num_cells = netlist.num_cells();
    in_offset_.reserve(num_cells + 1);
    out_net_.reserve(num_cells);
    kind_.reserve(num_cells);
    truth_.reserve(num_cells);

    std::size_t total_inputs = 0;
    for (CellId id = 0; id < num_cells; ++id) {
        const netlist::Cell& cell = netlist.cell(id);
        const auto ins = cell.input_span();
        HDPM_REQUIRE(ins.size() <= static_cast<std::size_t>(gate::kMaxGateInputs),
                     "cell ", id, " has ", ins.size(), " inputs; the compiled "
                     "truth-table byte holds at most ", gate::kMaxGateInputs);
        in_offset_.push_back(static_cast<std::uint32_t>(total_inputs));
        total_inputs += ins.size();
        out_net_.push_back(cell.output);
        kind_.push_back(cell.kind);
        truth_.push_back(gate::gate_truth_table(cell.kind));
    }
    in_offset_.push_back(static_cast<std::uint32_t>(total_inputs));
    in_net_.reserve(total_inputs);
    for (CellId id = 0; id < num_cells; ++id) {
        const auto ins = netlist.cell(id).input_span();
        in_net_.insert(in_net_.end(), ins.begin(), ins.end());
    }

    const auto fanout = netlist.fanout_table();
    fanout_offset_.assign(num_nets_ + 1, 0);
    std::size_t total_fanout = 0;
    for (NetId net = 0; net < num_nets_; ++net) {
        fanout_offset_[net] = static_cast<std::uint32_t>(total_fanout);
        total_fanout += fanout[net].size();
    }
    fanout_offset_[num_nets_] = static_cast<std::uint32_t>(total_fanout);
    fanout_cell_.reserve(total_fanout);
    for (NetId net = 0; net < num_nets_; ++net) {
        fanout_cell_.insert(fanout_cell_.end(), fanout[net].begin(), fanout[net].end());
    }

    cell_output_.assign(num_nets_, 0);
    for (const NetId net : out_net_) {
        cell_output_[net] = 1;
    }
}

} // namespace hdpm::sim
