#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sim/event_sim.hpp"

namespace hdpm::sim {

/// Glitch analysis of one net.
struct NetGlitch {
    netlist::NetId net = netlist::kInvalidId;
    std::string label;
    std::uint64_t functional_toggles = 0; ///< steady-state value changes
    std::uint64_t timed_toggles = 0;      ///< event-simulator toggles (incl. glitches)

    /// timed / functional toggles (1 = glitch-free; functional = 0 maps
    /// to 1 when timed is 0 too, else to +inf represented as timed).
    [[nodiscard]] double glitch_factor() const noexcept
    {
        if (functional_toggles == 0) {
            return timed_toggles == 0 ? 1.0 : static_cast<double>(timed_toggles);
        }
        return static_cast<double>(timed_toggles) /
               static_cast<double>(functional_toggles);
    }
};

/// Whole-netlist glitch report.
struct GlitchReport {
    std::vector<NetGlitch> nets;      ///< per net, NetId order
    std::uint64_t functional_toggles = 0;
    std::uint64_t timed_toggles = 0;
    double functional_charge_fc = 0.0; ///< charge if only steady-state edges paid
    double timed_charge_fc = 0.0;      ///< charge the event simulator measured

    /// Overall activity amplification due to timing (≥ 1 in practice).
    [[nodiscard]] double glitch_factor() const noexcept
    {
        return functional_toggles == 0
                   ? 1.0
                   : static_cast<double>(timed_toggles) /
                         static_cast<double>(functional_toggles);
    }

    /// Fraction of the measured charge attributable to glitches.
    [[nodiscard]] double glitch_charge_share() const noexcept
    {
        return timed_charge_fc <= 0.0
                   ? 0.0
                   : 1.0 - functional_charge_fc / timed_charge_fc;
    }
};

/// Run the same pattern stream through the timed event simulator and the
/// zero-delay functional evaluator, and report where the extra (glitch)
/// transitions happen. This is the diagnostic behind the classic result
/// that array multipliers are glitch-dominated while tree structures are
/// comparatively clean — and behind this library's Table-1 deviations.
[[nodiscard]] GlitchReport analyze_glitches(const netlist::Netlist& netlist,
                                            const gate::TechLibrary& library,
                                            std::span<const util::BitVec> patterns,
                                            EventSimOptions options = {});

/// The @p k nets with the highest glitch-toggle surplus.
[[nodiscard]] std::vector<NetGlitch> top_glitchy_nets(const GlitchReport& report,
                                                      std::size_t k);

/// Print a short human-readable glitch report.
void print_glitch_report(std::ostream& os, const GlitchReport& report,
                         std::size_t top_k = 8);

} // namespace hdpm::sim
