#include "sim/functional.hpp"

#include "util/error.hpp"

namespace hdpm::sim {

using netlist::Cell;
using netlist::NetId;
using util::BitVec;

FunctionalEvaluator::FunctionalEvaluator(const netlist::Netlist& netlist)
    : netlist_(&netlist), topo_(netlist.topological_order()), values_(netlist.num_nets(), 0)
{
}

BitVec FunctionalEvaluator::eval(const BitVec& inputs)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");
    for (std::size_t i = 0; i < pis.size(); ++i) {
        values_[pis[i]] = inputs.get(static_cast<int>(i)) ? 1 : 0;
    }

    std::uint8_t in_vals[3];
    for (const netlist::CellId id : topo_) {
        const Cell& cell = netlist_->cell(id);
        const auto ins = cell.input_span();
        for (std::size_t i = 0; i < ins.size(); ++i) {
            in_vals[i] = values_[ins[i]];
        }
        values_[cell.output] =
            gate::gate_eval(cell.kind, {in_vals, ins.size()}) ? 1 : 0;
    }

    const auto& pos = netlist_->primary_outputs();
    HDPM_REQUIRE(static_cast<int>(pos.size()) <= BitVec::kMaxWidth,
                 "too many outputs to pack");
    BitVec out{static_cast<int>(pos.size())};
    for (std::size_t i = 0; i < pos.size(); ++i) {
        out.set(static_cast<int>(i), values_[pos[i]] != 0);
    }
    return out;
}

} // namespace hdpm::sim
