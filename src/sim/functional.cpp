#include "sim/functional.hpp"

#include "sim/sim_context.hpp"
#include "util/error.hpp"

namespace hdpm::sim {

using netlist::CellId;
using netlist::NetId;
using util::BitVec;

FunctionalEvaluator::FunctionalEvaluator(const netlist::Netlist& netlist)
    : netlist_(&netlist),
      owned_(std::make_unique<const CompiledNetlist>(netlist)),
      compiled_(owned_.get()),
      values_(netlist.num_nets(), 0)
{
}

FunctionalEvaluator::FunctionalEvaluator(const SimContext& context)
    : netlist_(&context.netlist()),
      compiled_(&context.compiled()),
      values_(context.netlist().num_nets(), 0)
{
}

BitVec FunctionalEvaluator::eval(const BitVec& inputs)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(inputs.width() == static_cast<int>(pis.size()), "netlist '",
                 netlist_->name(), "' has ", pis.size(), " inputs, pattern has ",
                 inputs.width(), " bits");
    for (std::size_t i = 0; i < pis.size(); ++i) {
        values_[pis[i]] = inputs.get(static_cast<int>(i)) ? 1 : 0;
    }

    for (const CellId id : compiled_->topological_order()) {
        values_[compiled_->output(id)] = compiled_->eval(id, values_.data());
    }

    const auto& pos = netlist_->primary_outputs();
    HDPM_REQUIRE(static_cast<int>(pos.size()) <= BitVec::kMaxWidth,
                 "too many outputs to pack");
    BitVec out{static_cast<int>(pos.size())};
    for (std::size_t i = 0; i < pos.size(); ++i) {
        out.set(static_cast<int>(i), values_[pos[i]] != 0);
    }
    return out;
}

} // namespace hdpm::sim
