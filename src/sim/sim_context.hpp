#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "sim/electrical.hpp"

namespace hdpm::sim {

/// Immutable simulation context for one (netlist, technology) pair: the
/// electrical annotation, the compiled structure-of-arrays logic view
/// (input/fanout CSR, topological order, per-cell truth tables), and flat
/// per-cell delay / per-net edge-charge arrays for the event-kernel hot
/// loop.
///
/// Everything here is derived data that used to be rebuilt by every
/// EventSimulator (and, for the topological order, on every initialize()).
/// It is written only during construction and read-only afterwards, so one
/// context can be shared const across any number of simulator instances on
/// any number of threads with no synchronization — the basis of the sharded
/// characterization engine.
///
/// Lifetime: the netlist must outlive the context. The technology library
/// is fully consumed during construction (the ElectricalView copies what it
/// needs) and may be destroyed afterwards.
class SimContext {
public:
    SimContext(const netlist::Netlist& netlist, const gate::TechLibrary& library);

    [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *netlist_; }

    [[nodiscard]] const ElectricalView& electrical() const noexcept
    {
        return electrical_;
    }

    /// The compiled logic view shared by all simulator kinds.
    [[nodiscard]] const CompiledNetlist& compiled() const noexcept { return compiled_; }

    /// Cells consuming @p net (CSR row of the fanout table).
    [[nodiscard]] std::span<const netlist::CellId> fanout(netlist::NetId net) const
    {
        return compiled_.fanout(net);
    }

    /// Cells in topological order (inputs before consumers).
    [[nodiscard]] std::span<const netlist::CellId> topological_order() const noexcept
    {
        return compiled_.topological_order();
    }

    /// Propagation delay of a cell [ps] — same values as
    /// electrical().cell_delay_ps but unchecked flat-array access for the
    /// event hot loop.
    [[nodiscard]] std::int64_t cell_delay_ps(netlist::CellId cell) const
    {
        return delay_ps_[cell];
    }

    /// Charge per edge on a net [fC] — unchecked mirror of
    /// electrical().edge_charge_fc.
    [[nodiscard]] double edge_charge_fc(netlist::NetId net) const
    {
        return edge_charge_fc_[net];
    }

    /// Largest per-cell delay [ps]; bounds the timing-wheel horizon (every
    /// scheduled event lies at most this far ahead of the current time).
    [[nodiscard]] std::int64_t max_cell_delay_ps() const noexcept
    {
        return max_cell_delay_ps_;
    }

private:
    const netlist::Netlist* netlist_;
    ElectricalView electrical_;
    CompiledNetlist compiled_;
    std::vector<std::int32_t> delay_ps_;    // per cell
    std::vector<double> edge_charge_fc_;    // per net
    std::int64_t max_cell_delay_ps_ = 1;
};

} // namespace hdpm::sim
