#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/electrical.hpp"

namespace hdpm::sim {

/// Immutable simulation context for one (netlist, technology) pair: the
/// electrical annotation, the flattened CSR fanout table, and the cells in
/// topological order.
///
/// Everything here is derived data that used to be rebuilt by every
/// EventSimulator (and, for the topological order, on every initialize()).
/// It is written only during construction and read-only afterwards, so one
/// context can be shared const across any number of simulator instances on
/// any number of threads with no synchronization — the basis of the sharded
/// characterization engine.
///
/// Lifetime: the netlist must outlive the context. The technology library
/// is fully consumed during construction (the ElectricalView copies what it
/// needs) and may be destroyed afterwards.
class SimContext {
public:
    SimContext(const netlist::Netlist& netlist, const gate::TechLibrary& library);

    [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *netlist_; }

    [[nodiscard]] const ElectricalView& electrical() const noexcept
    {
        return electrical_;
    }

    /// Cells consuming @p net (CSR row of the fanout table).
    [[nodiscard]] std::span<const netlist::CellId> fanout(netlist::NetId net) const
    {
        return {fanout_cell_.data() + fanout_offset_[net],
                fanout_cell_.data() + fanout_offset_[net + 1]};
    }

    /// Cells in topological order (inputs before consumers).
    [[nodiscard]] std::span<const netlist::CellId> topological_order() const noexcept
    {
        return topo_;
    }

private:
    const netlist::Netlist* netlist_;
    ElectricalView electrical_;
    std::vector<std::uint32_t> fanout_offset_;
    std::vector<netlist::CellId> fanout_cell_;
    std::vector<netlist::CellId> topo_;
};

} // namespace hdpm::sim
