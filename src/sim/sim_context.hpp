#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "sim/electrical.hpp"

namespace hdpm::sim {

/// Immutable simulation context for one (netlist, technology) pair: the
/// electrical annotation, the compiled structure-of-arrays logic view
/// (input/fanout CSR, topological order, per-cell truth tables), and flat
/// per-cell delay / per-net edge-charge arrays for the event-kernel hot
/// loop.
///
/// Everything here is derived data that used to be rebuilt by every
/// EventSimulator (and, for the topological order, on every initialize()).
/// It is written only during construction and read-only afterwards, so one
/// context can be shared const across any number of simulator instances on
/// any number of threads with no synchronization — the basis of the sharded
/// characterization engine.
///
/// Lifetime: the netlist must outlive the context. The technology library
/// is fully consumed during construction (the ElectricalView copies what it
/// needs) and may be destroyed afterwards.
class SimContext {
public:
    SimContext(const netlist::Netlist& netlist, const gate::TechLibrary& library);

    [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *netlist_; }

    [[nodiscard]] const ElectricalView& electrical() const noexcept
    {
        return electrical_;
    }

    /// The compiled logic view shared by all simulator kinds.
    [[nodiscard]] const CompiledNetlist& compiled() const noexcept { return compiled_; }

    /// Cells consuming @p net (CSR row of the fanout table).
    [[nodiscard]] std::span<const netlist::CellId> fanout(netlist::NetId net) const
    {
        return compiled_.fanout(net);
    }

    /// Cells in topological order (inputs before consumers).
    [[nodiscard]] std::span<const netlist::CellId> topological_order() const noexcept
    {
        return compiled_.topological_order();
    }

    /// Propagation delay of a cell [ps] — same values as
    /// electrical().cell_delay_ps but unchecked flat-array access for the
    /// event hot loop.
    [[nodiscard]] std::int64_t cell_delay_ps(netlist::CellId cell) const
    {
        return delay_ps_[cell];
    }

    /// Everything the event kernel needs to evaluate and schedule one cell,
    /// packed into 24 bytes so an evaluation touches one or two cache lines
    /// instead of five parallel arrays. Unused input slots point at net 0
    /// and the truth table is replicated across the unused index bits, so
    /// evaluation is a fixed three-value gather with no per-arity branch.
    struct CellRec {
        netlist::NetId in[3];  ///< input nets (missing pins alias net 0)
        netlist::NetId out;    ///< driven output net
        std::int32_t delay_ps; ///< propagation delay
        std::uint8_t truth8;   ///< truth table expanded to all 8 gather indices
        std::uint8_t num_inputs;
        std::uint16_t unused = 0;
    };
    static_assert(sizeof(CellRec) == 24);

    /// Packed evaluation record of a cell (event-kernel hot loop).
    [[nodiscard]] const CellRec& cell_rec(netlist::CellId cell) const
    {
        return cell_rec_[cell];
    }

    /// Evaluate a cell against @p values (one 0/1 byte per net) through the
    /// packed record: bit-identical to CompiledNetlist::eval.
    [[nodiscard]] static std::uint8_t eval_rec(const CellRec& cr,
                                               const std::uint8_t* values)
    {
        const std::uint32_t idx = static_cast<std::uint32_t>(values[cr.in[0]]) |
                                  (static_cast<std::uint32_t>(values[cr.in[1]]) << 1) |
                                  (static_cast<std::uint32_t>(values[cr.in[2]]) << 2);
        return (cr.truth8 >> idx) & 1U;
    }

    /// Charge per edge on a net [fC] — unchecked mirror of
    /// electrical().edge_charge_fc.
    [[nodiscard]] double edge_charge_fc(netlist::NetId net) const
    {
        return edge_charge_fc_[net];
    }

    /// The whole flat per-net edge-charge array [fC] — the power-emulation
    /// backend builds its per-toggle weight vector from this.
    [[nodiscard]] std::span<const double> edge_charges_fc() const noexcept
    {
        return edge_charge_fc_;
    }

    /// True when some cell drives @p net (see CompiledNetlist).
    [[nodiscard]] bool is_cell_output(netlist::NetId net) const
    {
        return compiled_.is_cell_output(net);
    }

    /// Largest per-cell delay [ps]; bounds the timing-wheel horizon (every
    /// scheduled event lies at most this far ahead of the current time).
    [[nodiscard]] std::int64_t max_cell_delay_ps() const noexcept
    {
        return max_cell_delay_ps_;
    }

private:
    const netlist::Netlist* netlist_;
    ElectricalView electrical_;
    CompiledNetlist compiled_;
    std::vector<std::int32_t> delay_ps_;    // per cell
    std::vector<CellRec> cell_rec_;         // per cell
    std::vector<double> edge_charge_fc_;    // per net
    std::int64_t max_cell_delay_ps_ = 1;
};

} // namespace hdpm::sim
