#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "util/bitvec.hpp"

namespace hdpm::sim {

class SimContext;

/// 64-lane bit-parallel zero-delay evaluator.
///
/// Packs up to 64 stimulus vectors into one std::uint64_t word per net
/// (bit j = the net's value under vector j) and settles the whole batch in
/// a single pass over the compiled topological order using word-level
/// bitwise gate formulas — one AND evaluates an AND2 for 64 vectors at
/// once. Like FunctionalEvaluator it models no timing and no glitches; it
/// exists for workloads where per-vector event timing is not needed:
/// zero-delay toggle counting over stimulus streams, functional
/// cross-checks in tests, and cheap warm-up / screening passes before the
/// event kernel runs.
///
/// An instance is not thread-safe, but — as with EventSimulator — all
/// shared data lives in the immutable compiled view, so any number of
/// instances over one SimContext may run concurrently.
class BatchedEvaluator {
public:
    /// Lanes per batch (one bit of every net word per stimulus vector).
    static constexpr int kLanes = 64;

    /// Compile a private view of @p netlist (must outlive the evaluator).
    explicit BatchedEvaluator(const netlist::Netlist& netlist);

    /// Borrow the compiled view of an existing SimContext.
    explicit BatchedEvaluator(const SimContext& context);

    /// Evaluate 1..kLanes input vectors in one pass; returns one output
    /// BitVec per input vector, in order.
    std::vector<util::BitVec> eval(std::span<const util::BitVec> inputs);

    /// Settle 1..kLanes input vectors in one word-parallel pass without
    /// materializing outputs; read the result through lanes() or
    /// export_lane(). This is the allocation-free entry point the
    /// characterizer's batched warm-up drives.
    void settle(std::span<const util::BitVec> inputs);

    /// Scatter lane @p lane of the last settle into one 0/1 byte per net —
    /// exactly the net-value layout EventSimulator::load_state adopts.
    /// @p values must hold one byte per net.
    void export_lane(int lane, std::span<std::uint8_t> values) const;

    /// Zero-delay toggle counts of a stimulus stream: element j is the
    /// number of nets whose settled value differs between stream[j] and
    /// stream[j+1].
    ///
    /// Window-overlap boundary contract: a stream of N vectors yields
    /// exactly N-1 counts — one per *adjacent pair*, never one per vector.
    /// The stream is processed in kLanes-vector windows that each re-settle
    /// the last vector of the previous window (one vector of overlap), so a
    /// window of L vectors contributes L-1 counts and the boundary pair
    /// (window i's last vector, window i+1's first) is counted exactly
    /// once. Arbitrary lengths therefore cost ceil((N-1)/(kLanes-1)) settle
    /// passes. A single-vector stream has no pairs and returns no counts.
    std::vector<std::uint64_t> count_toggles(std::span<const util::BitVec> stream);

    /// Charge-weighted variant of count_toggles: element j is the sum of
    /// @p weights[net] over every net whose settled value differs between
    /// stream[j] and stream[j+1] — i.e. the zero-delay cycle charge of the
    /// transition when weights holds per-net per-toggle charge. Same
    /// window-overlap contract (N vectors → N-1 sums). Per transition the
    /// weights accumulate in ascending net order, so the floating-point
    /// result is deterministic. When @p counts is non-null it receives the
    /// unweighted toggle counts of the same pass (one settle sweep serves
    /// both). @p weights must hold one entry per net.
    std::vector<double> count_weighted_toggles(std::span<const util::BitVec> stream,
                                               std::span<const double> weights,
                                               std::vector<std::uint64_t>* counts = nullptr);

    /// Multi-weight-set variant of count_weighted_toggles — the multi-
    /// corner chain scorer: one settle sweep over the stream scores every
    /// weight set at once. charges[k] is resized to N-1 and receives the
    /// stream scored against weight_sets[k]; per transition and per set the
    /// weights accumulate in ascending net order, exactly as a single-set
    /// count_weighted_toggles call would, so charges[k] is bit-identical
    /// to count_weighted_toggles(stream, weight_sets[k]) while the settle
    /// work is paid once instead of K times. When @p counts is non-null it
    /// receives the unweighted toggle counts (weight-set independent).
    void count_weighted_toggles_multi(
        std::span<const util::BitVec> stream,
        std::span<const std::span<const double>> weight_sets,
        std::span<std::vector<double>> charges,
        std::vector<std::uint64_t>* counts = nullptr);

    /// Settle @p us and @p vs (equal sizes, 1..kLanes vectors each) in two
    /// word-parallel passes and derive the per-net pair-toggle words:
    /// bit j of toggle_words()[net] is set iff the net's settled value
    /// differs between us[j] and vs[j]. Also fills toggle_counts_per_net()
    /// with popcount(toggle word) per net through the runtime-dispatched
    /// util::cpu kernels. This is the power-emulation backend's inner loop:
    /// one call scores up to 64 independent (u, v) stimulus pairs.
    void settle_pairs(std::span<const util::BitVec> us,
                      std::span<const util::BitVec> vs);

    /// Per-net pair-toggle words of the last settle_pairs (lanes at or
    /// above the batch size are zero).
    [[nodiscard]] std::span<const std::uint64_t> toggle_words() const noexcept
    {
        return pair_diff_;
    }

    /// Per-net zero-delay toggle counts of the last settle_pairs
    /// (popcount of each toggle word, ≤ 64 so a byte each).
    [[nodiscard]] std::span<const std::uint8_t> toggle_counts_per_net() const noexcept
    {
        return pair_popcnt_;
    }

    /// Per-lane weighted toggle sums of the last settle_pairs:
    /// out[j] = Σ_net weights[net] · (bit j of the net's toggle word) —
    /// the zero-delay cycle charge of pair j when weights holds per-net
    /// per-toggle charge. Weights accumulate in ascending net order
    /// (deterministic floating point). @p out must cover the batch size.
    void weighted_pair_charges(std::span<const double> weights,
                               std::span<double> out) const;

    /// Lane word of a net after the last eval(): bit j is the net's value
    /// under input vector j (bits at or above the batch size are zero).
    [[nodiscard]] std::uint64_t lanes(netlist::NetId net) const
    {
        return lanes_.at(net);
    }

    /// All lane words of the last settle, indexed by net.
    [[nodiscard]] std::span<const std::uint64_t> lane_words() const noexcept
    {
        return lanes_;
    }

private:
    const netlist::Netlist* netlist_;
    std::unique_ptr<const CompiledNetlist> owned_; // null when borrowing
    const CompiledNetlist* compiled_;
    std::vector<std::uint64_t> lanes_;
    std::vector<std::uint64_t> saved_;      // u-side lanes of settle_pairs
    std::vector<std::uint64_t> pair_diff_;  // saved_ ^ lanes_ after settle_pairs
    std::vector<std::uint8_t> pair_popcnt_; // popcount(pair_diff_) per net
};

} // namespace hdpm::sim
