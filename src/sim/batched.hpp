#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "util/bitvec.hpp"

namespace hdpm::sim {

class SimContext;

/// 64-lane bit-parallel zero-delay evaluator.
///
/// Packs up to 64 stimulus vectors into one std::uint64_t word per net
/// (bit j = the net's value under vector j) and settles the whole batch in
/// a single pass over the compiled topological order using word-level
/// bitwise gate formulas — one AND evaluates an AND2 for 64 vectors at
/// once. Like FunctionalEvaluator it models no timing and no glitches; it
/// exists for workloads where per-vector event timing is not needed:
/// zero-delay toggle counting over stimulus streams, functional
/// cross-checks in tests, and cheap warm-up / screening passes before the
/// event kernel runs.
///
/// An instance is not thread-safe, but — as with EventSimulator — all
/// shared data lives in the immutable compiled view, so any number of
/// instances over one SimContext may run concurrently.
class BatchedEvaluator {
public:
    /// Lanes per batch (one bit of every net word per stimulus vector).
    static constexpr int kLanes = 64;

    /// Compile a private view of @p netlist (must outlive the evaluator).
    explicit BatchedEvaluator(const netlist::Netlist& netlist);

    /// Borrow the compiled view of an existing SimContext.
    explicit BatchedEvaluator(const SimContext& context);

    /// Evaluate 1..kLanes input vectors in one pass; returns one output
    /// BitVec per input vector, in order.
    std::vector<util::BitVec> eval(std::span<const util::BitVec> inputs);

    /// Settle 1..kLanes input vectors in one word-parallel pass without
    /// materializing outputs; read the result through lanes() or
    /// export_lane(). This is the allocation-free entry point the
    /// characterizer's batched warm-up drives.
    void settle(std::span<const util::BitVec> inputs);

    /// Scatter lane @p lane of the last settle into one 0/1 byte per net —
    /// exactly the net-value layout EventSimulator::load_state adopts.
    /// @p values must hold one byte per net.
    void export_lane(int lane, std::span<std::uint8_t> values) const;

    /// Zero-delay toggle counts of a stimulus stream: element j is the
    /// number of nets whose settled value differs between stream[j] and
    /// stream[j+1] (length N stream → N-1 counts). The stream is processed
    /// in kLanes-vector windows with one vector of overlap, so arbitrary
    /// lengths cost ~N/63 settle passes.
    std::vector<std::uint64_t> toggle_counts(std::span<const util::BitVec> stream);

    /// Lane word of a net after the last eval(): bit j is the net's value
    /// under input vector j (bits at or above the batch size are zero).
    [[nodiscard]] std::uint64_t lanes(netlist::NetId net) const
    {
        return lanes_.at(net);
    }

private:
    const netlist::Netlist* netlist_;
    std::unique_ptr<const CompiledNetlist> owned_; // null when borrowing
    const CompiledNetlist* compiled_;
    std::vector<std::uint64_t> lanes_;
};

} // namespace hdpm::sim
