#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gatelib/gate.hpp"
#include "netlist/netlist.hpp"

namespace hdpm::sim {

/// Cache-friendly compiled form of a netlist's logic: everything the
/// simulation hot loops touch, flattened into structure-of-arrays form.
///
/// Per cell: the input nets (flat CSR, at most gate::kMaxGateInputs wide),
/// the driven output net, the gate kind, and the boolean function packed
/// into a truth-table byte — bit i of truth(c) is the output for the packed
/// input value i, where input pin k contributes bit k. Per net: the
/// consuming cells (flat CSR fanout). Evaluating a cell is therefore a
/// handful of contiguous loads plus one shift, with no Cell struct, no
/// nested vectors, and no gate_eval switch on the hot path.
///
/// All simulators share one compiled view: EventSimulator and
/// FunctionalEvaluator walk it scalar (one value byte per net), and
/// BatchedEvaluator walks it 64 stimulus vectors at a time.
///
/// Immutable after construction — share it const across threads freely.
/// The netlist must outlive the compiled view.
class CompiledNetlist {
public:
    explicit CompiledNetlist(const netlist::Netlist& netlist);

    [[nodiscard]] std::size_t num_nets() const noexcept { return num_nets_; }
    [[nodiscard]] std::size_t num_cells() const noexcept { return out_net_.size(); }

    /// Cells in topological order (inputs before consumers).
    [[nodiscard]] std::span<const netlist::CellId> topological_order() const noexcept
    {
        return topo_;
    }

    /// Cells consuming @p net (CSR row of the fanout table).
    [[nodiscard]] std::span<const netlist::CellId> fanout(netlist::NetId net) const
    {
        return {fanout_cell_.data() + fanout_offset_[net],
                fanout_cell_.data() + fanout_offset_[net + 1]};
    }

    /// Input nets of cell @p c (CSR row of the input table).
    [[nodiscard]] std::span<const netlist::NetId> inputs(netlist::CellId c) const
    {
        return {in_net_.data() + in_offset_[c], in_net_.data() + in_offset_[c + 1]};
    }

    /// Net driven by cell @p c.
    [[nodiscard]] netlist::NetId output(netlist::CellId c) const { return out_net_[c]; }

    /// Gate kind of cell @p c (cold paths and lane-parallel evaluation).
    [[nodiscard]] gate::GateKind kind(netlist::CellId c) const { return kind_[c]; }

    /// Packed truth table of cell @p c (see gate::gate_truth_table).
    [[nodiscard]] std::uint8_t truth(netlist::CellId c) const { return truth_[c]; }

    /// True when some cell drives @p net (false for primary inputs and
    /// floating nets). The power-emulation backend uses this to separate
    /// cell-output charge — which glitch correction applies to — from
    /// primary-input charge, which never glitches.
    [[nodiscard]] bool is_cell_output(netlist::NetId net) const
    {
        return cell_output_[net] != 0;
    }

    /// Per-net cell-output flags (one 0/1 byte per net).
    [[nodiscard]] std::span<const std::uint8_t> cell_output_mask() const noexcept
    {
        return cell_output_;
    }

    /// Evaluate cell @p c against @p values (one 0/1 byte per net).
    [[nodiscard]] std::uint8_t eval(netlist::CellId c,
                                    const std::uint8_t* values) const
    {
        const std::uint32_t begin = in_offset_[c];
        const std::uint32_t end = in_offset_[c + 1];
        std::uint32_t idx = 0;
        for (std::uint32_t k = begin; k < end; ++k) {
            idx |= static_cast<std::uint32_t>(values[in_net_[k]]) << (k - begin);
        }
        return (truth_[c] >> idx) & 1U;
    }

private:
    std::size_t num_nets_ = 0;
    std::vector<netlist::CellId> topo_;
    std::vector<std::uint32_t> in_offset_;   // num_cells + 1
    std::vector<netlist::NetId> in_net_;     // flat input pins
    std::vector<netlist::NetId> out_net_;    // per cell
    std::vector<gate::GateKind> kind_;       // per cell
    std::vector<std::uint8_t> truth_;        // per cell
    std::vector<std::uint32_t> fanout_offset_; // num_nets + 1
    std::vector<netlist::CellId> fanout_cell_; // flat consumers
    std::vector<std::uint8_t> cell_output_;    // per net: 1 if a cell drives it
};

} // namespace hdpm::sim
