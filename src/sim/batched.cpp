#include "sim/batched.hpp"

#include <algorithm>
#include <bit>

#include "sim/sim_context.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"

namespace hdpm::sim {

using netlist::CellId;
using netlist::NetId;
using util::BitVec;

namespace {

constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

/// Word-level evaluation of one gate over 64 lanes. Kept in sync with
/// gate_eval by the exhaustive truth-table test in event_kernel_test.
std::uint64_t eval_word(gate::GateKind kind, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c)
{
    static_assert(gate::kNumGateKinds == 19,
                  "new gate kind: add its word-level formula here");
    using gate::GateKind;
    switch (kind) {
    case GateKind::Const0:
        return 0;
    case GateKind::Const1:
        return kAllLanes;
    case GateKind::Buf:
        return a;
    case GateKind::Inv:
        return ~a;
    case GateKind::And2:
        return a & b;
    case GateKind::Nand2:
        return ~(a & b);
    case GateKind::Or2:
        return a | b;
    case GateKind::Nor2:
        return ~(a | b);
    case GateKind::Xor2:
        return a ^ b;
    case GateKind::Xnor2:
        return ~(a ^ b);
    case GateKind::And3:
        return a & b & c;
    case GateKind::Nand3:
        return ~(a & b & c);
    case GateKind::Or3:
        return a | b | c;
    case GateKind::Nor3:
        return ~(a | b | c);
    case GateKind::Xor3:
        return a ^ b ^ c;
    case GateKind::Mux2: // inputs (d0, d1, sel)
        return (c & b) | (~c & a);
    case GateKind::Aoi21:
        return ~((a & b) | c);
    case GateKind::Oai21:
        return ~((a | b) & c);
    case GateKind::Maj3:
        return (a & b) | (a & c) | (b & c);
    }
    HDPM_FAIL("unreachable gate kind");
}

} // namespace

BatchedEvaluator::BatchedEvaluator(const netlist::Netlist& netlist)
    : netlist_(&netlist),
      owned_(std::make_unique<const CompiledNetlist>(netlist)),
      compiled_(owned_.get()),
      lanes_(netlist.num_nets(), 0)
{
}

BatchedEvaluator::BatchedEvaluator(const SimContext& context)
    : netlist_(&context.netlist()),
      compiled_(&context.compiled()),
      lanes_(context.netlist().num_nets(), 0)
{
}

void BatchedEvaluator::settle(std::span<const BitVec> inputs)
{
    const auto& pis = netlist_->primary_inputs();
    HDPM_REQUIRE(!inputs.empty() && inputs.size() <= static_cast<std::size_t>(kLanes),
                 "batch must hold 1..", kLanes, " vectors, got ", inputs.size());
    for (std::size_t j = 0; j < inputs.size(); ++j) {
        HDPM_REQUIRE(inputs[j].width() == static_cast<int>(pis.size()), "netlist '",
                     netlist_->name(), "' has ", pis.size(), " inputs, vector ", j,
                     " has ", inputs[j].width(), " bits");
    }

    // Transpose the batch: bit j of a net word = vector j's value.
    for (std::size_t i = 0; i < pis.size(); ++i) {
        std::uint64_t word = 0;
        for (std::size_t j = 0; j < inputs.size(); ++j) {
            word |= static_cast<std::uint64_t>(inputs[j].get(static_cast<int>(i)))
                    << j;
        }
        lanes_[pis[i]] = word;
    }

    for (const CellId id : compiled_->topological_order()) {
        const auto ins = compiled_->inputs(id);
        const std::uint64_t a = !ins.empty() ? lanes_[ins[0]] : 0;
        const std::uint64_t b = ins.size() > 1 ? lanes_[ins[1]] : 0;
        const std::uint64_t c = ins.size() > 2 ? lanes_[ins[2]] : 0;
        lanes_[compiled_->output(id)] = eval_word(compiled_->kind(id), a, b, c);
    }

    // Inverting gates set garbage in lanes above the batch size; zero them
    // so lanes() and the toggle logic see clean words.
    const std::uint64_t active = inputs.size() == static_cast<std::size_t>(kLanes)
                                     ? kAllLanes
                                     : (std::uint64_t{1} << inputs.size()) - 1;
    if (active != kAllLanes) {
        for (std::uint64_t& word : lanes_) {
            word &= active;
        }
    }
}

void BatchedEvaluator::export_lane(int lane, std::span<std::uint8_t> values) const
{
    HDPM_REQUIRE(lane >= 0 && lane < kLanes, "lane ", lane, " outside [0, ", kLanes,
                 ")");
    HDPM_REQUIRE(values.size() == lanes_.size(), "netlist '", netlist_->name(),
                 "' has ", lanes_.size(), " nets, buffer has ", values.size());
    for (std::size_t net = 0; net < lanes_.size(); ++net) {
        values[net] = static_cast<std::uint8_t>((lanes_[net] >> lane) & 1U);
    }
}

std::vector<BitVec> BatchedEvaluator::eval(std::span<const BitVec> inputs)
{
    settle(inputs);
    const auto& pos = netlist_->primary_outputs();
    HDPM_REQUIRE(static_cast<int>(pos.size()) <= BitVec::kMaxWidth,
                 "too many outputs to pack");
    std::vector<BitVec> out(inputs.size(), BitVec{static_cast<int>(pos.size())});
    for (std::size_t i = 0; i < pos.size(); ++i) {
        const std::uint64_t word = lanes_[pos[i]];
        for (std::size_t j = 0; j < inputs.size(); ++j) {
            out[j].set(static_cast<int>(i), ((word >> j) & 1U) != 0);
        }
    }
    return out;
}

std::vector<std::uint64_t> BatchedEvaluator::count_toggles(std::span<const BitVec> stream)
{
    HDPM_REQUIRE(!stream.empty(), "count_toggles needs at least one vector");
    std::vector<std::uint64_t> counts(stream.size() - 1, 0);
    std::size_t base = 0;
    while (base + 1 < stream.size()) {
        const std::size_t len =
            std::min<std::size_t>(kLanes, stream.size() - base);
        settle(stream.subspan(base, len));
        const std::size_t pairs = len - 1;
        const std::uint64_t pair_mask =
            pairs >= 64 ? kAllLanes : (std::uint64_t{1} << pairs) - 1;
        for (const std::uint64_t word : lanes_) {
            // Bit j of `diff` = net differs between vectors j and j+1.
            std::uint64_t diff = (word ^ (word >> 1)) & pair_mask;
            while (diff != 0) {
                counts[base + static_cast<std::size_t>(std::countr_zero(diff))] += 1;
                diff &= diff - 1;
            }
        }
        base += pairs; // overlap one vector so every adjacent pair is covered
    }
    return counts;
}

std::vector<double> BatchedEvaluator::count_weighted_toggles(
    std::span<const BitVec> stream, std::span<const double> weights,
    std::vector<std::uint64_t>* counts)
{
    HDPM_REQUIRE(!stream.empty(), "count_weighted_toggles needs at least one vector");
    HDPM_REQUIRE(weights.size() == lanes_.size(), "netlist '", netlist_->name(),
                 "' has ", lanes_.size(), " nets, weights has ", weights.size());
    std::vector<double> charges(stream.size() - 1, 0.0);
    if (counts != nullptr) {
        counts->assign(stream.size() - 1, 0);
    }
    std::size_t base = 0;
    while (base + 1 < stream.size()) {
        const std::size_t len =
            std::min<std::size_t>(kLanes, stream.size() - base);
        settle(stream.subspan(base, len));
        const std::size_t pairs = len - 1;
        const std::uint64_t pair_mask =
            pairs >= 64 ? kAllLanes : (std::uint64_t{1} << pairs) - 1;
        for (std::size_t net = 0; net < lanes_.size(); ++net) {
            const std::uint64_t word = lanes_[net];
            std::uint64_t diff = (word ^ (word >> 1)) & pair_mask;
            if (diff == 0) {
                continue;
            }
            const double w = weights[net];
            while (diff != 0) {
                const std::size_t j =
                    base + static_cast<std::size_t>(std::countr_zero(diff));
                charges[j] += w;
                if (counts != nullptr) {
                    (*counts)[j] += 1;
                }
                diff &= diff - 1;
            }
        }
        base += pairs;
    }
    return charges;
}

void BatchedEvaluator::count_weighted_toggles_multi(
    std::span<const BitVec> stream, std::span<const std::span<const double>> weight_sets,
    std::span<std::vector<double>> charges, std::vector<std::uint64_t>* counts)
{
    HDPM_REQUIRE(!stream.empty(), "count_weighted_toggles_multi needs at least one vector");
    HDPM_REQUIRE(weight_sets.size() == charges.size(), "weight_sets has ",
                 weight_sets.size(), " sets, charges has ", charges.size());
    for (const std::span<const double> weights : weight_sets) {
        HDPM_REQUIRE(weights.size() == lanes_.size(), "netlist '", netlist_->name(),
                     "' has ", lanes_.size(), " nets, weights has ", weights.size());
    }
    for (std::vector<double>& c : charges) {
        c.assign(stream.size() - 1, 0.0);
    }
    if (counts != nullptr) {
        counts->assign(stream.size() - 1, 0);
    }
    std::size_t base = 0;
    while (base + 1 < stream.size()) {
        const std::size_t len =
            std::min<std::size_t>(kLanes, stream.size() - base);
        settle(stream.subspan(base, len));
        const std::size_t pairs = len - 1;
        const std::uint64_t pair_mask =
            pairs >= 64 ? kAllLanes : (std::uint64_t{1} << pairs) - 1;
        for (std::size_t net = 0; net < lanes_.size(); ++net) {
            const std::uint64_t word = lanes_[net];
            const std::uint64_t net_diff = (word ^ (word >> 1)) & pair_mask;
            if (net_diff == 0) {
                continue;
            }
            // Nets iterate in ascending order and each set accumulates in
            // that order — per set, the exact += sequence of a single-set
            // count_weighted_toggles call (deterministic floating point).
            for (std::size_t k = 0; k < weight_sets.size(); ++k) {
                const double w = weight_sets[k][net];
                std::vector<double>& out = charges[k];
                std::uint64_t diff = net_diff;
                while (diff != 0) {
                    out[base + static_cast<std::size_t>(std::countr_zero(diff))] += w;
                    diff &= diff - 1;
                }
            }
            if (counts != nullptr) {
                std::uint64_t diff = net_diff;
                while (diff != 0) {
                    (*counts)[base + static_cast<std::size_t>(std::countr_zero(diff))] += 1;
                    diff &= diff - 1;
                }
            }
        }
        base += pairs;
    }
}

void BatchedEvaluator::settle_pairs(std::span<const BitVec> us,
                                    std::span<const BitVec> vs)
{
    HDPM_REQUIRE(us.size() == vs.size(), "pair batch sides disagree: ", us.size(),
                 " u-vectors vs ", vs.size(), " v-vectors");
    settle(us);
    saved_.assign(lanes_.begin(), lanes_.end());
    settle(vs);
    pair_diff_.resize(lanes_.size());
    pair_popcnt_.resize(lanes_.size());
    for (std::size_t net = 0; net < lanes_.size(); ++net) {
        pair_diff_[net] = saved_[net] ^ lanes_[net];
    }
    // Per-net popcounts through the runtime-dispatched SIMD kernels —
    // this is the dominant counting step of the emulation backend.
    util::cpu::kernels().xor_popcnt(saved_.data(), lanes_.data(), lanes_.size(),
                                    pair_popcnt_.data());
}

void BatchedEvaluator::weighted_pair_charges(std::span<const double> weights,
                                             std::span<double> out) const
{
    HDPM_REQUIRE(weights.size() == pair_diff_.size(), "netlist '", netlist_->name(),
                 "' has ", pair_diff_.size(), " nets, weights has ", weights.size());
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t net = 0; net < pair_diff_.size(); ++net) {
        std::uint64_t diff = pair_diff_[net];
        if (diff == 0) {
            continue;
        }
        const double w = weights[net];
        while (diff != 0) {
            out[static_cast<std::size_t>(std::countr_zero(diff))] += w;
            diff &= diff - 1;
        }
    }
}

} // namespace hdpm::sim
