#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/event_sim.hpp"

namespace hdpm::sim {

/// Electrical cost of one D-flip-flop in a pipeline register bank.
struct DffCosts {
    /// Charge drawn by the clock network per flop per cycle [fC]
    /// (always paid unless the bank is clock-gated this cycle).
    double clock_charge_fc = 8.0;

    /// Additional charge when the stored value toggles [fC].
    double data_toggle_charge_fc = 20.0;

    /// Per-bank clock gating: when enabled, a bank whose captured value is
    /// unchanged pays only the gating overhead instead of the full clock
    /// load — the optimization the data-dependent register share motivates.
    bool clock_gating = false;

    /// Charge of the gating logic itself, per bank per cycle [fC].
    double gating_overhead_fc = 12.0;
};

/// Per-cycle result of a pipeline simulation.
struct PipelineCycleResult {
    double combinational_fc = 0.0;
    double register_fc = 0.0;
    [[nodiscard]] double total_fc() const noexcept
    {
        return combinational_fc + register_fc;
    }
};

/// Aggregate result of a pipeline stream simulation.
struct PipelinePowerResult {
    std::vector<PipelineCycleResult> cycles;
    std::vector<double> per_stage_fc;  ///< combinational charge per stage
    double combinational_fc = 0.0;
    double register_fc = 0.0;

    [[nodiscard]] double total_fc() const noexcept
    {
        return combinational_fc + register_fc;
    }
    [[nodiscard]] double mean_total_fc() const noexcept
    {
        return cycles.empty() ? 0.0 : total_fc() / static_cast<double>(cycles.size());
    }
};

/// Cycle-accurate simulation of a linear pipeline of combinational stages
/// separated by register banks — the step from the paper's isolated
/// combinational modules to a registered datapath:
///
///   in ─[bank0]─ stage0 ─[bank1]─ stage1 ─ ... ─[bankN-1]─ stageN-1 → out
///
/// Every bank captures on the same clock edge; stage k therefore processes
/// the value that entered bank k on the previous edge (latency = number of
/// stages). Power per cycle = Σ stage combinational charge (event-driven,
/// glitch-aware) + Σ register charge (clock load + data toggles).
///
/// Stage k's input width must equal stage k-1's output width; the netlists
/// must outlive the simulator.
class PipelineSimulator {
public:
    PipelineSimulator(std::vector<const netlist::Netlist*> stages,
                      const gate::TechLibrary& library, DffCosts dff_costs = {},
                      EventSimOptions sim_options = {});

    /// Number of pipeline stages (= latency in cycles).
    [[nodiscard]] std::size_t depth() const noexcept { return stages_.size(); }

    /// Reset all register banks to zero and settle every stage.
    void reset();

    /// Advance one clock cycle with the given new primary input vector;
    /// returns this cycle's charge breakdown.
    PipelineCycleResult step(const util::BitVec& input);

    /// Pipeline output after the last step (stage N-1's registered-stage
    /// combinational outputs).
    [[nodiscard]] util::BitVec outputs() const;

    /// Simulate a whole stream (reset + one step per pattern).
    [[nodiscard]] PipelinePowerResult run(std::span<const util::BitVec> inputs);

private:
    std::vector<const netlist::Netlist*> stages_;
    std::vector<std::unique_ptr<EventSimulator>> sims_;
    std::vector<util::BitVec> banks_; ///< register bank contents, banks_[k] feeds stage k
    DffCosts dff_costs_;
    std::vector<double> per_stage_fc_;
};

} // namespace hdpm::sim
