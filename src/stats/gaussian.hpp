#pragma once

namespace hdpm::stats {

/// Standard normal density φ(x).
[[nodiscard]] double normal_pdf(double x);

/// Standard normal CDF Φ(x).
[[nodiscard]] double normal_cdf(double x);

/// Bivariate standard normal CDF P(X ≤ h, Y ≤ k) for correlation rho,
/// computed from the classic single-integral (Plackett) representation
///   Φ₂(h,k,ρ) = Φ(h)Φ(k) + (1/2π) ∫₀^{asin ρ} exp(−(h²+k²−2hk·sinθ)/(2cos²θ)) dθ
/// with Gauss–Legendre quadrature. Accurate to ~1e-10 for |rho| ≤ 1.
[[nodiscard]] double bivariate_normal_cdf(double h, double k, double rho);

/// Mean of |X| for X ~ N(mu, sigma²) (folded normal).
[[nodiscard]] double folded_normal_mean(double mu, double sigma);

/// Variance of |X| for X ~ N(mu, sigma²).
[[nodiscard]] double folded_normal_variance(double mu, double sigma);

/// Probability that a stationary Gaussian process with mean mu, standard
/// deviation sigma and lag-1 autocorrelation rho changes sign between two
/// consecutive samples: P(X_t ≥ 0, X_{t+1} < 0) + P(X_t < 0, X_{t+1} ≥ 0).
/// For mu = 0 this reduces to the classic arccos(rho)/π.
///
/// This is the sign-region transition activity t_sign of the data model
/// (section 6 of the paper): in two's complement all sign bits of a word
/// toggle together exactly when the value changes sign.
[[nodiscard]] double sign_flip_probability(double mu, double sigma, double rho);

} // namespace hdpm::stats
