#pragma once

#include <vector>

#include "streams/bitstats.hpp"
#include "streams/wordstats.hpp"

namespace hdpm::stats {

/// Dual-bit-type break points of a data word (section 6.1, fig. 5):
/// bits below bp0 behave like uncorrelated random bits (t = 0.5), bits
/// above bp1 are sign bits that toggle together, bits in between are
/// linearly interpolated. Real-valued; positions are 0-indexed from the LSB.
struct Breakpoints {
    double bp0 = 0.0;
    double bp1 = 0.0;
};

/// Landman-style empirical break points from word-level statistics:
///   bp0 ≈ log2 σ,   bp1 ≈ log2(|µ| + 3σ) + 1,
/// both clamped into [0, m]. For near-constant streams bp0 collapses to 0.
[[nodiscard]] Breakpoints compute_breakpoints(const streams::WordStats& stats);

/// The reduced two-region view of a word (section 6.3): the intermediate
/// region is split evenly between the random and sign regions, so
/// n_rand + n_sign = m. t_sign is the joint toggle probability of the sign
/// region under the Gaussian AR model.
struct WordRegions {
    int n_rand = 0;
    int n_sign = 0;
    double t_sign = 0.0;
};

/// Reduce a word to its two-region form.
[[nodiscard]] WordRegions compute_regions(const streams::WordStats& stats);

/// Average Hamming distance of consecutive words predicted by the
/// three-region data model (paper eq. 11):
///   Hd_avg = 0.5·n_rand0 + t_corr·n_corr + t_sign·n_sign0
/// with t_corr linearly interpolated between 0.5 and t_sign.
[[nodiscard]] double analytic_average_hd(const streams::WordStats& stats);

/// Analytic Hamming-distance distribution of a word-level data stream.
struct HdDistribution {
    /// p[i] = P(Hd = i), i = 0..m; sums to 1.
    std::vector<double> p;

    /// The regions the distribution was assembled from.
    WordRegions regions;

    /// Expected Hamming distance Σ i·p[i].
    [[nodiscard]] double mean() const noexcept;
};

/// Compute the Hd distribution from word-level statistics via the region
/// convolution of paper eqs. 12–18: a binomial(n_rand, 0.5) part combined
/// with the two-point all-or-nothing sign part.
[[nodiscard]] HdDistribution compute_hd_distribution(const streams::WordStats& stats);

/// Hd distribution of the concatenation of independent words (e.g. the two
/// operands of an adder): the convolution of the per-operand distributions
/// (the paper's closing remark of section 6.3).
[[nodiscard]] HdDistribution combine_independent(const HdDistribution& a,
                                                 const HdDistribution& b);

/// Hd distribution for a chosen number representation (extension along
/// ref [10]: "handling of different number representations").
///
/// Sign-magnitude differs structurally from two's complement: there is a
/// single sign bit (toggling with t_sign), the magnitude LSBs stay random,
/// and the magnitude MSBs above the |X|-range are *quiet zeros* rather
/// than a jointly-toggling sign region — which is exactly why
/// sign-magnitude encoding lowers switching activity for strongly
/// correlated zero-mean signals.
[[nodiscard]] HdDistribution compute_hd_distribution(const streams::WordStats& stats,
                                                     streams::NumberFormat format);

/// Analytic average Hd under a number representation.
[[nodiscard]] double analytic_average_hd(const streams::WordStats& stats,
                                         streams::NumberFormat format);

/// Per-bit signal/transition probabilities predicted by the three-region
/// data model (fig. 5): bits below BP0 are uniform random (p = t = 1/2),
/// bits above BP1 behave like sign bits (p = P(x < 0), t = t_sign), bits
/// in between interpolate linearly — the exact per-bit figures Landman's
/// flow feeds into probabilistic gate-level analysis
/// (sim::ProbabilisticAnalyzer accepts them directly).
struct BitActivityModel {
    double signal_prob = 0.0;
    double transition_prob = 0.0;
};
[[nodiscard]] std::vector<BitActivityModel> analytic_bit_activities(
    const streams::WordStats& stats);

} // namespace hdpm::stats
