#include "stats/datamodel.hpp"

#include <algorithm>
#include <cmath>

#include "stats/gaussian.hpp"
#include "util/error.hpp"

namespace hdpm::stats {

using streams::WordStats;

Breakpoints compute_breakpoints(const WordStats& stats)
{
    HDPM_REQUIRE(stats.width >= 1, "word stats carry no width");
    const double m = static_cast<double>(stats.width);
    const double sigma = stats.stddev();

    Breakpoints bp;
    if (sigma < 1e-12) {
        // A (near-)constant stream has no random region and never toggles:
        // the whole word behaves like a quiet sign region (t_sign = 0).
        return bp; // bp0 = bp1 = 0
    }
    bp.bp0 = sigma > 1.0 ? std::log2(sigma) : 0.0;
    const double magnitude = std::abs(stats.mean) + 3.0 * sigma;
    bp.bp1 = magnitude > 1.0 ? std::log2(magnitude) + 1.0 : 1.0;

    bp.bp0 = std::clamp(bp.bp0, 0.0, m);
    bp.bp1 = std::clamp(bp.bp1, bp.bp0, m);
    return bp;
}

WordRegions compute_regions(const WordStats& stats)
{
    const Breakpoints bp = compute_breakpoints(stats);
    const int m = stats.width;

    // Shift the break points together by half the intermediate region
    // (section 6.3): the average activity is preserved and only two
    // regions remain.
    const double n_rand_real = bp.bp0 + 0.5 * (bp.bp1 - bp.bp0);
    WordRegions regions;
    regions.n_sign = std::clamp(
        static_cast<int>(std::lround(static_cast<double>(m) - n_rand_real)), 0, m);
    regions.n_rand = m - regions.n_sign;
    regions.t_sign = sign_flip_probability(stats.mean, stats.stddev(), stats.rho);
    return regions;
}

double analytic_average_hd(const WordStats& stats)
{
    const Breakpoints bp = compute_breakpoints(stats);
    const double m = static_cast<double>(stats.width);
    const double t_sign = sign_flip_probability(stats.mean, stats.stddev(), stats.rho);
    const double t_corr = 0.5 * (0.5 + t_sign); // linear interpolation midpoint
    const double n_rand0 = bp.bp0;
    const double n_corr = bp.bp1 - bp.bp0;
    const double n_sign0 = m - bp.bp1;
    return 0.5 * n_rand0 + t_corr * n_corr + t_sign * n_sign0;
}

double HdDistribution::mean() const noexcept
{
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        acc += static_cast<double>(i) * p[i];
    }
    return acc;
}

namespace {

/// Binomial(n, 1/2) pmf as a dense vector (n ≤ 64 here, doubles suffice).
std::vector<double> binomial_half(int n)
{
    std::vector<double> pmf(static_cast<std::size_t>(n) + 1);
    // C(n, i)·2^-n computed multiplicatively to stay in range.
    double c = std::pow(0.5, n);
    for (int i = 0; i <= n; ++i) {
        pmf[static_cast<std::size_t>(i)] = c;
        c = c * static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    return pmf;
}

} // namespace

HdDistribution compute_hd_distribution(const WordStats& stats)
{
    const WordRegions regions = compute_regions(stats);
    const int m = stats.width;

    const std::vector<double> p_rand = binomial_half(regions.n_rand);
    auto rand_at = [&](int i) {
        return (i >= 0 && i <= regions.n_rand) ? p_rand[static_cast<std::size_t>(i)] : 0.0;
    };

    HdDistribution dist;
    dist.regions = regions;
    dist.p.assign(static_cast<std::size_t>(m) + 1, 0.0);
    const double p_sign_quiet = 1.0 - regions.t_sign;
    for (int i = 0; i <= m; ++i) {
        double p = 0.0;
        if (i <= regions.n_rand) { // δ_SS̄: no sign-region event (eq. 15/18)
            p += rand_at(i) * p_sign_quiet;
        }
        if (i >= regions.n_sign) { // δ_SS: the whole sign region toggled (eq. 17/18)
            p += rand_at(i - regions.n_sign) * regions.t_sign;
        }
        dist.p[static_cast<std::size_t>(i)] = p;
    }
    return dist;
}

HdDistribution compute_hd_distribution(const WordStats& stats,
                                       streams::NumberFormat format)
{
    if (format == streams::NumberFormat::TwosComplement) {
        return compute_hd_distribution(stats);
    }

    // Sign-magnitude: one sign bit toggling with t_sign; magnitude bits
    // follow the folded-|X| statistics — a random LSB region plus quiet
    // (constant-zero) MSBs. Quiet bits never switch, so the distribution
    // is a binomial over the random region, shifted by one when the sign
    // flips.
    const int m = stats.width;
    HDPM_REQUIRE(m >= 2, "sign-magnitude needs at least two bits");
    const double sigma = stats.stddev();
    const double t_sign = sign_flip_probability(stats.mean, sigma, stats.rho);

    const double mag_mean = folded_normal_mean(stats.mean, sigma);
    const double mag_sigma = std::sqrt(folded_normal_variance(stats.mean, sigma));

    const double magnitude_bits = static_cast<double>(m - 1);
    double bp0 = mag_sigma > 1.0 ? std::log2(mag_sigma) : 0.0;
    const double reach = mag_mean + 3.0 * mag_sigma;
    double bp1 = reach > 1.0 ? std::log2(reach) + 1.0 : 1.0;
    bp0 = std::clamp(bp0, 0.0, magnitude_bits);
    bp1 = std::clamp(bp1, bp0, magnitude_bits);
    const int n_rand = std::clamp(
        static_cast<int>(std::lround(bp0 + 0.5 * (bp1 - bp0))), 0, m - 1);

    const std::vector<double> p_rand = binomial_half(n_rand);
    auto rand_at = [&](int i) {
        return (i >= 0 && i <= n_rand) ? p_rand[static_cast<std::size_t>(i)] : 0.0;
    };

    HdDistribution dist;
    dist.regions.n_rand = n_rand;
    dist.regions.n_sign = 1;
    dist.regions.t_sign = t_sign;
    dist.p.assign(static_cast<std::size_t>(m) + 1, 0.0);
    for (int i = 0; i <= m; ++i) {
        dist.p[static_cast<std::size_t>(i)] =
            (1.0 - t_sign) * rand_at(i) + t_sign * rand_at(i - 1);
    }
    return dist;
}

double analytic_average_hd(const WordStats& stats, streams::NumberFormat format)
{
    if (format == streams::NumberFormat::TwosComplement) {
        return analytic_average_hd(stats);
    }
    return compute_hd_distribution(stats, format).mean();
}

std::vector<BitActivityModel> analytic_bit_activities(const WordStats& stats)
{
    const Breakpoints bp = compute_breakpoints(stats);
    const int m = stats.width;
    const double sigma = stats.stddev();
    const double t_sign = sign_flip_probability(stats.mean, sigma, stats.rho);
    const double p_sign = sigma > 0.0 ? normal_cdf(-stats.mean / sigma)
                                      : (stats.mean < 0.0 ? 1.0 : 0.0);

    std::vector<BitActivityModel> bits(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        const double position = static_cast<double>(i);
        BitActivityModel bit;
        if (position < bp.bp0) {
            bit.signal_prob = 0.5;
            bit.transition_prob = 0.5;
        } else if (position >= bp.bp1) {
            bit.signal_prob = p_sign;
            bit.transition_prob = t_sign;
        } else {
            // Linear interpolation across the intermediate region
            // (Landman's approximation, section 6.1).
            const double span = bp.bp1 - bp.bp0;
            const double f = span > 0.0 ? (position - bp.bp0) / span : 1.0;
            bit.signal_prob = 0.5 + f * (p_sign - 0.5);
            bit.transition_prob = 0.5 + f * (t_sign - 0.5);
        }
        bits[static_cast<std::size_t>(i)] = bit;
    }
    return bits;
}

HdDistribution combine_independent(const HdDistribution& a, const HdDistribution& b)
{
    HdDistribution out;
    out.regions.n_rand = a.regions.n_rand + b.regions.n_rand;
    out.regions.n_sign = a.regions.n_sign + b.regions.n_sign;
    out.regions.t_sign = 0.5 * (a.regions.t_sign + b.regions.t_sign);
    out.p.assign(a.p.size() + b.p.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.p.size(); ++i) {
        if (a.p[i] == 0.0) {
            continue;
        }
        for (std::size_t j = 0; j < b.p.size(); ++j) {
            out.p[i + j] += a.p[i] * b.p[j];
        }
    }
    return out;
}

} // namespace hdpm::stats
