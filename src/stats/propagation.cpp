#include "stats/propagation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/gaussian.hpp"
#include "util/error.hpp"

namespace hdpm::stats {

using streams::WordStats;

namespace {

double safe_rho(double cov_lag1, double variance)
{
    if (variance <= 0.0) {
        return 0.0;
    }
    return std::clamp(cov_lag1 / variance, -1.0, 1.0);
}

WordStats make(double mean, double variance, double rho, int width, std::size_t count)
{
    WordStats s;
    s.mean = mean;
    s.variance = std::max(variance, 0.0);
    s.rho = std::clamp(rho, -1.0, 1.0);
    s.width = width;
    s.count = count;
    return s;
}

} // namespace

WordStats propagate_add(const WordStats& a, const WordStats& b, int out_width)
{
    HDPM_REQUIRE(out_width >= 1, "bad output width");
    const double variance = a.variance + b.variance;
    const double cov = a.rho * a.variance + b.rho * b.variance;
    return make(a.mean + b.mean, variance, safe_rho(cov, variance), out_width,
                std::min(a.count, b.count));
}

WordStats propagate_sub(const WordStats& a, const WordStats& b, int out_width)
{
    HDPM_REQUIRE(out_width >= 1, "bad output width");
    const double variance = a.variance + b.variance;
    const double cov = a.rho * a.variance + b.rho * b.variance;
    return make(a.mean - b.mean, variance, safe_rho(cov, variance), out_width,
                std::min(a.count, b.count));
}

WordStats propagate_const_mult(const WordStats& a, double c, int out_width)
{
    HDPM_REQUIRE(out_width >= 1, "bad output width");
    return make(c * a.mean, c * c * a.variance, a.rho, out_width, a.count);
}

WordStats propagate_mult(const WordStats& a, const WordStats& b, int out_width)
{
    HDPM_REQUIRE(out_width >= 1, "bad output width");
    // Exact moments of a product of independent streams.
    const double mean = a.mean * b.mean;
    const double variance = a.variance * b.variance + a.mean * a.mean * b.variance +
                            b.mean * b.mean * a.variance;
    // Lag-1 covariance of X_t·Y_t: for independent (jointly stationary)
    // streams Cov(X₀Y₀, X₁Y₁) = CovX·CovY + µx²·CovY + µy²·CovX.
    const double cov_x = a.rho * a.variance;
    const double cov_y = b.rho * b.variance;
    const double cov = cov_x * cov_y + a.mean * a.mean * cov_y + b.mean * b.mean * cov_x;
    return make(mean, variance, safe_rho(cov, variance), out_width,
                std::min(a.count, b.count));
}

WordStats propagate_delay(const WordStats& a)
{
    return a;
}

WordStats propagate_absval(const WordStats& a, int out_width)
{
    HDPM_REQUIRE(out_width >= 1, "bad output width");
    const double sigma = std::sqrt(a.variance);
    const double mean = folded_normal_mean(a.mean, sigma);
    const double variance = folded_normal_variance(a.mean, sigma);

    // Zero-mean Gaussian |X| lag-1 correlation; clamped approximation
    // elsewhere (exact when µ = 0).
    const double rho = std::clamp(a.rho, -1.0, 1.0);
    constexpr double two_over_pi = 2.0 / std::numbers::pi;
    const double numerator =
        two_over_pi * (rho * std::asin(rho) + std::sqrt(1.0 - rho * rho)) - two_over_pi;
    const double rho_abs = numerator / (1.0 - two_over_pi);

    return make(mean, variance, rho_abs, out_width, a.count);
}

WordStats propagate_mux(const WordStats& a, const WordStats& b, double sel_prob_a,
                        int out_width)
{
    HDPM_REQUIRE(out_width >= 1, "bad output width");
    HDPM_REQUIRE(sel_prob_a >= 0.0 && sel_prob_a <= 1.0, "selection probability ",
                 sel_prob_a, " out of range");
    const double p = sel_prob_a;
    const double q = 1.0 - p;
    const double mean = p * a.mean + q * b.mean;
    const double dm = a.mean - b.mean;
    const double variance = p * a.variance + q * b.variance + p * q * dm * dm;
    const double cov = p * a.rho * a.variance + q * b.rho * b.variance;
    return make(mean, variance, safe_rho(cov, variance), out_width,
                std::min(a.count, b.count));
}

} // namespace hdpm::stats
