#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/propagation.hpp"

namespace hdpm::stats {

/// A small dataflow graph that propagates word-level statistics from the
/// primary inputs through datapath operators — the design-level use of the
/// propagation rules (refs [9, 10] of the paper): annotate every node of an
/// architecture with (µ, σ², ρ) so each component's power can be estimated
/// from its input statistics without any simulation.
///
/// Statistics are computed eagerly as nodes are created, so the graph is
/// always fully annotated; queries are O(1).
class DataflowGraph {
public:
    using NodeId = std::size_t;

    /// A primary input with measured or assumed statistics.
    NodeId input(streams::WordStats stats, std::string name = {});

    /// A constant word (σ = 0, never toggles).
    NodeId constant(double value, int width, std::string name = {});

    /// a + b.
    NodeId add(NodeId a, NodeId b, int out_width, std::string name = {});

    /// a - b.
    NodeId sub(NodeId a, NodeId b, int out_width, std::string name = {});

    /// a · b (independent streams).
    NodeId mult(NodeId a, NodeId b, int out_width, std::string name = {});

    /// a · c for a compile-time constant c.
    NodeId const_mult(NodeId a, double c, int out_width, std::string name = {});

    /// A register (statistics unchanged).
    NodeId delay(NodeId a, std::string name = {});

    /// 2:1 multiplexer selecting a with probability @p sel_prob_a.
    NodeId mux(NodeId a, NodeId b, double sel_prob_a, int out_width,
               std::string name = {});

    /// Word-level statistics of a node.
    [[nodiscard]] const streams::WordStats& stats_of(NodeId node) const;

    /// Node name ("#<id>" if unnamed).
    [[nodiscard]] std::string name_of(NodeId node) const;

    /// Number of nodes.
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

private:
    struct Node {
        streams::WordStats stats;
        std::string name;
    };

    NodeId push(streams::WordStats stats, std::string name);
    void check(NodeId node) const;

    std::vector<Node> nodes_;
};

} // namespace hdpm::stats
