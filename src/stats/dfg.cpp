#include "stats/dfg.hpp"

#include "util/error.hpp"

namespace hdpm::stats {

using streams::WordStats;

DataflowGraph::NodeId DataflowGraph::push(WordStats stats, std::string name)
{
    nodes_.push_back(Node{stats, std::move(name)});
    return nodes_.size() - 1;
}

void DataflowGraph::check(NodeId node) const
{
    HDPM_REQUIRE(node < nodes_.size(), "node ", node, " does not exist");
}

DataflowGraph::NodeId DataflowGraph::input(WordStats stats, std::string name)
{
    HDPM_REQUIRE(stats.width >= 1, "input stats need a width");
    return push(stats, std::move(name));
}

DataflowGraph::NodeId DataflowGraph::constant(double value, int width, std::string name)
{
    HDPM_REQUIRE(width >= 1, "bad constant width");
    WordStats stats;
    stats.mean = value;
    stats.variance = 0.0;
    stats.rho = 1.0;
    stats.width = width;
    return push(stats, std::move(name));
}

DataflowGraph::NodeId DataflowGraph::add(NodeId a, NodeId b, int out_width,
                                         std::string name)
{
    check(a);
    check(b);
    return push(propagate_add(nodes_[a].stats, nodes_[b].stats, out_width),
                std::move(name));
}

DataflowGraph::NodeId DataflowGraph::sub(NodeId a, NodeId b, int out_width,
                                         std::string name)
{
    check(a);
    check(b);
    return push(propagate_sub(nodes_[a].stats, nodes_[b].stats, out_width),
                std::move(name));
}

DataflowGraph::NodeId DataflowGraph::mult(NodeId a, NodeId b, int out_width,
                                          std::string name)
{
    check(a);
    check(b);
    return push(propagate_mult(nodes_[a].stats, nodes_[b].stats, out_width),
                std::move(name));
}

DataflowGraph::NodeId DataflowGraph::const_mult(NodeId a, double c, int out_width,
                                                std::string name)
{
    check(a);
    return push(propagate_const_mult(nodes_[a].stats, c, out_width), std::move(name));
}

DataflowGraph::NodeId DataflowGraph::delay(NodeId a, std::string name)
{
    check(a);
    return push(propagate_delay(nodes_[a].stats), std::move(name));
}

DataflowGraph::NodeId DataflowGraph::mux(NodeId a, NodeId b, double sel_prob_a,
                                         int out_width, std::string name)
{
    check(a);
    check(b);
    return push(propagate_mux(nodes_[a].stats, nodes_[b].stats, sel_prob_a, out_width),
                std::move(name));
}

const WordStats& DataflowGraph::stats_of(NodeId node) const
{
    check(node);
    return nodes_[node].stats;
}

std::string DataflowGraph::name_of(NodeId node) const
{
    check(node);
    return nodes_[node].name.empty() ? "#" + std::to_string(node) : nodes_[node].name;
}

} // namespace hdpm::stats
