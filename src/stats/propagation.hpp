#pragma once

#include "streams/wordstats.hpp"

namespace hdpm::stats {

/// Propagation of word-level statistics (µ, σ², ρ) through datapath
/// operators, in the spirit of Landman's propagation technique [9] and its
/// refinement by Ramprasad et al. [10]: instead of simulating a whole
/// design, word statistics are pushed from the primary inputs through the
/// dataflow graph and each module's power is then estimated from the
/// analytic Hd-distribution at its inputs.
///
/// Assumptions (documented approximations): distinct input streams are
/// mutually independent; processes are near-Gaussian so second-order
/// statistics suffice; lag-1 autocorrelation composes as indicated below.

/// Sum of two independent streams: µ = µa+µb, σ² = σa²+σb²,
/// ρ = (ρa·σa² + ρb·σb²)/(σa²+σb²). @p out_width sets the result width.
[[nodiscard]] streams::WordStats propagate_add(const streams::WordStats& a,
                                               const streams::WordStats& b,
                                               int out_width);

/// Difference of two independent streams (same second-order behaviour as
/// the sum, with µ = µa−µb).
[[nodiscard]] streams::WordStats propagate_sub(const streams::WordStats& a,
                                               const streams::WordStats& b,
                                               int out_width);

/// Multiplication by a constant c: µ = c·µ, σ² = c²·σ², ρ unchanged.
[[nodiscard]] streams::WordStats propagate_const_mult(const streams::WordStats& a,
                                                      double c, int out_width);

/// Product of two independent streams; exact second moments, lag-1
/// correlation from the Gaussian product formula.
[[nodiscard]] streams::WordStats propagate_mult(const streams::WordStats& a,
                                                const streams::WordStats& b,
                                                int out_width);

/// A register/delay: statistics are unchanged (stationarity).
[[nodiscard]] streams::WordStats propagate_delay(const streams::WordStats& a);

/// Absolute value |a|: folded-normal moments; lag-1 correlation from the
/// zero-mean Gaussian identity
///   corr(|X|,|Y|) = [2/π·(ρ·asin ρ + √(1−ρ²)) − 2/π] / (1 − 2/π),
/// used as an approximation for non-zero means as well.
[[nodiscard]] streams::WordStats propagate_absval(const streams::WordStats& a,
                                                  int out_width);

/// A 2:1 multiplexer that selects stream a with probability @p sel_prob_a
/// (selection independent of the data): mixture mean/variance are exact,
/// ρ is the variance-weighted approximation of [10].
[[nodiscard]] streams::WordStats propagate_mux(const streams::WordStats& a,
                                               const streams::WordStats& b,
                                               double sel_prob_a, int out_width);

} // namespace hdpm::stats
