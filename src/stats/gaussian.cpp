#include "stats/gaussian.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace hdpm::stats {

namespace {

constexpr int kQuadraturePoints = 32;

struct Quadrature {
    std::array<double, kQuadraturePoints> nodes{};
    std::array<double, kQuadraturePoints> weights{};
};

/// Gauss–Legendre nodes/weights on [-1, 1] via Newton iteration on the
/// Legendre polynomial (standard Golub-free construction; n is small and
/// this runs once).
Quadrature make_gauss_legendre()
{
    Quadrature q;
    const int n = kQuadraturePoints;
    for (int i = 0; i < (n + 1) / 2; ++i) {
        // Chebyshev-like initial guess for the i-th positive root.
        double x = std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                            (static_cast<double>(n) + 0.5));
        double dp = 0.0;
        for (int iter = 0; iter < 100; ++iter) {
            // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
            double p0 = 1.0;
            double p1 = x;
            for (int k = 2; k <= n; ++k) {
                const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) /
                                  static_cast<double>(k);
                p0 = p1;
                p1 = pk;
            }
            dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
            const double dx = p1 / dp;
            x -= dx;
            if (std::abs(dx) < 1e-15) {
                break;
            }
        }
        const double w = 2.0 / ((1.0 - x * x) * dp * dp);
        q.nodes[static_cast<std::size_t>(i)] = -x;
        q.weights[static_cast<std::size_t>(i)] = w;
        q.nodes[static_cast<std::size_t>(n - 1 - i)] = x;
        q.weights[static_cast<std::size_t>(n - 1 - i)] = w;
    }
    return q;
}

const Quadrature& quadrature()
{
    static const Quadrature q = make_gauss_legendre();
    return q;
}

} // namespace

double normal_pdf(double x)
{
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x)
{
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double bivariate_normal_cdf(double h, double k, double rho)
{
    HDPM_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation out of range: ", rho);

    // Plackett's identity integrated over theta in [0, asin(rho)]; the
    // substitution r = sin θ removes the 1/sqrt(1-r²) singularity.
    const double upper = std::asin(rho);
    const double half = 0.5 * upper;
    const Quadrature& q = quadrature();
    double integral = 0.0;
    for (std::size_t i = 0; i < q.nodes.size(); ++i) {
        const double theta = half * (1.0 + q.nodes[i]);
        const double s = std::sin(theta);
        const double c2 = std::max(1.0 - s * s, 1e-300);
        const double expo = -(h * h + k * k - 2.0 * h * k * s) / (2.0 * c2);
        integral += q.weights[i] * std::exp(expo);
    }
    integral *= half; // scale from [-1,1] to [0, upper]

    double p = normal_cdf(h) * normal_cdf(k) + integral / (2.0 * std::numbers::pi);
    if (p < 0.0) {
        p = 0.0;
    }
    if (p > 1.0) {
        p = 1.0;
    }
    return p;
}

double folded_normal_mean(double mu, double sigma)
{
    HDPM_REQUIRE(sigma >= 0.0, "negative sigma");
    if (sigma == 0.0) {
        return std::abs(mu);
    }
    const double h = mu / sigma;
    return sigma * std::sqrt(2.0 / std::numbers::pi) * std::exp(-0.5 * h * h) +
           mu * (1.0 - 2.0 * normal_cdf(-h));
}

double folded_normal_variance(double mu, double sigma)
{
    // E[|X|²] = E[X²] = µ² + σ².
    const double mean = folded_normal_mean(mu, sigma);
    const double var = mu * mu + sigma * sigma - mean * mean;
    return var > 0.0 ? var : 0.0;
}

double sign_flip_probability(double mu, double sigma, double rho)
{
    HDPM_REQUIRE(sigma >= 0.0, "negative sigma");
    if (sigma == 0.0) {
        return 0.0; // a constant never changes sign
    }
    const double h = -mu / sigma; // P(X < 0) = Φ(h)
    const double p_neg = normal_cdf(h);
    const double p_both_neg = bivariate_normal_cdf(h, h, rho);
    double flip = 2.0 * (p_neg - p_both_neg);
    if (flip < 0.0) {
        flip = 0.0;
    }
    if (flip > 1.0) {
        flip = 1.0;
    }
    return flip;
}

} // namespace hdpm::stats
