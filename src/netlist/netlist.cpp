#include "netlist/netlist.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace hdpm::netlist {

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

NetId Netlist::add_net(std::string label)
{
    const auto id = static_cast<NetId>(net_labels_.size());
    net_labels_.push_back(std::move(label));
    drivers_.push_back(kInvalidId);
    is_input_.push_back(0);
    return id;
}

CellId Netlist::add_cell(gate::GateKind kind, std::span<const NetId> inputs, NetId output)
{
    const int arity = gate::gate_num_inputs(kind);
    HDPM_REQUIRE(static_cast<int>(inputs.size()) == arity, "gate ", gate::gate_name(kind),
                 " takes ", arity, " inputs, got ", inputs.size());
    HDPM_REQUIRE(arity <= gate::kMaxGateInputs, "gate ", gate::gate_name(kind),
                 " has ", arity, " inputs but Cell::inputs holds at most ",
                 gate::kMaxGateInputs);
    HDPM_REQUIRE(output < num_nets(), "output net ", output, " does not exist");
    HDPM_REQUIRE(drivers_[output] == kInvalidId, "net ", output, " already driven");
    HDPM_REQUIRE(!is_input_[output], "net ", output, " is a primary input");
    for (const NetId in : inputs) {
        HDPM_REQUIRE(in < num_nets(), "input net ", in, " does not exist");
    }

    Cell cell;
    cell.kind = kind;
    cell.output = output;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        cell.inputs[i] = inputs[i];
    }
    const auto id = static_cast<CellId>(cells_.size());
    cells_.push_back(cell);
    drivers_[output] = id;
    return id;
}

void Netlist::mark_input(NetId net)
{
    HDPM_REQUIRE(net < num_nets(), "net ", net, " does not exist");
    HDPM_REQUIRE(drivers_[net] == kInvalidId, "net ", net, " is driven by a cell");
    if (!is_input_[net]) {
        is_input_[net] = 1;
        primary_inputs_.push_back(net);
    }
}

void Netlist::mark_output(NetId net)
{
    HDPM_REQUIRE(net < num_nets(), "net ", net, " does not exist");
    primary_outputs_.push_back(net);
}

void Netlist::validate() const
{
    for (NetId net = 0; net < num_nets(); ++net) {
        const bool driven = drivers_[net] != kInvalidId;
        const bool input = is_input_[net] != 0;
        HDPM_ASSERT(driven || input, "net ", net, " ('", net_labels_[net],
                    "') is neither driven nor a primary input");
        HDPM_ASSERT(!(driven && input), "net ", net, " is both driven and a primary input");
    }
    for (CellId id = 0; id < cells_.size(); ++id) {
        const Cell& cell = cells_[id];
        HDPM_ASSERT(cell.output < num_nets(), "cell ", id, " output out of range");
        for (const NetId in : cell.input_span()) {
            HDPM_ASSERT(in < num_nets(), "cell ", id, " input out of range");
        }
    }
    // Acyclicity is established by topological_order throwing otherwise.
    (void)topological_order();
}

std::vector<CellId> Netlist::topological_order() const
{
    // Kahn's algorithm on the cell graph.
    std::vector<int> pending(cells_.size(), 0);
    const auto fanout = fanout_table();

    std::vector<CellId> ready;
    for (CellId id = 0; id < cells_.size(); ++id) {
        int deps = 0;
        for (const NetId in : cells_[id].input_span()) {
            if (drivers_[in] != kInvalidId) {
                ++deps;
            }
        }
        pending[id] = deps;
        if (deps == 0) {
            ready.push_back(id);
        }
    }

    std::vector<CellId> order;
    order.reserve(cells_.size());
    while (!ready.empty()) {
        const CellId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (const CellId consumer : fanout[cells_[id].output]) {
            if (--pending[consumer] == 0) {
                ready.push_back(consumer);
            }
        }
    }
    if (order.size() != cells_.size()) {
        throw util::InvariantError("netlist '" + name_ + "' contains a combinational cycle");
    }
    return order;
}

std::vector<std::vector<CellId>> Netlist::fanout_table() const
{
    std::vector<std::vector<CellId>> fanout(num_nets());
    for (CellId id = 0; id < cells_.size(); ++id) {
        for (const NetId in : cells_[id].input_span()) {
            fanout[in].push_back(id);
        }
    }
    // A cell reading the same net on two pins must appear twice (it loads
    // the net twice) — keep duplicates, they are intentional.
    return fanout;
}

NetlistStats Netlist::stats() const
{
    NetlistStats s;
    s.num_cells = cells_.size();
    s.num_nets = num_nets();
    s.num_inputs = primary_inputs_.size();
    s.num_outputs = primary_outputs_.size();
    for (const Cell& cell : cells_) {
        ++s.cells_per_kind[static_cast<std::size_t>(cell.kind)];
    }
    return s;
}

void write_netlist(std::ostream& os, const Netlist& netlist)
{
    os << "netlist " << netlist.name() << '\n';
    os << "nets " << netlist.num_nets() << '\n';
    for (const NetId net : netlist.primary_inputs()) {
        os << "input " << net;
        if (!netlist.net_label(net).empty()) {
            os << ' ' << netlist.net_label(net);
        }
        os << '\n';
    }
    for (const NetId net : netlist.primary_outputs()) {
        os << "output " << net;
        if (!netlist.net_label(net).empty()) {
            os << ' ' << netlist.net_label(net);
        }
        os << '\n';
    }
    for (const Cell& cell : netlist.cells()) {
        os << "cell " << gate::gate_name(cell.kind) << ' ' << cell.output;
        for (const NetId in : cell.input_span()) {
            os << ' ' << in;
        }
        os << '\n';
    }
    os << "end\n";
}

Netlist read_netlist(std::istream& is)
{
    std::string line;
    if (!std::getline(is, line)) {
        HDPM_FAIL("empty netlist stream");
    }
    std::istringstream first{line};
    std::string keyword;
    std::string name;
    first >> keyword >> name;
    if (keyword != "netlist") {
        HDPM_FAIL("expected 'netlist <name>', got '", line, "'");
    }

    Netlist netlist{name};
    bool have_nets = false;
    while (std::getline(is, line)) {
        if (line.empty()) {
            continue;
        }
        std::istringstream ls{line};
        ls >> keyword;
        if (keyword == "end") {
            netlist.validate();
            return netlist;
        }
        if (keyword == "nets") {
            std::size_t count = 0;
            ls >> count;
            for (std::size_t i = 0; i < count; ++i) {
                netlist.add_net();
            }
            have_nets = true;
        } else if (keyword == "input" || keyword == "output") {
            if (!have_nets) {
                HDPM_FAIL("'", keyword, "' before 'nets' line");
            }
            NetId net = kInvalidId;
            ls >> net;
            if (!ls) {
                HDPM_FAIL("malformed line '", line, "'");
            }
            if (keyword == "input") {
                netlist.mark_input(net);
            } else {
                netlist.mark_output(net);
            }
        } else if (keyword == "cell") {
            if (!have_nets) {
                HDPM_FAIL("'cell' before 'nets' line");
            }
            std::string kind_name;
            NetId out = kInvalidId;
            ls >> kind_name >> out;
            if (!ls) {
                HDPM_FAIL("malformed line '", line, "'");
            }
            const gate::GateKind kind = gate::gate_from_name(kind_name);
            std::vector<NetId> inputs;
            NetId in = kInvalidId;
            while (ls >> in) {
                inputs.push_back(in);
            }
            netlist.add_cell(kind, inputs, out);
        } else {
            HDPM_FAIL("unknown netlist directive '", keyword, "'");
        }
    }
    HDPM_FAIL("netlist stream ended without 'end'");
}

} // namespace hdpm::netlist
