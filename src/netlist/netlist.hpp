#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "gatelib/gate.hpp"

namespace hdpm::netlist {

/// Identifier of a net (wire). Nets are dense indices 0..num_nets()-1.
using NetId = std::uint32_t;

/// Identifier of a cell (gate instance). Dense indices 0..num_cells()-1.
using CellId = std::uint32_t;

/// Sentinel for "no net" / "no cell".
inline constexpr std::uint32_t kInvalidId = ~std::uint32_t{0};

/// One gate instance: kind, input nets (only the first
/// gate_num_inputs(kind) entries are meaningful) and the driven output net.
struct Cell {
    gate::GateKind kind{};
    std::array<NetId, gate::kMaxGateInputs> inputs{kInvalidId, kInvalidId, kInvalidId};
    NetId output = kInvalidId;

    /// The used portion of the input array.
    [[nodiscard]] std::span<const NetId> input_span() const noexcept
    {
        return {inputs.data(), static_cast<std::size_t>(gate::gate_num_inputs(kind))};
    }
};

/// Aggregate statistics of a netlist (used by the complexity/regression
/// experiments and the bench reports).
struct NetlistStats {
    std::size_t num_cells = 0;
    std::size_t num_nets = 0;
    std::size_t num_inputs = 0;
    std::size_t num_outputs = 0;
    std::array<std::size_t, gate::kNumGateKinds> cells_per_kind{};
};

/// A flat, purely combinational gate-level netlist.
///
/// Invariants (checked by validate()): every net is driven by exactly one
/// cell or is a primary input; all cell pins reference existing nets; the
/// cell graph is acyclic. Primary outputs may be any driven net.
class Netlist {
public:
    /// Create an empty netlist with the given name.
    explicit Netlist(std::string name = "netlist");

    /// Module name (for reports and serialization).
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Create a new, yet-undriven net. @p label is optional and used only
    /// for diagnostics / serialization.
    NetId add_net(std::string label = {});

    /// Instantiate a gate driving @p output from @p inputs.
    /// The output net must not already have a driver.
    CellId add_cell(gate::GateKind kind, std::span<const NetId> inputs, NetId output);

    /// Declare a net as primary input (must not be driven by a cell).
    void mark_input(NetId net);

    /// Declare a net as primary output (any net).
    void mark_output(NetId net);

    [[nodiscard]] std::size_t num_nets() const noexcept { return net_labels_.size(); }
    [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }
    [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id); }
    [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }
    [[nodiscard]] const std::vector<NetId>& primary_inputs() const noexcept
    {
        return primary_inputs_;
    }
    [[nodiscard]] const std::vector<NetId>& primary_outputs() const noexcept
    {
        return primary_outputs_;
    }
    [[nodiscard]] const std::string& net_label(NetId net) const
    {
        return net_labels_.at(net);
    }

    /// Cell driving @p net, or kInvalidId for primary inputs / floating nets.
    [[nodiscard]] CellId driver(NetId net) const { return drivers_.at(net); }

    /// Check all structural invariants; throws InvariantError on violation.
    void validate() const;

    /// Cells in topological order (inputs before consumers).
    /// Throws InvariantError if the netlist is cyclic.
    [[nodiscard]] std::vector<CellId> topological_order() const;

    /// Consumers of every net: fanout[net] lists the cells with an input
    /// pin attached to the net.
    [[nodiscard]] std::vector<std::vector<CellId>> fanout_table() const;

    /// Aggregate statistics.
    [[nodiscard]] NetlistStats stats() const;

private:
    std::string name_;
    std::vector<Cell> cells_;
    std::vector<std::string> net_labels_;
    std::vector<CellId> drivers_; // per net; kInvalidId if undriven
    std::vector<NetId> primary_inputs_;
    std::vector<NetId> primary_outputs_;
    std::vector<std::uint8_t> is_input_; // per net
};

/// Write the netlist in the library's plain-text structural format.
void write_netlist(std::ostream& os, const Netlist& netlist);

/// Parse a netlist from the plain-text structural format.
/// Throws RuntimeError on malformed input.
[[nodiscard]] Netlist read_netlist(std::istream& is);

} // namespace hdpm::netlist
