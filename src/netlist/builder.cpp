#include "netlist/builder.hpp"

#include "util/error.hpp"

namespace hdpm::netlist {

NetlistBuilder::NetlistBuilder(std::string name) : netlist_(std::move(name)) {}

NetId NetlistBuilder::input(std::string label)
{
    const NetId net = netlist_.add_net(std::move(label));
    netlist_.mark_input(net);
    return net;
}

Bus NetlistBuilder::input_bus(const std::string& label, int width)
{
    HDPM_REQUIRE(width > 0, "bus width must be positive");
    Bus bus;
    bus.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
        bus.push_back(input(label + '[' + std::to_string(i) + ']'));
    }
    return bus;
}

void NetlistBuilder::output(NetId net, std::string label)
{
    (void)label; // labels on output nets would overwrite driver labels; ignore
    netlist_.mark_output(net);
}

void NetlistBuilder::output_bus(const Bus& bus, const std::string& label)
{
    for (std::size_t i = 0; i < bus.size(); ++i) {
        output(bus[i], label + '[' + std::to_string(i) + ']');
    }
}

NetId NetlistBuilder::emit(gate::GateKind kind, std::initializer_list<NetId> inputs)
{
    const NetId out = netlist_.add_net();
    netlist_.add_cell(kind, std::span<const NetId>{inputs.begin(), inputs.size()}, out);
    return out;
}

NetId NetlistBuilder::const0()
{
    if (const0_ == kInvalidId) {
        const0_ = emit(gate::GateKind::Const0, {});
    }
    return const0_;
}

NetId NetlistBuilder::const1()
{
    if (const1_ == kInvalidId) {
        const1_ = emit(gate::GateKind::Const1, {});
    }
    return const1_;
}

NetId NetlistBuilder::buf(NetId a) { return emit(gate::GateKind::Buf, {a}); }
NetId NetlistBuilder::inv(NetId a) { return emit(gate::GateKind::Inv, {a}); }
NetId NetlistBuilder::and2(NetId a, NetId b) { return emit(gate::GateKind::And2, {a, b}); }
NetId NetlistBuilder::nand2(NetId a, NetId b) { return emit(gate::GateKind::Nand2, {a, b}); }
NetId NetlistBuilder::or2(NetId a, NetId b) { return emit(gate::GateKind::Or2, {a, b}); }
NetId NetlistBuilder::nor2(NetId a, NetId b) { return emit(gate::GateKind::Nor2, {a, b}); }
NetId NetlistBuilder::xor2(NetId a, NetId b) { return emit(gate::GateKind::Xor2, {a, b}); }
NetId NetlistBuilder::xnor2(NetId a, NetId b) { return emit(gate::GateKind::Xnor2, {a, b}); }
NetId NetlistBuilder::and3(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::And3, {a, b, c});
}
NetId NetlistBuilder::nand3(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Nand3, {a, b, c});
}
NetId NetlistBuilder::or3(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Or3, {a, b, c});
}
NetId NetlistBuilder::nor3(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Nor3, {a, b, c});
}
NetId NetlistBuilder::xor3(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Xor3, {a, b, c});
}
NetId NetlistBuilder::mux2(NetId d0, NetId d1, NetId sel)
{
    return emit(gate::GateKind::Mux2, {d0, d1, sel});
}
NetId NetlistBuilder::aoi21(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Aoi21, {a, b, c});
}
NetId NetlistBuilder::oai21(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Oai21, {a, b, c});
}
NetId NetlistBuilder::maj3(NetId a, NetId b, NetId c)
{
    return emit(gate::GateKind::Maj3, {a, b, c});
}

NetlistBuilder::AdderBit NetlistBuilder::half_adder(NetId a, NetId b)
{
    return {xor2(a, b), and2(a, b)};
}

NetlistBuilder::AdderBit NetlistBuilder::full_adder(NetId a, NetId b, NetId cin)
{
    const NetId axb = xor2(a, b);
    const NetId sum = xor2(axb, cin);
    const NetId g = and2(a, b);
    const NetId p = and2(axb, cin);
    const NetId carry = or2(g, p);
    return {sum, carry};
}

NetlistBuilder::AdderBit NetlistBuilder::full_adder_compact(NetId a, NetId b, NetId cin)
{
    return {xor3(a, b, cin), maj3(a, b, cin)};
}

NetId NetlistBuilder::or_tree(const Bus& bus)
{
    HDPM_REQUIRE(!bus.empty(), "or_tree over empty bus");
    Bus level = bus;
    while (level.size() > 1) {
        Bus next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(or2(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        level = std::move(next);
    }
    return level.front();
}

NetId NetlistBuilder::and_tree(const Bus& bus)
{
    HDPM_REQUIRE(!bus.empty(), "and_tree over empty bus");
    Bus level = bus;
    while (level.size() > 1) {
        Bus next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(and2(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        level = std::move(next);
    }
    return level.front();
}

Netlist NetlistBuilder::take()
{
    netlist_.validate();
    Netlist out = std::move(netlist_);
    netlist_ = Netlist{out.name()};
    const0_ = kInvalidId;
    const1_ = kInvalidId;
    return out;
}

} // namespace hdpm::netlist
