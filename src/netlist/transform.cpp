#include "netlist/transform.hpp"

#include <array>
#include <optional>

#include "util/error.hpp"

namespace hdpm::netlist {

namespace {

enum class NetState : std::uint8_t { Unknown, Const0, Const1 };

/// Incremental construction state of the folded netlist.
struct FoldContext {
    Netlist out;
    std::vector<NetState> state;    // per old net
    std::vector<NetId> mapped;      // per old net: new net (kInvalidId = not yet)
    NetId const0 = kInvalidId;
    NetId const1 = kInvalidId;

    explicit FoldContext(const Netlist& input)
        : out(input.name()),
          state(input.num_nets(), NetState::Unknown),
          mapped(input.num_nets(), kInvalidId)
    {
    }

    NetId shared_const(bool value)
    {
        NetId& net = value ? const1 : const0;
        if (net == kInvalidId) {
            net = out.add_net(value ? "const1" : "const0");
            const std::array<NetId, 0> no_inputs{};
            out.add_cell(value ? gate::GateKind::Const1 : gate::GateKind::Const0,
                         no_inputs, net);
        }
        return net;
    }

    /// New-netlist net carrying the value of @p old_net.
    NetId resolve(NetId old_net)
    {
        if (state[old_net] == NetState::Const0) {
            return shared_const(false);
        }
        if (state[old_net] == NetState::Const1) {
            return shared_const(true);
        }
        HDPM_ASSERT(mapped[old_net] != kInvalidId, "unresolved net ", old_net);
        return mapped[old_net];
    }
};

} // namespace

Netlist fold_constants(const Netlist& input, TransformStats* stats)
{
    FoldContext ctx{input};

    for (const NetId pi : input.primary_inputs()) {
        const NetId net = ctx.out.add_net(input.net_label(pi));
        ctx.out.mark_input(net);
        ctx.mapped[pi] = net;
    }

    std::size_t folded = 0;
    for (const CellId id : input.topological_order()) {
        const Cell& cell = input.cell(id);
        const auto ins = cell.input_span();

        // Distinct non-constant input nets become the boolean variables;
        // a net wired to several pins is a single variable (so e.g.
        // XOR2(x, x) folds to 0 and MUX2(a, a, s) aliases to a).
        std::vector<NetId> variables; // distinct unknown nets
        std::array<std::size_t, 3> pin_variable{};
        for (std::size_t i = 0; i < ins.size(); ++i) {
            if (ctx.state[ins[i]] != NetState::Unknown) {
                continue;
            }
            std::size_t var = variables.size();
            for (std::size_t v = 0; v < variables.size(); ++v) {
                if (variables[v] == ins[i]) {
                    var = v;
                    break;
                }
            }
            if (var == variables.size()) {
                variables.push_back(ins[i]);
            }
            pin_variable[i] = var;
        }

        // Evaluate the cell over every assignment of the variables.
        const std::size_t combos = std::size_t{1} << variables.size();
        std::vector<std::uint8_t> outputs(combos, 0);
        std::uint8_t in_vals[3] = {0, 0, 0};
        for (std::size_t combo = 0; combo < combos; ++combo) {
            for (std::size_t i = 0; i < ins.size(); ++i) {
                if (ctx.state[ins[i]] == NetState::Unknown) {
                    in_vals[i] =
                        static_cast<std::uint8_t>((combo >> pin_variable[i]) & 1);
                } else {
                    in_vals[i] = ctx.state[ins[i]] == NetState::Const1 ? 1 : 0;
                }
            }
            outputs[combo] =
                gate::gate_eval(cell.kind, {in_vals, ins.size()}) ? 1 : 0;
        }

        // Constant output?
        bool all0 = true;
        bool all1 = true;
        for (const std::uint8_t v : outputs) {
            all0 = all0 && v == 0;
            all1 = all1 && v != 0;
        }
        if (all0 || all1) {
            ctx.state[cell.output] = all1 ? NetState::Const1 : NetState::Const0;
            ++folded;
            continue;
        }

        // Identity or complement of a single variable?
        std::optional<NetId> identity;
        std::optional<NetId> complement;
        for (std::size_t u = 0; u < variables.size(); ++u) {
            bool is_identity = true;
            bool is_complement = true;
            for (std::size_t combo = 0; combo < combos; ++combo) {
                const auto bit = static_cast<std::uint8_t>((combo >> u) & 1);
                is_identity = is_identity && outputs[combo] == bit;
                is_complement = is_complement && outputs[combo] == (bit ^ 1);
            }
            if (is_identity) {
                identity = variables[u];
            }
            if (is_complement) {
                complement = variables[u];
            }
        }
        if (identity) {
            // The output is a wire: alias it to the (new) input net.
            ctx.mapped[cell.output] = ctx.resolve(*identity);
            ++folded;
            continue;
        }
        if (complement) {
            const NetId out_net = ctx.out.add_net(input.net_label(cell.output));
            const std::array<NetId, 1> inv_in = {ctx.resolve(*complement)};
            ctx.out.add_cell(gate::GateKind::Inv, inv_in, out_net);
            ctx.mapped[cell.output] = out_net;
            continue; // replaced, not folded away entirely
        }

        // Keep the cell, rewiring constant inputs to the shared constants.
        const NetId out_net = ctx.out.add_net(input.net_label(cell.output));
        std::vector<NetId> new_ins;
        new_ins.reserve(ins.size());
        for (const NetId in : ins) {
            new_ins.push_back(ctx.resolve(in));
        }
        ctx.out.add_cell(cell.kind, new_ins, out_net);
        ctx.mapped[cell.output] = out_net;
    }

    for (const NetId po : input.primary_outputs()) {
        ctx.out.mark_output(ctx.resolve(po));
    }
    ctx.out.validate();

    if (stats != nullptr) {
        stats->folded_cells += folded;
        stats->removed_cells += input.num_cells() - ctx.out.num_cells();
        stats->removed_nets += input.num_nets() - ctx.out.num_nets();
    }
    return ctx.out;
}

Netlist eliminate_dead_gates(const Netlist& input, TransformStats* stats)
{
    // Reverse reachability from the primary outputs.
    std::vector<std::uint8_t> live_cell(input.num_cells(), 0);
    std::vector<CellId> stack;
    for (const NetId po : input.primary_outputs()) {
        const CellId driver = input.driver(po);
        if (driver != kInvalidId && !live_cell[driver]) {
            live_cell[driver] = 1;
            stack.push_back(driver);
        }
    }
    while (!stack.empty()) {
        const CellId id = stack.back();
        stack.pop_back();
        for (const NetId in : input.cell(id).input_span()) {
            const CellId driver = input.driver(in);
            if (driver != kInvalidId && !live_cell[driver]) {
                live_cell[driver] = 1;
                stack.push_back(driver);
            }
        }
    }

    Netlist out{input.name()};
    std::vector<NetId> mapped(input.num_nets(), kInvalidId);
    for (const NetId pi : input.primary_inputs()) {
        mapped[pi] = out.add_net(input.net_label(pi));
        out.mark_input(mapped[pi]);
    }
    for (const CellId id : input.topological_order()) {
        if (!live_cell[id]) {
            continue;
        }
        const Cell& cell = input.cell(id);
        const NetId out_net = out.add_net(input.net_label(cell.output));
        std::vector<NetId> new_ins;
        for (const NetId in : cell.input_span()) {
            HDPM_ASSERT(mapped[in] != kInvalidId, "live cell reads dead net");
            new_ins.push_back(mapped[in]);
        }
        out.add_cell(cell.kind, new_ins, out_net);
        mapped[cell.output] = out_net;
    }
    for (const NetId po : input.primary_outputs()) {
        HDPM_ASSERT(mapped[po] != kInvalidId, "primary output lost");
        out.mark_output(mapped[po]);
    }
    out.validate();

    if (stats != nullptr) {
        stats->removed_cells += input.num_cells() - out.num_cells();
        stats->removed_nets += input.num_nets() - out.num_nets();
    }
    return out;
}

Netlist cleanup(const Netlist& input, TransformStats* stats)
{
    return eliminate_dead_gates(fold_constants(input, stats), stats);
}

namespace {

/// One buffering sweep; returns true if any buffer was inserted.
bool buffer_pass(const Netlist& input, std::size_t max_fanout, Netlist& out)
{
    const auto fanout = input.fanout_table();

    // Recreate every net (same order → same ids) and mark the IO.
    for (NetId net = 0; net < input.num_nets(); ++net) {
        (void)out.add_net(input.net_label(net));
    }
    for (const NetId pi : input.primary_inputs()) {
        out.mark_input(pi);
    }

    // Plan the consumer-pin regrouping for overloaded nets.
    bool changed = false;
    // For each (cell, pin) the net it should read in the new netlist.
    std::vector<std::array<NetId, 3>> pin_net(input.num_cells());
    for (CellId id = 0; id < input.num_cells(); ++id) {
        const auto ins = input.cell(id).input_span();
        for (std::size_t p = 0; p < ins.size(); ++p) {
            pin_net[id][p] = ins[p];
        }
    }
    std::vector<std::pair<NetId, NetId>> buffers; // (source net, buffer output)
    for (NetId net = 0; net < input.num_nets(); ++net) {
        const std::size_t pins = fanout[net].size();
        if (pins <= max_fanout) {
            continue;
        }
        changed = true;
        // Split consumers into ceil(pins / max_fanout) groups, each behind
        // its own buffer. Walk consumer pins in deterministic order.
        std::size_t index = 0;
        NetId buffer_net = kInvalidId;
        for (const CellId consumer : fanout[net]) {
            const auto ins = input.cell(consumer).input_span();
            for (std::size_t p = 0; p < ins.size(); ++p) {
                if (ins[p] != net || pin_net[consumer][p] != net) {
                    continue;
                }
                if (index % max_fanout == 0) {
                    buffer_net = out.add_net(input.net_label(net) + "_buf");
                    buffers.emplace_back(net, buffer_net);
                }
                pin_net[consumer][p] = buffer_net;
                ++index;
                break; // a cell with the net on two pins is handled pin by pin
            }
        }
    }

    // Emit original cells with remapped pins, then the buffers.
    for (CellId id = 0; id < input.num_cells(); ++id) {
        const Cell& cell = input.cell(id);
        std::vector<NetId> ins;
        for (std::size_t p = 0; p < cell.input_span().size(); ++p) {
            ins.push_back(pin_net[id][p]);
        }
        out.add_cell(cell.kind, ins, cell.output);
    }
    for (const auto& [source, buffer_net] : buffers) {
        const std::array<NetId, 1> ins = {source};
        out.add_cell(gate::GateKind::Buf, ins, buffer_net);
    }
    for (const NetId po : input.primary_outputs()) {
        out.mark_output(po);
    }
    out.validate();
    return changed;
}

} // namespace

Netlist buffer_high_fanout(const Netlist& input, std::size_t max_fanout)
{
    HDPM_REQUIRE(max_fanout >= 2, "max_fanout must be at least 2");
    Netlist current = input;
    // Iterate until fixpoint: buffer outputs can themselves exceed the cap
    // when a net needs more groups than max_fanout (buffer trees).
    for (int round = 0; round < 16; ++round) {
        Netlist next{current.name()};
        if (!buffer_pass(current, max_fanout, next)) {
            break;
        }
        current = std::move(next);
    }
    return current;
}

} // namespace hdpm::netlist
