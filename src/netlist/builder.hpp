#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace hdpm::netlist {

/// A bus is an LSB-first vector of nets.
using Bus = std::vector<NetId>;

/// Convenience layer for constructing netlists gate by gate.
///
/// Every logic helper creates the output net, instantiates the gate and
/// returns the new net, so generator code reads like structural RTL:
///
///     auto sum = b.xor2(b.xor2(a, c), cin);
///
/// Constants are deduplicated (a single CONST0/CONST1 cell per netlist).
class NetlistBuilder {
public:
    explicit NetlistBuilder(std::string name = "netlist");

    /// Create a primary input net.
    NetId input(std::string label = {});

    /// Create a primary input bus of @p width bits (LSB first). Labels are
    /// "<label>[i]".
    Bus input_bus(const std::string& label, int width);

    /// Declare @p net as a primary output.
    void output(NetId net, std::string label = {});

    /// Declare all bits of a bus as primary outputs (LSB first).
    void output_bus(const Bus& bus, const std::string& label);

    NetId const0();
    NetId const1();
    NetId buf(NetId a);
    NetId inv(NetId a);
    NetId and2(NetId a, NetId b);
    NetId nand2(NetId a, NetId b);
    NetId or2(NetId a, NetId b);
    NetId nor2(NetId a, NetId b);
    NetId xor2(NetId a, NetId b);
    NetId xnor2(NetId a, NetId b);
    NetId and3(NetId a, NetId b, NetId c);
    NetId nand3(NetId a, NetId b, NetId c);
    NetId or3(NetId a, NetId b, NetId c);
    NetId nor3(NetId a, NetId b, NetId c);
    NetId xor3(NetId a, NetId b, NetId c);
    NetId mux2(NetId d0, NetId d1, NetId sel);
    NetId aoi21(NetId a, NetId b, NetId c);
    NetId oai21(NetId a, NetId b, NetId c);
    NetId maj3(NetId a, NetId b, NetId c);

    /// Result of a full/half adder bit slice.
    struct AdderBit {
        NetId sum;
        NetId carry;
    };

    /// Structural half adder (XOR2 + AND2).
    AdderBit half_adder(NetId a, NetId b);

    /// Structural full adder decomposed into five 2-input gates
    /// (2×XOR2, 2×AND2, OR2) so internal glitching is visible to the
    /// power simulator.
    AdderBit full_adder(NetId a, NetId b, NetId cin);

    /// Compact full adder (XOR3 + MAJ3), used where the paper's modules
    /// would use a dedicated FA cell.
    AdderBit full_adder_compact(NetId a, NetId b, NetId cin);

    /// Reduction OR over a bus (balanced tree). Bus must be non-empty.
    NetId or_tree(const Bus& bus);

    /// Reduction AND over a bus (balanced tree). Bus must be non-empty.
    NetId and_tree(const Bus& bus);

    /// Access the netlist under construction.
    [[nodiscard]] const Netlist& peek() const noexcept { return netlist_; }

    /// Validate and return the finished netlist; the builder is left empty.
    [[nodiscard]] Netlist take();

private:
    NetId emit(gate::GateKind kind, std::initializer_list<NetId> inputs);

    Netlist netlist_;
    NetId const0_ = kInvalidId;
    NetId const1_ = kInvalidId;
};

} // namespace hdpm::netlist
