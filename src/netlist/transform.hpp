#pragma once

#include "netlist/netlist.hpp"

namespace hdpm::netlist {

/// Statistics of a netlist transformation pass.
struct TransformStats {
    std::size_t removed_cells = 0;  ///< cells deleted by the pass
    std::size_t folded_cells = 0;   ///< cells replaced by constants/aliases/inverters
    std::size_t removed_nets = 0;   ///< nets deleted by the pass
};

/// Constant folding / logic simplification.
///
/// Evaluates every cell against the constants reaching its inputs:
///  - a cell whose output is constant collapses onto a shared CONST cell,
///  - a cell whose output equals one input becomes a wire (alias, no cell),
///  - a cell whose output is the complement of one input becomes an INV.
/// The decision is semantic (all combinations of the unknown inputs are
/// enumerated), so it covers every gate kind uniformly — e.g. AND2(x, 1)
/// aliases to x, XOR2(x, 1) becomes INV(x), MUX2(a, a, s) aliases to a.
///
/// Primary inputs and outputs are preserved (outputs may end up driven by
/// a different — aliased — net internally, but the output order and count
/// are unchanged and the module function is identical).
[[nodiscard]] Netlist fold_constants(const Netlist& input,
                                     TransformStats* stats = nullptr);

/// Dead-gate elimination: removes every cell (and net) that cannot reach a
/// primary output. Primary inputs are kept even when unused, so the module
/// interface — and therefore the Hd-model input width m — is unchanged.
[[nodiscard]] Netlist eliminate_dead_gates(const Netlist& input,
                                           TransformStats* stats = nullptr);

/// fold_constants followed by eliminate_dead_gates.
[[nodiscard]] Netlist cleanup(const Netlist& input, TransformStats* stats = nullptr);

/// Buffer insertion on high-fanout nets: consumers of any net with more
/// than @p max_fanout sink pins are split into groups behind BUF cells
/// (applied repeatedly, so buffer trees form when needed). Primary outputs
/// keep observing the original net. Reduces per-net load — the classic
/// delay/power trade-off knob; the per-net capacitance (and with it the
/// power profile) changes, which is exactly what a power ablation wants to
/// measure. (Only adds cells; compare stats() before/after for the cost.)
[[nodiscard]] Netlist buffer_high_fanout(const Netlist& input, std::size_t max_fanout);

} // namespace hdpm::netlist
