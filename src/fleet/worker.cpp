#include "fleet/worker.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <random>
#include <set>
#include <thread>
#include <utility>

#include <unistd.h>

#include "core/checkpoint.hpp"
#include "fleet/lease.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hdpm::fleet {

using util::FaultContext;
using util::FaultError;
using util::FaultKind;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(const Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

void sleep_ms(const double ms)
{
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// A fresh claim token: unique enough that a worker can tell its own lease
/// from a successor's after an expiry. Not security, just identity.
std::uint64_t random_token()
{
    static std::atomic<std::uint64_t> counter{0};
    std::random_device rd;
    std::uint64_t x = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    x ^= static_cast<std::uint64_t>(::getpid()) << 48;
    x += counter.fetch_add(0x9e37'79b9'7f4a'7c15ULL, std::memory_order_relaxed);
    x ^= x >> 30;
    x *= 0xbf58'476d'1ce4'e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d0'49bb'1331'11ebULL;
    x ^= x >> 31;
    return x;
}

/// Remove our lease iff we still own it (token match). The read/remove pair
/// is not atomic; in the worst interleaving (the coordinator expires us and
/// a successor claims between the two calls) we unlink the successor's
/// lease, which the successor detects at its next heartbeat and abandons —
/// the range re-opens, so liveness is preserved and no wrong result is
/// ever published.
void release_lease(const std::filesystem::path& path, const std::uint64_t token)
{
    LeaseInfo current;
    if (read_lease(path, current) == LeaseRead::Ok && current.token == token) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
}

} // namespace

FleetWorker::FleetWorker(WorkerOptions options, const gate::TechLibrary& library,
                         sim::EventSimOptions sim_options)
    : options_(std::move(options)), library_(&library), sim_options_(sim_options)
{
    if (options_.worker_id.empty()) {
        options_.worker_id = "worker-" + std::to_string(::getpid());
    }
}

WorkerStats FleetWorker::run()
{
    HDPM_REQUIRE(!options_.fleet_dir.empty(), "fleet worker needs a fleet_dir");

    // --- Wait for the coordinator's plan. ---
    std::optional<FleetPlan> plan;
    const auto wait_start = Clock::now();
    while (!(plan = read_plan(options_.fleet_dir))) {
        if (elapsed_ms(wait_start) > options_.plan_wait_ms) {
            FaultContext context;
            context.component = options_.fleet_dir.string();
            context.detail = "no fleet plan published within " +
                             std::to_string(options_.plan_wait_ms) + " ms";
            throw FaultError{FaultKind::ProtocolError, std::move(context)};
        }
        sleep_ms(options_.poll_ms);
    }

    // --- Build the shard runner and prove we share the plan. ---
    const core::CharacterizationOptions effective =
        resolve_plan_options(options_.char_options, plan->enhanced);
    const dp::DatapathModule module =
        dp::make_module(options_.module_type, options_.widths);
    const core::ShardRunner runner{module, effective, *library_, sim_options_};
    if (runner.fingerprint() != plan->fingerprint ||
        runner.module_key() != plan->module_key ||
        runner.input_bits() != plan->input_bits ||
        runner.num_shards() != plan->num_shards ||
        runner.shard_size() != plan->shard_size) {
        FaultContext context;
        context.component = options_.fleet_dir.string();
        context.bitwidth = runner.input_bits();
        context.detail = "worker options disagree with the published plan (module '" +
                         runner.module_key() + "' vs plan '" + plan->module_key +
                         "') — refusing to contribute foreign records";
        throw FaultError{FaultKind::ProtocolError, std::move(context)};
    }

    WorkerStats stats;
    std::set<std::size_t> poisoned; // ranges this worker failed a shard of
    std::exception_ptr first_failure;

    for (;;) {
        bool all_done = true;
        bool others_active = false;
        for (std::size_t start = 0; start < plan->num_shards;
             start += plan->lease_shards) {
            const std::filesystem::path done_path =
                options_.fleet_dir / done_name(start);
            std::error_code ec;
            if (std::filesystem::exists(done_path, ec)) {
                continue;
            }
            all_done = false;
            const std::filesystem::path lease_path =
                options_.fleet_dir / lease_name(start);
            if (poisoned.count(start) != 0) {
                if (std::filesystem::exists(lease_path, ec)) {
                    others_active = true; // someone braver is on it
                }
                continue;
            }
            if (std::filesystem::exists(lease_path, ec)) {
                // Held (or a stale carcass the coordinator will reap —
                // workers never expire leases themselves, so claim/expiry
                // authority cannot race between peers).
                others_active = true;
                continue;
            }

            // --- Claim. ---
            LeaseInfo mine;
            mine.worker = options_.worker_id;
            mine.token = random_token();
            mine.start = start;
            mine.count = range_count(*plan, start);
            if (!claim_lease(lease_path, mine)) {
                others_active = true; // lost the O_EXCL race
                continue;
            }

            // --- Run the leased shards, heartbeating between them. The
            // lease TTL therefore bounds a single shard's wall time. ---
            core::CharCheckpoint journal;
            journal.fingerprint = plan->fingerprint;
            journal.module_key = plan->module_key;
            journal.input_bits = plan->input_bits;
            bool lost = false;
            bool failed = false;

            // Mid-shard heartbeat tick: invoked by the runner between
            // stimulus batches. Throttled to heartbeat_interval_ms so a
            // fast shard doesn't hammer the lease file; a detected loss
            // (expired + re-leased under us) stops further ticks and the
            // range is abandoned once the in-flight shard returns — ticks
            // must not throw, so the shard itself is never interrupted.
            auto last_beat = Clock::now();
            bool lost_mid_shard = false;
            const core::ShardRunner::TickFn tick = [&]() {
                if (lost_mid_shard ||
                    elapsed_ms(last_beat) < options_.heartbeat_interval_ms) {
                    return;
                }
                last_beat = Clock::now();
                LeaseInfo current;
                if (read_lease(lease_path, current) != LeaseRead::Ok ||
                    current.token != mine.token || !heartbeat_lease(lease_path)) {
                    lost_mid_shard = true;
                    return;
                }
                ++stats.mid_shard_heartbeats;
            };

            for (std::size_t shard = start; shard < start + mine.count; ++shard) {
                try {
                    std::vector<core::CharacterizationRecord> block =
                        runner.run(shard, tick);
                    ++stats.shards_run;
                    journal.shards.push_back({shard, std::move(block)});
                } catch (...) {
                    // Fleet shards run strict: a failing shard poisons the
                    // whole range for this worker. Release the lease so a
                    // sibling can try (maybe the fault was environmental),
                    // and keep the failure in case nobody can.
                    release_lease(lease_path, mine.token);
                    poisoned.insert(start);
                    ++stats.ranges_failed;
                    if (!first_failure) {
                        first_failure = std::current_exception();
                    }
                    failed = true;
                    break;
                }
                if (lost_mid_shard) {
                    lost = true;
                    ++stats.ranges_abandoned;
                    break;
                }
                LeaseInfo current;
                switch (read_lease(lease_path, current)) {
                case LeaseRead::Missing:
                    lost = true; // expired and reaped — successor owns the range
                    break;
                case LeaseRead::Corrupt:
                    // Unreadable lease (e.g. our own claim was torn by a
                    // fault): ownership is unprovable, so abandon and let
                    // the coordinator's TTL sweep quarantine it.
                    lost = true;
                    break;
                case LeaseRead::Ok:
                    if (current.token != mine.token) {
                        lost = true; // a successor claimed after our expiry
                    } else if (!heartbeat_lease(lease_path)) {
                        lost = true; // vanished under us
                    } else {
                        ++stats.heartbeats;
                    }
                    break;
                }
                if (lost) {
                    ++stats.ranges_abandoned;
                    break;
                }
            }
            if (lost || failed) {
                continue;
            }

            // --- Publish first-wins. A duplicate (we were presumed dead,
            // a successor already published) is discarded unread: shards
            // are deterministic, both payloads are byte-identical. ---
            const std::filesystem::path tmp =
                options_.fleet_dir /
                (done_name(start) + "." + options_.worker_id + ".pub");
            core::save_checkpoint(tmp, journal);
            if (publish_first_wins(tmp, done_path)) {
                ++stats.ranges_completed;
            } else {
                ++stats.duplicate_publishes;
            }
            release_lease(lease_path, mine.token);
        }

        if (all_done) {
            return stats;
        }
        if (!others_active && first_failure) {
            // Every outstanding range is poisoned for us and nobody else
            // is working: surface the shard failure instead of spinning.
            std::rethrow_exception(first_failure);
        }
        sleep_ms(options_.poll_ms);
    }
}

} // namespace hdpm::fleet
