#include "fleet/coordinator.hpp"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/model_library.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hdpm::fleet {

using util::FaultContext;
using util::FaultError;
using util::FaultKind;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(const Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

} // namespace

FleetCoordinator::FleetCoordinator(FleetOptions options,
                                   const gate::TechLibrary& library,
                                   sim::EventSimOptions sim_options)
    : options_(std::move(options)), library_(&library), sim_options_(sim_options)
{
}

FleetStats FleetCoordinator::run()
{
    const auto t0 = Clock::now();
    HDPM_REQUIRE(!options_.fleet_dir.empty(), "fleet coordinator needs a fleet_dir");
    HDPM_REQUIRE(!options_.models_dir.empty(), "fleet coordinator needs a models_dir");
    HDPM_REQUIRE(options_.lease_shards > 0, "lease_shards must be >= 1");
    HDPM_REQUIRE(options_.lease_ttl_ms > 0, "lease_ttl_ms must be positive");

    std::error_code ec;
    std::filesystem::create_directories(options_.fleet_dir, ec);
    if (ec) {
        HDPM_FAIL("cannot create fleet directory '", options_.fleet_dir.string(),
                  "': ", ec.message());
    }

    const core::CharacterizationOptions effective =
        resolve_plan_options(options_.char_options, options_.enhanced);
    const dp::DatapathModule module =
        dp::make_module(options_.module_type, options_.widths);

    FleetPlan plan;
    plan.fingerprint = core::characterization_fingerprint(effective, sim_options_);
    plan.module_key = core::module_journal_key(module);
    plan.input_bits = module.total_input_bits();
    plan.shard_size =
        effective.shard_size != 0 ? effective.shard_size : effective.batch;
    HDPM_REQUIRE(plan.shard_size > 0, "plan shard size must be positive");
    plan.num_shards =
        (effective.max_transitions + plan.shard_size - 1) / plan.shard_size;
    HDPM_REQUIRE(plan.num_shards > 0, "plan has no shards (max_transitions == 0?)");
    plan.lease_shards = options_.lease_shards;
    plan.enhanced = options_.enhanced;
    plan.zero_clusters = options_.zero_clusters;
    write_plan(options_.fleet_dir, plan);

    FleetStats stats;
    stats.num_shards = plan.num_shards;
    stats.num_ranges = num_ranges(plan);

    // --- Supervise: validate done journals as they land, police leases. ---
    std::map<std::size_t, core::CharCheckpoint> done;
    auto last_activity = Clock::now();
    while (done.size() < stats.num_ranges) {
        bool activity = false;
        for (std::size_t start = 0; start < plan.num_shards;
             start += plan.lease_shards) {
            if (done.count(start) != 0) {
                continue;
            }
            const std::filesystem::path done_path =
                options_.fleet_dir / done_name(start);
            std::error_code exists_ec;
            if (std::filesystem::exists(done_path, exists_ec)) {
                // A done journal is published whole (tmp + rename + link),
                // so any parse damage is corruption, not a torn race.
                try {
                    auto loaded = core::load_checkpoint(done_path, start);
                    if (!loaded) {
                        continue; // vanished between exists() and open
                    }
                    if (loaded->fingerprint != plan.fingerprint ||
                        loaded->module_key != plan.module_key ||
                        loaded->input_bits != plan.input_bits ||
                        loaded->shards.size() != range_count(plan, start)) {
                        // Foreign or short journal squatting on our name:
                        // evidence aside, range re-opened.
                        quarantine_file(done_path);
                        ++stats.done_corrupt;
                        continue;
                    }
                    done.emplace(start, std::move(*loaded));
                    ++stats.ranges_done;
                    activity = true;
                } catch (const FaultError& error) {
                    if (error.kind() != FaultKind::CheckpointCorrupt) {
                        throw;
                    }
                    quarantine_file(done_path);
                    ++stats.done_corrupt;
                }
                continue;
            }

            // No result yet: police the range's lease.
            const std::filesystem::path lease_path =
                options_.fleet_dir / lease_name(start);
            const std::optional<double> age = file_age_ms(lease_path);
            if (!age) {
                continue; // open range — waiting for a worker to claim it
            }
            double effective_age = *age;
            if (effective_age < 0) {
                // Future-dated heartbeat: a worker whose clock jumped.
                // Small skew is clamped to "fresh"; skew beyond the TTL is
                // not a fresh worker but a broken clock, so the lease is
                // expired rather than trusted forever.
                ++stats.skewed_heartbeats;
                effective_age = (-effective_age > options_.lease_ttl_ms)
                                    ? options_.lease_ttl_ms + 1.0
                                    : 0.0;
            }
            if (effective_age <= options_.lease_ttl_ms) {
                activity = true; // a live worker is heartbeating this range
                continue;
            }
            // Stale: the holder is dead (SIGKILL) or wedged. Read the
            // carcass for diagnostics, then free the name so another
            // worker can re-claim the range.
            LeaseInfo info;
            switch (read_lease(lease_path, info)) {
            case LeaseRead::Corrupt:
                if (quarantine_file(lease_path)) {
                    ++stats.leases_corrupt;
                    ++stats.workers_lost;
                    activity = true;
                }
                break;
            case LeaseRead::Ok: {
                std::error_code remove_ec;
                if (std::filesystem::remove(lease_path, remove_ec)) {
                    ++stats.leases_expired;
                    ++stats.workers_lost;
                    activity = true;
                }
                break;
            }
            case LeaseRead::Missing:
                break; // holder released or a sibling sweep won the race
            }
        }

        if (activity) {
            last_activity = Clock::now();
        } else if (elapsed_ms(last_activity) > options_.idle_timeout_ms) {
            FaultContext context;
            context.component = options_.fleet_dir.string();
            context.bitwidth = plan.input_bits;
            context.detail = "fleet made no progress for " +
                             std::to_string(options_.idle_timeout_ms) +
                             " ms with " +
                             std::to_string(stats.num_ranges - done.size()) +
                             " of " + std::to_string(stats.num_ranges) +
                             " ranges outstanding — all workers lost?";
            throw FaultError{FaultKind::WorkerLost, std::move(context)};
        }
        if (done.size() < stats.num_ranges) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(options_.poll_ms));
        }
    }

    // --- Merge in plan order: the exact single-process convergence loop. ---
    core::ShardMerger merger{plan.input_bits, effective};
    for (std::size_t start = 0;
         start < plan.num_shards && !merger.converged();
         start += plan.lease_shards) {
        for (const core::CheckpointShard& shard : done.at(start).shards) {
            if (!merger.merge(shard.records)) {
                break;
            }
        }
    }
    stats.converged_early = merger.converged();
    stats.shards_merged = merger.shards_merged();
    const std::vector<core::CharacterizationRecord> records = merger.take_records();
    stats.records = records.size();

    // --- Fit and publish under the library's own atomic discipline. Note
    // the fit and the store fingerprint use the *caller's* options (mode
    // possibly unset), exactly as ModelLibrary::get_or_characterize would,
    // so the stored file is byte-identical to a single-process run. ---
    const core::ModelLibrary library{options_.models_dir, *library_, sim_options_};
    if (options_.enhanced) {
        library.store_enhanced(
            options_.module_type, options_.widths, options_.zero_clusters,
            options_.char_options,
            core::fit_enhanced_model(plan.input_bits, options_.zero_clusters, records));
    } else {
        library.store_basic(options_.module_type, options_.widths,
                            options_.char_options,
                            core::fit_basic_model(plan.input_bits, records));
    }

    stats.wall_ms = elapsed_ms(t0);
    return stats;
}

} // namespace hdpm::fleet
