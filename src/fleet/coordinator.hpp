#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "dpgen/module.hpp"
#include "fleet/lease.hpp"
#include "gatelib/techlib.hpp"
#include "sim/event_sim.hpp"

namespace hdpm::fleet {

/// One fleet run's configuration, shared in spirit (and partly in fields)
/// between the coordinator and its workers. The characterization options
/// are the same struct a single-process run takes — the fleet is an
/// execution strategy, not a different measurement plan — and everything
/// the plan's identity depends on is fingerprinted into plan.fleet so a
/// mismatched worker refuses instead of contributing foreign records.
struct FleetOptions {
    /// Shared coordination directory (plan / lease / done files). Local or
    /// network filesystem; it only needs atomic O_EXCL create, rename and
    /// link, which POSIX filesystems (incl. NFSv4) provide.
    std::filesystem::path fleet_dir;

    /// Model library directory the coordinator publishes the fitted model
    /// into (coordinator only).
    std::filesystem::path models_dir;

    dp::ModuleType module_type = dp::ModuleType::RippleAdder;
    std::vector<int> widths;
    bool enhanced = false;  ///< fit the enhanced (Hd, zeros) model
    int zero_clusters = 0;  ///< enhanced-model cluster count

    /// The measurement plan. threads only affects in-process calibration /
    /// execution; records are bit-identical regardless.
    core::CharacterizationOptions char_options;

    /// Shards per leased range — the granularity of work handed to one
    /// worker claim (and therefore of loss on a kill).
    std::size_t lease_shards = 4;

    /// Heartbeat TTL: a lease whose mtime is older than this is considered
    /// dead and re-leased. Must comfortably exceed a worker's worst-case
    /// per-shard wall time plus heartbeat interval.
    double lease_ttl_ms = 5000.0;

    /// Supervision / claim polling cadence.
    double poll_ms = 50.0;

    /// Coordinator only: abort with FaultError{WorkerLost} when no range
    /// completes and no lease activity is observed for this long — the
    /// whole fleet is gone and waiting further would hang forever.
    double idle_timeout_ms = 60000.0;
};

/// Counters of one coordinator run.
struct FleetStats {
    std::size_t num_shards = 0;    ///< shards in the plan
    std::size_t num_ranges = 0;    ///< leased ranges in the plan
    std::size_t ranges_done = 0;   ///< ranges with a validated done file
    std::size_t leases_expired = 0; ///< stale leases removed (range re-opened)
    std::size_t leases_corrupt = 0; ///< corrupt stale leases quarantined
    std::size_t done_corrupt = 0;  ///< corrupt/foreign done files quarantined
    std::size_t skewed_heartbeats = 0; ///< future-dated lease mtimes observed
    std::size_t workers_lost = 0;  ///< distinct worker losses inferred (expiry/corrupt)
    std::size_t shards_merged = 0; ///< shards merged into the final record stream
    std::size_t records = 0;       ///< records in the final stream
    bool converged_early = false;  ///< convergence stopped the merge mid-plan
    double wall_ms = 0.0;          ///< end-to-end coordinator wall time
};

/// The fleet's single coordinator: publishes the plan, supervises leases
/// (expiring stragglers, quarantining corrupt coordination files), collects
/// and validates each range's done journal, then merges all ranges in plan
/// order through ShardMerger and fits + stores the model. Because shards
/// are independently seeded and the merge replays the single-process
/// convergence loop exactly, the stored model file is byte-identical to a
/// one-process `hdpower_cli characterize` run of the same options — however
/// many workers ran, died, or raced.
class FleetCoordinator {
public:
    explicit FleetCoordinator(
        FleetOptions options,
        const gate::TechLibrary& library = gate::TechLibrary::generic350(),
        sim::EventSimOptions sim_options = {});

    /// Run the coordination to completion. Throws FaultError{WorkerLost}
    /// when the fleet goes idle past options.idle_timeout_ms, and
    /// FaultError{IoError}/HDPM_FAIL on filesystem refusal.
    FleetStats run();

private:
    FleetOptions options_;
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;
};

} // namespace hdpm::fleet
