#include "fleet/lease.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fault.hpp"

namespace hdpm::fleet {

using util::FaultContext;
using util::FaultError;
using util::FaultKind;
using util::FaultPoint;

namespace {

constexpr std::string_view kPlanMagic = "hdpm_fleet";
constexpr std::string_view kLeaseMagic = "hdpm_lease";
constexpr int kVersion = 1;

[[noreturn]] void io_fail(const std::filesystem::path& path, std::string detail)
{
    FaultContext context;
    context.component = path.string();
    context.detail = std::move(detail);
    throw FaultError{FaultKind::IoError, std::move(context)};
}

std::string hex64(std::uint64_t value)
{
    char buf[17];
    for (int i = 15; i >= 0; --i) {
        buf[15 - i] = "0123456789abcdef"[(value >> (4 * i)) & 0xf];
    }
    buf[16] = '\0';
    return buf;
}

bool parse_hex64(const std::string& text, std::uint64_t& value)
{
    if (text.size() != 16) {
        return false;
    }
    value = 0;
    for (const char c : text) {
        value <<= 4;
        if (c >= '0' && c <= '9') {
            value |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

core::CharacterizationOptions resolve_plan_options(core::CharacterizationOptions options,
                                                   const bool enhanced)
{
    // Mirror Characterizer::characterize_enhanced: only the enhanced path
    // pins an unset mode (to StratifiedPairs); the basic path fingerprints
    // the mode as "unset" and generates StratifiedChain.
    if (enhanced && !options.mode.has_value()) {
        options.mode = core::StimulusMode::StratifiedPairs;
    }
    // The whole-run checkpoint knob is meaningless inside a fleet (each
    // range journals into its own done file) and must not leak into worker
    // shard runs.
    options.checkpoint.clear();
    return options;
}

std::string lease_name(std::size_t range_start)
{
    return "range_" + std::to_string(range_start) + ".lease";
}

std::string done_name(std::size_t range_start)
{
    return "range_" + std::to_string(range_start) + ".done";
}

std::size_t num_ranges(const FleetPlan& plan) noexcept
{
    if (plan.lease_shards == 0) {
        return 0;
    }
    return (plan.num_shards + plan.lease_shards - 1) / plan.lease_shards;
}

std::size_t range_count(const FleetPlan& plan, std::size_t start) noexcept
{
    if (start >= plan.num_shards) {
        return 0;
    }
    return std::min(plan.lease_shards, plan.num_shards - start);
}

void write_plan(const std::filesystem::path& dir, const FleetPlan& plan)
{
    std::ostringstream os;
    os << kPlanMagic << ' ' << kVersion << '\n';
    os << "fingerprint " << hex64(plan.fingerprint) << '\n';
    os << "module " << plan.module_key << " m " << plan.input_bits << '\n';
    os << "shards " << plan.num_shards << ' ' << plan.shard_size << '\n';
    os << "lease " << plan.lease_shards << '\n';
    os << "model " << (plan.enhanced ? "enhanced" : "basic") << ' '
       << plan.zero_clusters << '\n';
    os << "end\n";
    const std::string payload = os.str();

    const std::filesystem::path path = dir / kPlanFileName;
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
        if (!out) {
            io_fail(tmp, "cannot open plan tmp file for writing");
        }
        out << payload;
        out.flush();
        if (!out) {
            io_fail(tmp, "short write publishing fleet plan");
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        io_fail(path, "cannot publish fleet plan: " + ec.message());
    }
}

std::optional<FleetPlan> read_plan(const std::filesystem::path& dir)
{
    const std::filesystem::path path = dir / kPlanFileName;
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        return std::nullopt;
    }
    const auto malformed = [&](const char* what) -> void {
        FaultContext context;
        context.component = path.string();
        context.detail = std::string{"malformed fleet plan: "} + what;
        throw FaultError{FaultKind::ProtocolError, std::move(context)};
    };

    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (!in || tag != kPlanMagic || version != kVersion) {
        malformed("bad magic/version header");
    }

    FleetPlan plan;
    std::string hex;
    in >> tag >> hex;
    if (!in || tag != "fingerprint" || !parse_hex64(hex, plan.fingerprint)) {
        malformed("fingerprint line");
    }
    std::string mtag;
    in >> tag >> plan.module_key >> mtag >> plan.input_bits;
    if (!in || tag != "module" || mtag != "m" || plan.input_bits < 1) {
        malformed("module line");
    }
    in >> tag >> plan.num_shards >> plan.shard_size;
    if (!in || tag != "shards" || plan.num_shards == 0 || plan.shard_size == 0) {
        malformed("shards line");
    }
    in >> tag >> plan.lease_shards;
    if (!in || tag != "lease" || plan.lease_shards == 0) {
        malformed("lease line");
    }
    std::string model_kind;
    in >> tag >> model_kind >> plan.zero_clusters;
    if (!in || tag != "model" ||
        (model_kind != "basic" && model_kind != "enhanced") ||
        plan.zero_clusters < 0) {
        malformed("model line");
    }
    plan.enhanced = model_kind == "enhanced";
    in >> tag;
    if (!in || tag != "end") {
        malformed("missing end marker");
    }
    return plan;
}

bool claim_lease(const std::filesystem::path& path, const LeaseInfo& info)
{
    // O_CREAT|O_EXCL is the claim itself: exactly one contender can create
    // the name. The payload write follows immediately; a reader racing the
    // few microseconds in between sees a fresh-but-unparseable lease, which
    // the coordinator tolerates until the TTL says otherwise.
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (errno == EEXIST) {
            return false;
        }
        io_fail(path, "cannot create lease file");
    }

    std::ostringstream os;
    os << kLeaseMagic << ' ' << kVersion << '\n';
    os << "worker " << info.worker << '\n';
    os << "token " << hex64(info.token) << '\n';
    os << "range " << info.start << ' ' << info.count << '\n';
    os << "end\n";
    std::string payload = os.str();
    HDPM_FAULT_MUTATE(FaultPoint::LeaseCorrupt, payload);

    std::size_t written = 0;
    while (written < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + written, payload.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            ::close(fd);
            io_fail(path, "cannot write lease payload");
        }
        written += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return true;
}

LeaseRead read_lease(const std::filesystem::path& path, LeaseInfo& out)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        return LeaseRead::Missing;
    }
    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (!in || tag != kLeaseMagic || version != kVersion) {
        return LeaseRead::Corrupt;
    }
    std::string hex;
    in >> tag >> out.worker;
    if (!in || tag != "worker") {
        return LeaseRead::Corrupt;
    }
    in >> tag >> hex;
    if (!in || tag != "token" || !parse_hex64(hex, out.token)) {
        return LeaseRead::Corrupt;
    }
    in >> tag >> out.start >> out.count;
    if (!in || tag != "range" || out.count == 0) {
        return LeaseRead::Corrupt;
    }
    in >> tag;
    if (!in || tag != "end") {
        return LeaseRead::Corrupt;
    }
    return LeaseRead::Ok;
}

bool heartbeat_lease(const std::filesystem::path& path)
{
    if (HDPM_FAULT_FIRE(FaultPoint::HeartbeatSkew)) {
        // A clock-skewed worker: stamp the heartbeat an hour into the
        // future. The coordinator must clamp the resulting negative age
        // instead of wedging its expiry arithmetic.
        std::error_code ec;
        std::filesystem::last_write_time(
            path, std::filesystem::file_time_type::clock::now() + std::chrono::hours{1},
            ec);
        return !ec;
    }
    // utimensat(UTIME_NOW) never creates the file, so a heartbeat can only
    // refresh a lease that still exists — ENOENT is the expiry signal.
    if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) != 0) {
        return false;
    }
    return true;
}

std::optional<double> file_age_ms(const std::filesystem::path& path)
{
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec) {
        return std::nullopt;
    }
    const auto now = std::filesystem::file_time_type::clock::now();
    return std::chrono::duration<double, std::milli>(now - mtime).count();
}

bool quarantine_file(const std::filesystem::path& path)
{
    std::error_code ec;
    std::filesystem::rename(path, path.string() + ".corrupt", ec);
    if (!ec) {
        return true;
    }
    return std::filesystem::remove(path, ec);
}

bool publish_first_wins(const std::filesystem::path& tmp,
                        const std::filesystem::path& final_path)
{
    bool won = false;
    if (::link(tmp.c_str(), final_path.c_str()) == 0) {
        won = true;
    } else if (errno != EEXIST) {
        const int saved = errno;
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        io_fail(final_path,
                std::string{"cannot publish result: "} + std::strerror(saved));
    }
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return won;
}

} // namespace hdpm::fleet
