#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "core/characterize.hpp"

namespace hdpm::fleet {

/// Filesystem primitives of the fleet coordination protocol. Everything in
/// a fleet run lives in one shared directory (local or network filesystem):
///
///   plan.fleet            the coordinator's published stimulus plan
///   range_<S>.lease       a worker's claim on shards [S, S+count)
///   range_<S>.done        the range's completed record blocks (journal)
///
/// Claims are `open(O_CREAT|O_EXCL)` — the filesystem's atomic test-and-set
/// — heartbeats refresh the lease file's mtime, and results are published
/// first-wins with `link()` (a second publisher of the same range gets
/// EEXIST, which is safe to discard because shards are deterministic: both
/// payloads are byte-identical). The plan and every journal publish go
/// through a sibling tmp + atomic rename, so no reader ever observes a
/// half-written file.

/// Coordination file names inside the fleet directory.
inline constexpr const char* kPlanFileName = "plan.fleet";
[[nodiscard]] std::string lease_name(std::size_t range_start);
[[nodiscard]] std::string done_name(std::size_t range_start);

/// Payload of a lease file: who holds the range, and a claim token so a
/// worker can tell its own lease from a successor's after an expiry.
struct LeaseInfo {
    std::string worker;      ///< claiming worker's id (diagnostics)
    std::uint64_t token = 0; ///< ownership token, checked on heartbeat
    std::size_t start = 0;   ///< first shard of the leased range
    std::size_t count = 0;   ///< shards in the range
};

/// The coordinator's published plan: the full identity of the stimulus
/// plan (the same fingerprint the checkpoint journal and model library
/// use), so a worker started with mismatched options refuses loudly
/// instead of contributing foreign records.
struct FleetPlan {
    std::uint64_t fingerprint = 0; ///< characterization_fingerprint
    std::string module_key;        ///< module identity (name + widths)
    int input_bits = 0;            ///< m
    std::size_t num_shards = 0;    ///< shards in the plan
    std::size_t shard_size = 0;    ///< transitions per shard
    std::size_t lease_shards = 0;  ///< shards per leased range
    bool enhanced = false;         ///< fit the enhanced (Hd, zeros) model
    int zero_clusters = 0;         ///< enhanced-model cluster count
};

/// The effective characterization options a fleet plan runs under. The
/// single-process entry points resolve an unset stimulus mode at different
/// layers (Characterizer::characterize_enhanced pins StratifiedPairs before
/// collect_records; the basic path leaves the mode unset and lets the shard
/// loop default to StratifiedChain), and the resolution is fingerprinted —
/// so coordinator and workers must resolve identically or their
/// fingerprints diverge. This is that one shared resolution.
[[nodiscard]] core::CharacterizationOptions resolve_plan_options(
    core::CharacterizationOptions options, bool enhanced);

/// Number of leased ranges in a plan (ceil division).
[[nodiscard]] std::size_t num_ranges(const FleetPlan& plan) noexcept;

/// Shards in the range starting at @p start (the last range may be short).
[[nodiscard]] std::size_t range_count(const FleetPlan& plan,
                                      std::size_t start) noexcept;

/// Atomically publish @p plan as <dir>/plan.fleet (tmp + rename). Throws
/// FaultError{IoError} when the filesystem refuses.
void write_plan(const std::filesystem::path& dir, const FleetPlan& plan);

/// Load a published plan. Returns nullopt when none is published yet;
/// throws FaultError{ProtocolError} when the file exists but is malformed
/// (the publish is atomic, so damage means corruption, not a race).
[[nodiscard]] std::optional<FleetPlan> read_plan(const std::filesystem::path& dir);

/// Claim @p path with O_CREAT|O_EXCL and write @p info. Returns false when
/// the lease is already held (EEXIST); throws FaultError{IoError} on any
/// other failure. The LeaseCorrupt fault-injection point corrupts the
/// payload on its way to disk (behind an intact header line).
[[nodiscard]] bool claim_lease(const std::filesystem::path& path,
                               const LeaseInfo& info);

/// Outcome of reading a lease file.
enum class LeaseRead {
    Missing, ///< no lease file
    Corrupt, ///< present but unparseable (torn write or bit rot)
    Ok,      ///< parsed
};

[[nodiscard]] LeaseRead read_lease(const std::filesystem::path& path, LeaseInfo& out);

/// Refresh the lease's heartbeat (set its mtime to now). Returns false when
/// the lease file is gone — the holder's cue that its lease expired and was
/// re-leased; it must abandon the range without publishing. The
/// HeartbeatSkew fault-injection point writes a far-future mtime instead,
/// modelling a worker whose clock jumped.
[[nodiscard]] bool heartbeat_lease(const std::filesystem::path& path);

/// Milliseconds since the file's last heartbeat (mtime). Negative when the
/// mtime is in the future (clock skew — the caller should clamp and count).
/// nullopt when the file is gone.
[[nodiscard]] std::optional<double> file_age_ms(const std::filesystem::path& path);

/// Set a damaged coordination file aside as <path>.corrupt (keep the
/// evidence, free the name). Falls back to removal when the rename fails;
/// returns false when the file was already gone.
bool quarantine_file(const std::filesystem::path& path);

/// Publish @p tmp at @p final first-wins: link() the finished payload to
/// the final name and unlink the tmp. Returns true when this call won the
/// name, false when a sibling published first (EEXIST — the duplicate is
/// discarded). Throws FaultError{IoError} on any other failure.
[[nodiscard]] bool publish_first_wins(const std::filesystem::path& tmp,
                                      const std::filesystem::path& final_path);

} // namespace hdpm::fleet
