#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "dpgen/module.hpp"
#include "gatelib/techlib.hpp"
#include "sim/event_sim.hpp"

namespace hdpm::fleet {

/// One fleet worker's configuration. The worker is started with the same
/// module + characterization options as the coordinator; it validates its
/// own plan fingerprint against the published plan.fleet and refuses loudly
/// on any mismatch, so a misconfigured worker can never contribute records
/// from a different stimulus plan.
struct WorkerOptions {
    std::filesystem::path fleet_dir; ///< shared coordination directory

    dp::ModuleType module_type = dp::ModuleType::RippleAdder;
    std::vector<int> widths;

    /// Must hash to the published plan's fingerprint (same options the
    /// coordinator was started with).
    core::CharacterizationOptions char_options;

    /// Diagnostic identity written into lease files (defaults to
    /// "worker-<pid>" when empty).
    std::string worker_id;

    double poll_ms = 50.0;        ///< claim-scan cadence
    double plan_wait_ms = 30000.0; ///< how long to wait for plan.fleet

    /// Minimum gap between mid-shard lease heartbeats. The worker also
    /// heartbeats between shards; the mid-shard ticks are what let the
    /// lease TTL shrink below one shard's wall time (a large shard no
    /// longer looks dead while it is still simulating).
    double heartbeat_interval_ms = 500.0;
};

/// Counters of one worker run.
struct WorkerStats {
    std::size_t ranges_completed = 0;   ///< ranges this worker published
    std::size_t ranges_abandoned = 0;   ///< leases lost mid-range (expired/corrupt)
    std::size_t ranges_failed = 0;      ///< ranges abandoned to a shard failure
    std::size_t duplicate_publishes = 0; ///< lost a first-wins publish race
    std::size_t shards_run = 0;         ///< shards simulated (incl. abandoned)
    std::size_t heartbeats = 0;         ///< successful between-shard heartbeats
    std::size_t mid_shard_heartbeats = 0; ///< successful heartbeats inside a shard
};

/// A fleet worker: claims open ranges with O_EXCL leases, simulates the
/// leased shards, heartbeats between shards, and publishes each range's
/// record blocks as a first-wins done journal. A worker that loses its
/// lease (SIGKILLed sibling's range was re-leased past the TTL, or its own
/// heartbeat finds the lease gone / held by a successor token) abandons the
/// range without publishing — the successor's publish is authoritative, and
/// since shards are deterministic a duplicate publish would be
/// byte-identical anyway. Exits when every range in the plan is done.
class FleetWorker {
public:
    explicit FleetWorker(
        WorkerOptions options,
        const gate::TechLibrary& library = gate::TechLibrary::generic350(),
        sim::EventSimOptions sim_options = {});

    /// Run until all ranges are done. Throws FaultError{ProtocolError} on a
    /// plan/options mismatch, and rethrows a shard failure when it is the
    /// only thing standing between the fleet and completion (no other
    /// worker can be handed the poisoned range).
    WorkerStats run();

private:
    WorkerOptions options_;
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;
};

} // namespace hdpm::fleet
