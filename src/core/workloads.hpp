#pragma once

#include <cstdint>
#include <vector>

#include "dpgen/module.hpp"
#include "streams/stream.hpp"
#include "util/bitvec.hpp"

namespace hdpm::core {

/// Generate a module-input pattern stream of @p n vectors for one of the
/// paper's data types: each operand gets an independent stream of the same
/// type (distinct seeds), encoded two's complement and concatenated in
/// operand order — the workload form used throughout tables 1–3.
[[nodiscard]] std::vector<util::BitVec> make_module_stream(
    const dp::DatapathModule& module, streams::DataType type, std::size_t n,
    std::uint64_t seed);

/// The per-operand integer streams behind make_module_stream (exposed for
/// analyses that need word-level statistics of the same data).
[[nodiscard]] std::vector<std::vector<std::int64_t>> make_operand_streams(
    const dp::DatapathModule& module, streams::DataType type, std::size_t n,
    std::uint64_t seed);

/// Encode explicit per-operand value streams into module input patterns.
[[nodiscard]] std::vector<util::BitVec> encode_module_stream(
    const dp::DatapathModule& module,
    std::span<const std::vector<std::int64_t>> operand_values);

} // namespace hdpm::core
