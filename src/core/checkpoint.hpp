#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/characterize.hpp"

namespace hdpm::core {

/// One completed stimulus shard's record block, as stored in a
/// characterization checkpoint journal.
struct CheckpointShard {
    std::size_t index = 0; ///< shard index in the stimulus plan
    std::vector<CharacterizationRecord> records;
};

/// A crash-safe characterization checkpoint: the completed prefix of a
/// run's stimulus plan, stamped with the same options fingerprint the
/// model library uses (plus the module key), so a journal can never be
/// resumed against a different module or a changed stimulus plan.
///
/// Because shards are independent and merged strictly in shard order, the
/// journal is always a prefix [0, shards.size()) of the plan: replaying it
/// through the merge loop and simulating the remaining shards reproduces
/// the record stream of an uninterrupted run bit-identically (charges are
/// stored as raw IEEE-754 bit patterns, so the round trip is exact).
struct CharCheckpoint {
    std::uint64_t fingerprint = 0; ///< characterization_fingerprint of the run
    std::string module_key;        ///< module identity (name + widths)
    int input_bits = 0;            ///< m, a cheap second identity check
    std::vector<CheckpointShard> shards;

    /// Total records across all stored shards.
    [[nodiscard]] std::size_t total_records() const;
};

/// Atomically publish @p checkpoint to @p path (write a sibling .tmp, then
/// rename), so a reader — or a resumed run — never observes a half-written
/// journal. Throws FaultError(IoError) when the filesystem refuses.
void save_checkpoint(const std::filesystem::path& path,
                     const CharCheckpoint& checkpoint);

/// Load a journal written by save_checkpoint. Returns nullopt when @p path
/// does not exist; throws FaultError(CheckpointCorrupt) when the file
/// exists but is malformed (e.g. the short write of a killed run under a
/// non-atomic filesystem, or bit rot).
///
/// @p first_shard is the plan index the journal's shard block sequence must
/// start at: 0 for a whole-run checkpoint, the range start for a fleet
/// worker's per-range journal. Blocks must be contiguous from there.
[[nodiscard]] std::optional<CharCheckpoint> load_checkpoint(
    const std::filesystem::path& path, std::size_t first_shard = 0);

/// Outcome of a tolerant journal read (see salvage_checkpoint).
struct CheckpointSalvage {
    /// The longest valid prefix of the journal's shard blocks; nullopt when
    /// the file does not exist or its identity header is unusable.
    std::optional<CharCheckpoint> checkpoint;
    /// False when any damage was found (a torn tail was dropped, or the
    /// header was unreadable). The caller should quarantine the file as
    /// evidence before republishing over it.
    bool clean = true;
    /// What was wrong, when !clean.
    std::string detail;
};

/// Tolerantly load a journal: where load_checkpoint throws on the torn tail
/// a killed writer leaves behind, this drops the damaged suffix and returns
/// every shard block that parsed whole, so a resume can keep the surviving
/// work instead of recharacterizing from scratch. Damage mid-shard drops
/// that whole shard (its record block is not trusted once torn). Never
/// throws CheckpointCorrupt; filesystem-level open failures read as
/// "no checkpoint".
[[nodiscard]] CheckpointSalvage salvage_checkpoint(
    const std::filesystem::path& path, std::size_t first_shard = 0);

} // namespace hdpm::core
