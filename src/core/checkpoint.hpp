#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/characterize.hpp"

namespace hdpm::core {

/// One completed stimulus shard's record block, as stored in a
/// characterization checkpoint journal.
struct CheckpointShard {
    std::size_t index = 0; ///< shard index in the stimulus plan
    std::vector<CharacterizationRecord> records;
};

/// A crash-safe characterization checkpoint: the completed prefix of a
/// run's stimulus plan, stamped with the same options fingerprint the
/// model library uses (plus the module key), so a journal can never be
/// resumed against a different module or a changed stimulus plan.
///
/// Because shards are independent and merged strictly in shard order, the
/// journal is always a prefix [0, shards.size()) of the plan: replaying it
/// through the merge loop and simulating the remaining shards reproduces
/// the record stream of an uninterrupted run bit-identically (charges are
/// stored as raw IEEE-754 bit patterns, so the round trip is exact).
struct CharCheckpoint {
    std::uint64_t fingerprint = 0; ///< characterization_fingerprint of the run
    std::string module_key;        ///< module identity (name + widths)
    int input_bits = 0;            ///< m, a cheap second identity check
    std::vector<CheckpointShard> shards;

    /// Total records across all stored shards.
    [[nodiscard]] std::size_t total_records() const;
};

/// Atomically publish @p checkpoint to @p path (write a sibling .tmp, then
/// rename), so a reader — or a resumed run — never observes a half-written
/// journal. Throws FaultError(IoError) when the filesystem refuses.
void save_checkpoint(const std::filesystem::path& path,
                     const CharCheckpoint& checkpoint);

/// Load a journal written by save_checkpoint. Returns nullopt when @p path
/// does not exist; throws FaultError(CheckpointCorrupt) when the file
/// exists but is malformed (e.g. the short write of a killed run under a
/// non-atomic filesystem, or bit rot).
[[nodiscard]] std::optional<CharCheckpoint> load_checkpoint(
    const std::filesystem::path& path);

} // namespace hdpm::core
