#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/hd_model.hpp"

namespace hdpm::core {

/// The enhanced Hd-model (paper section 3, eq. 3): each Hamming-distance
/// class E_i is further split by the number of *stable zero* bits z of the
/// transition — bits that are 0 in both consecutive vectors — giving
/// classes E_{i,z} with z ∈ [0, m−i] and up to M = (m²+m)/2 coefficients.
///
/// For wide modules the z axis can be clustered into a fixed number of
/// buckets ("it is also possible to cluster event classes within a certain
/// range of the number of zeros"); zero_clusters = 0 keeps full resolution.
///
/// A basic HdModel is kept as fallback for classes that received no
/// characterization samples.
class EnhancedHdModel {
public:
    EnhancedHdModel() = default;

    /// Construct from a coefficient table. table[i-1][c] is the coefficient
    /// of Hd class i, zero-cluster c; cluster counts follow num_clusters().
    EnhancedHdModel(int input_bits, int zero_clusters,
                    std::vector<std::vector<double>> coefficients,
                    std::vector<std::vector<double>> deviations,
                    std::vector<std::vector<std::size_t>> sample_counts,
                    HdModel fallback);

    [[nodiscard]] int input_bits() const noexcept { return input_bits_; }

    /// Configured clustering (0 = one class per zero count).
    [[nodiscard]] int zero_clusters() const noexcept { return zero_clusters_; }

    /// Number of zero-clusters of Hd class @p hd.
    [[nodiscard]] int num_clusters(int hd) const;

    /// Cluster index of a (hd, stable-zero-count) pair.
    [[nodiscard]] int cluster_of(int hd, int zeros) const;

    /// Coefficient p_{i,z}; falls back to the basic p_i for unpopulated
    /// classes.
    [[nodiscard]] double coefficient(int hd, int zeros) const;

    /// Deviation ε_{i,z} (0 if unknown; falls back like coefficient()).
    [[nodiscard]] double deviation(int hd, int zeros) const;

    /// Sample count of class (hd, zeros) after clustering.
    [[nodiscard]] std::size_t sample_count(int hd, int zeros) const;

    /// The embedded basic model.
    [[nodiscard]] const HdModel& fallback() const noexcept { return fallback_; }

    /// Total average deviation over populated classes.
    [[nodiscard]] double average_deviation() const;

    /// Total number of stored (populated or not) coefficients — the
    /// paper's M = (m²+m)/2 for unclustered models.
    [[nodiscard]] std::size_t num_coefficients() const;

    /// --- Estimation -------------------------------------------------

    /// Charge of a transition with Hamming distance @p hd and @p zeros
    /// stable zero bits.
    [[nodiscard]] double estimate_cycle(int hd, int zeros) const;

    /// Per-cycle charges for a pattern stream.
    [[nodiscard]] std::vector<double> estimate_cycles(
        std::span<const util::BitVec> patterns) const;

    /// Average charge per cycle for a pattern stream.
    [[nodiscard]] double estimate_average(std::span<const util::BitVec> patterns) const;

    /// Statistical estimate: average charge from a Hamming-distance
    /// distribution p(Hd = i), i = 0..m, plus a per-class *expected*
    /// stable-zero count (clamped into [0, m-i]). This lets the enhanced
    /// model be driven by word-level statistics alone — e.g. a constant
    /// operand contributes its literal zero bits — at the cost of
    /// collapsing the zero-count distribution to its mean.
    [[nodiscard]] double estimate_from_distribution(
        std::span<const double> hd_distribution,
        std::span<const double> expected_zeros) const;

    /// Average charge per cycle from an integer (Hd, stable-zero) class
    /// histogram: Σ count(i,z)·p_{i,z} / pairs. Exact class resolution —
    /// no expected-zeros collapse — and integer-exact classification.
    [[nodiscard]] double estimate_from_histogram(
        const streams::HdClassHistogram& histogram) const;

    /// Average charge per cycle for a packed trace via the word-parallel
    /// (Hd, stable-zero) classification kernels. Agrees with
    /// estimate_average on the expanded patterns up to FP summation order.
    [[nodiscard]] double estimate_trace(const streams::PackedTrace& trace,
                                        const streams::KernelOptions& options = {}) const;

    /// --- Serialization ----------------------------------------------

    void save(std::ostream& os) const;
    [[nodiscard]] static EnhancedHdModel load(std::istream& is);

private:
    int input_bits_ = 0;
    int zero_clusters_ = 0;
    std::vector<std::vector<double>> coefficients_;
    std::vector<std::vector<double>> deviations_;
    std::vector<std::vector<std::size_t>> samples_;
    HdModel fallback_;
};

} // namespace hdpm::core
