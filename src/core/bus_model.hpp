#pragma once

#include <span>

#include "stats/datamodel.hpp"
#include "streams/bitstats.hpp"
#include "streams/wordstats.hpp"
#include "util/bitvec.hpp"

namespace hdpm::core {

/// Charge model of an N-bit interconnect segment (a bus, or the output
/// bank of a register file): every line carries the same capacitance, so a
/// cycle's switching charge is exactly proportional to the Hamming
/// distance — the idealized setting in which Hd *is* the power, and the
/// case the low-power encoding literature (and the paper's introduction)
/// reasons about.
///
/// An optional per-cycle clock load models registered buses: it is drawn
/// every cycle regardless of data activity.
class BusPowerModel {
public:
    /// @p line_cap_ff per-line capacitance [fF]; @p clock_cap_ff total
    /// clock-network capacitance switched every cycle (0 = plain wires).
    BusPowerModel(int width, double line_cap_ff, double vdd_v = 3.3,
                  double clock_cap_ff = 0.0);

    [[nodiscard]] int width() const noexcept { return width_; }

    /// Charge drawn per toggling line [fC].
    [[nodiscard]] double charge_per_toggle_fc() const noexcept { return per_toggle_fc_; }

    /// Charge of one cycle with Hamming distance @p hd.
    [[nodiscard]] double estimate_cycle(int hd) const;

    /// Average charge per cycle over a pattern stream.
    [[nodiscard]] double estimate_average(std::span<const util::BitVec> patterns) const;

    /// Average charge from an Hd distribution (index 0..width).
    [[nodiscard]] double estimate_from_distribution(
        std::span<const double> hd_distribution) const;

    /// Fully analytic estimate from word-level statistics under a number
    /// representation — e.g. to size the win of sign-magnitude encoding on
    /// a long bus without any simulation.
    [[nodiscard]] double estimate_from_stats(const streams::WordStats& stats,
                                             streams::NumberFormat format) const;

private:
    int width_;
    double per_toggle_fc_;
    double clock_fc_;
};

} // namespace hdpm::core
