#include "core/estimator.hpp"

#include "util/error.hpp"

namespace hdpm::core {

StatisticalEstimate estimate_from_word_stats(
    const HdModel& model, std::span<const streams::WordStats> operand_stats)
{
    HDPM_REQUIRE(!operand_stats.empty(), "no operand statistics");
    int total_bits = 0;
    for (const auto& stats : operand_stats) {
        total_bits += stats.width;
    }
    HDPM_REQUIRE(total_bits == model.input_bits(), "operand widths sum to ", total_bits,
                 " but the model has m=", model.input_bits());

    stats::HdDistribution combined = stats::compute_hd_distribution(operand_stats[0]);
    double avg_hd = stats::analytic_average_hd(operand_stats[0]);
    for (std::size_t i = 1; i < operand_stats.size(); ++i) {
        combined =
            stats::combine_independent(combined, stats::compute_hd_distribution(operand_stats[i]));
        avg_hd += stats::analytic_average_hd(operand_stats[i]);
    }

    StatisticalEstimate estimate;
    estimate.from_distribution_fc = model.estimate_from_distribution(combined.p);
    estimate.from_average_hd_fc = model.estimate_from_average_hd(avg_hd);
    estimate.distribution = std::move(combined);
    estimate.average_hd = avg_hd;
    return estimate;
}

} // namespace hdpm::core
