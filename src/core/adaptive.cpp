#include "core/adaptive.hpp"

#include "util/error.hpp"

namespace hdpm::core {

AdaptiveHdModel::AdaptiveHdModel(HdModel initial, double learning_rate)
    : input_bits_(initial.input_bits()),
      learning_rate_(learning_rate),
      coefficients_(initial.coefficients().begin(), initial.coefficients().end())
{
    HDPM_REQUIRE(learning_rate > 0.0 && learning_rate <= 1.0, "learning rate ",
                 learning_rate, " outside (0, 1]");
}

double AdaptiveHdModel::coefficient(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= input_bits_, "Hd ", hd, " outside [1, ", input_bits_,
                 "]");
    return coefficients_[static_cast<std::size_t>(hd - 1)];
}

double AdaptiveHdModel::estimate_cycle(int hd) const
{
    return hd == 0 ? 0.0 : coefficient(hd);
}

double AdaptiveHdModel::observe(int hd, double reference_charge_fc)
{
    HDPM_REQUIRE(hd >= 0 && hd <= input_bits_, "Hd ", hd, " outside [0, ", input_bits_,
                 "]");
    const double estimate = estimate_cycle(hd);
    if (hd > 0) {
        double& p = coefficients_[static_cast<std::size_t>(hd - 1)];
        p += learning_rate_ * (reference_charge_fc - p);
    }
    return estimate;
}

HdModel AdaptiveHdModel::snapshot() const
{
    return HdModel{input_bits_, coefficients_};
}

} // namespace hdpm::core
