#include "core/workloads.hpp"

#include "util/error.hpp"

namespace hdpm::core {

using util::BitVec;

std::vector<std::vector<std::int64_t>> make_operand_streams(
    const dp::DatapathModule& module, streams::DataType type, std::size_t n,
    std::uint64_t seed)
{
    std::vector<std::vector<std::int64_t>> result;
    result.reserve(module.operand_widths().size());
    for (std::size_t op = 0; op < module.operand_widths().size(); ++op) {
        // Distinct, decorrelated seeds per operand.
        const std::uint64_t op_seed = seed + 7919 * (op + 1);
        result.push_back(
            streams::generate_stream(type, module.operand_widths()[op], n, op_seed));
    }
    return result;
}

std::vector<BitVec> encode_module_stream(
    const dp::DatapathModule& module,
    std::span<const std::vector<std::int64_t>> operand_values)
{
    HDPM_REQUIRE(operand_values.size() == module.operand_widths().size(),
                 "operand stream count mismatch");
    const std::size_t n = operand_values.front().size();
    for (const auto& stream : operand_values) {
        HDPM_REQUIRE(stream.size() == n, "operand streams must have equal length");
    }

    std::vector<BitVec> patterns;
    patterns.reserve(n);
    std::vector<std::int64_t> row(operand_values.size());
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t op = 0; op < operand_values.size(); ++op) {
            row[op] = operand_values[op][j];
        }
        patterns.push_back(module.encode(row));
    }
    return patterns;
}

std::vector<BitVec> make_module_stream(const dp::DatapathModule& module,
                                       streams::DataType type, std::size_t n,
                                       std::uint64_t seed)
{
    const auto operands = make_operand_streams(module, type, n, seed);
    return encode_module_stream(module, operands);
}

} // namespace hdpm::core
