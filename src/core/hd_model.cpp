#include "core/hd_model.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/interp.hpp"

namespace hdpm::core {

using util::BitVec;

HdModel::HdModel(int input_bits, std::vector<double> coefficients,
                 std::vector<double> deviations, std::vector<std::size_t> sample_counts)
    : input_bits_(input_bits),
      coefficients_(std::move(coefficients)),
      deviations_(std::move(deviations)),
      samples_(std::move(sample_counts))
{
    HDPM_REQUIRE(input_bits_ >= 1, "model needs at least one input bit");
    HDPM_REQUIRE(static_cast<int>(coefficients_.size()) == input_bits_,
                 "expected ", input_bits_, " coefficients, got ", coefficients_.size());
    HDPM_REQUIRE(deviations_.empty() ||
                     deviations_.size() == coefficients_.size(),
                 "deviation vector size mismatch");
    HDPM_REQUIRE(samples_.empty() || samples_.size() == coefficients_.size(),
                 "sample count vector size mismatch");
}

double HdModel::coefficient(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= input_bits_, "Hd ", hd, " outside [1, ", input_bits_,
                 "]");
    return coefficients_[static_cast<std::size_t>(hd - 1)];
}

double HdModel::deviation(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= input_bits_, "Hd ", hd, " outside [1, ", input_bits_,
                 "]");
    return deviations_.empty() ? 0.0 : deviations_[static_cast<std::size_t>(hd - 1)];
}

std::size_t HdModel::sample_count(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= input_bits_, "Hd ", hd, " outside [1, ", input_bits_,
                 "]");
    return samples_.empty() ? 0 : samples_[static_cast<std::size_t>(hd - 1)];
}

double HdModel::average_deviation() const
{
    if (deviations_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    int populated = 0;
    for (std::size_t i = 0; i < deviations_.size(); ++i) {
        const bool has_samples = samples_.empty() || samples_[i] > 0;
        if (has_samples) {
            sum += deviations_[i];
            ++populated;
        }
    }
    return populated > 0 ? sum / populated : 0.0;
}

double HdModel::estimate_cycle(int hd) const
{
    if (hd == 0) {
        return 0.0;
    }
    return coefficient(hd);
}

std::vector<double> HdModel::estimate_cycles(std::span<const BitVec> patterns) const
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    // Validate widths once up front; the classification loop then runs
    // check-free. The first offending pattern reports the same message the
    // old in-loop check produced.
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == input_bits_, "pattern width ",
                     patterns[j].width(), " vs model m=", input_bits_);
    }
    std::vector<double> q;
    q.reserve(patterns.size() - 1);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        const int hd = BitVec::hamming_distance(patterns[j - 1], patterns[j]);
        q.push_back(estimate_cycle(hd));
    }
    return q;
}

double HdModel::estimate_average(std::span<const BitVec> patterns) const
{
    const std::vector<double> q = estimate_cycles(patterns);
    double total = 0.0;
    for (const double v : q) {
        total += v;
    }
    return total / static_cast<double>(q.size());
}

double HdModel::estimate_from_distribution(std::span<const double> hd_distribution) const
{
    HDPM_REQUIRE(static_cast<int>(hd_distribution.size()) == input_bits_ + 1,
                 "distribution must have m+1 entries (Hd = 0..m), got ",
                 hd_distribution.size());
    double q = 0.0;
    for (int i = 1; i <= input_bits_; ++i) {
        q += hd_distribution[static_cast<std::size_t>(i)] * coefficient(i);
    }
    return q;
}

double HdModel::estimate_from_histogram(const streams::HdHistogram& histogram) const
{
    HDPM_REQUIRE(histogram.width == input_bits_, "histogram width ", histogram.width,
                 " vs model m=", input_bits_);
    HDPM_REQUIRE(histogram.pairs > 0, "empty histogram");
    HDPM_REQUIRE(histogram.counts.size() == static_cast<std::size_t>(input_bits_) + 1,
                 "histogram must have m+1 bins, got ", histogram.counts.size());
    double total = 0.0;
    for (int i = 1; i <= input_bits_; ++i) {
        const std::uint64_t n = histogram.counts[static_cast<std::size_t>(i)];
        if (n != 0) {
            total += static_cast<double>(n) * coefficients_[static_cast<std::size_t>(i - 1)];
        }
    }
    return total / static_cast<double>(histogram.pairs);
}

double HdModel::estimate_trace(const streams::PackedTrace& trace,
                               const streams::KernelOptions& options) const
{
    HDPM_REQUIRE(trace.width() == input_bits_, "trace width ", trace.width(),
                 " vs model m=", input_bits_);
    return estimate_from_histogram(streams::hd_histogram(trace, options));
}

double HdModel::estimate_from_average_hd(double hd_avg) const
{
    HDPM_REQUIRE(hd_avg >= 0.0, "negative average Hd");
    if (hd_avg <= 0.0) {
        return 0.0;
    }
    // Below Hd = 1, interpolate towards Q(0) = 0.
    if (hd_avg < 1.0) {
        return hd_avg * coefficients_.front();
    }
    return util::interp_on_unit_grid(coefficients_, hd_avg);
}

void HdModel::save(std::ostream& os) const
{
    const auto old_precision = os.precision(17); // lossless double round trip
    os << "hdmodel 1\n";
    os << "m " << input_bits_ << '\n';
    for (int i = 1; i <= input_bits_; ++i) {
        os << i << ' ' << coefficient(i) << ' ' << deviation(i) << ' ' << sample_count(i)
           << '\n';
    }
    os << "end\n";
    os.precision(old_precision);
}

HdModel HdModel::load(std::istream& is)
{
    std::string tag;
    int version = 0;
    is >> tag >> version;
    if (!is || tag != "hdmodel" || version != 1) {
        HDPM_FAIL("not a version-1 hdmodel file");
    }
    int m = 0;
    is >> tag >> m;
    if (!is || tag != "m" || m < 1) {
        HDPM_FAIL("malformed hdmodel header");
    }
    std::vector<double> coeffs(static_cast<std::size_t>(m), 0.0);
    std::vector<double> devs(static_cast<std::size_t>(m), 0.0);
    std::vector<std::size_t> counts(static_cast<std::size_t>(m), 0);
    for (int i = 1; i <= m; ++i) {
        int idx = 0;
        double p = 0.0;
        double eps = 0.0;
        std::size_t n = 0;
        is >> idx >> p >> eps >> n;
        if (!is || idx != i) {
            HDPM_FAIL("malformed hdmodel row ", i);
        }
        if (!std::isfinite(p) || !std::isfinite(eps)) {
            // A syntactically valid row can still carry rot: a NaN/inf
            // coefficient would silently poison every later estimate.
            util::FaultContext context;
            context.component = "hdmodel";
            context.bitwidth = m;
            context.detail = "non-finite coefficient in row " + std::to_string(i);
            throw util::FaultError{util::FaultKind::ModelFileCorrupt,
                                   std::move(context)};
        }
        coeffs[static_cast<std::size_t>(i - 1)] = p;
        devs[static_cast<std::size_t>(i - 1)] = eps;
        counts[static_cast<std::size_t>(i - 1)] = n;
    }
    is >> tag;
    if (!is || tag != "end") {
        HDPM_FAIL("hdmodel file missing 'end'");
    }
    return HdModel{m, std::move(coeffs), std::move(devs), std::move(counts)};
}

} // namespace hdpm::core
