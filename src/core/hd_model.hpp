#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "streams/kernels.hpp"
#include "util/bitvec.hpp"

namespace hdpm::core {

/// The basic Hamming-distance power macro-model (paper section 3).
///
/// A module with m input bits has m switching-event classes E_i, one per
/// Hamming distance i of consecutive input vectors; each class carries a
/// power coefficient p_i (the average charge of such a transition, eq. 2/4)
/// and an average relative deviation ε_i (eq. 5). The cycle charge of a
/// transition with Hamming distance i is estimated as Q = p_i.
///
/// Coefficients are produced by the Characterizer or by a
/// ParameterizableModel (regression over bit-widths, section 5).
class HdModel {
public:
    HdModel() = default;

    /// Construct from per-class data; @p coefficients holds p_1..p_m
    /// (index 0 = Hd 1). @p deviations (ε_i) and @p sample_counts are
    /// optional and may be empty.
    HdModel(int input_bits, std::vector<double> coefficients,
            std::vector<double> deviations = {},
            std::vector<std::size_t> sample_counts = {});

    /// Number of input bits m (= number of event classes).
    [[nodiscard]] int input_bits() const noexcept { return input_bits_; }

    /// Coefficient p_i for Hamming distance @p hd ∈ [1, m].
    [[nodiscard]] double coefficient(int hd) const;

    /// Average relative deviation ε_i of class @p hd (0 if unknown).
    [[nodiscard]] double deviation(int hd) const;

    /// Characterization sample count of class @p hd (0 if unknown).
    [[nodiscard]] std::size_t sample_count(int hd) const;

    /// All coefficients p_1..p_m.
    [[nodiscard]] std::span<const double> coefficients() const noexcept
    {
        return coefficients_;
    }

    /// Total average coefficient deviation ε = (1/m)·Σ ε_i over populated
    /// classes (the paper's figure-of-merit for fig. 1).
    [[nodiscard]] double average_deviation() const;

    /// --- Estimation -------------------------------------------------

    /// Charge of one transition with Hamming distance @p hd (0 → 0).
    [[nodiscard]] double estimate_cycle(int hd) const;

    /// Per-cycle charges for a pattern stream (n patterns → n-1 cycles).
    [[nodiscard]] std::vector<double> estimate_cycles(
        std::span<const util::BitVec> patterns) const;

    /// Average charge per cycle for a pattern stream.
    [[nodiscard]] double estimate_average(std::span<const util::BitVec> patterns) const;

    /// Average charge per cycle from a Hamming-distance distribution
    /// p(Hd = i), i = 0..m (section 6.2/6.3: Σ p(Hd=i)·p_i).
    [[nodiscard]] double estimate_from_distribution(
        std::span<const double> hd_distribution) const;

    /// Average charge per cycle from an integer Hd histogram:
    /// Σ counts[i]·p_i / pairs. The histogram form keeps classification
    /// integer-exact; only this final dot product is floating point.
    [[nodiscard]] double estimate_from_histogram(
        const streams::HdHistogram& histogram) const;

    /// Average charge per cycle for a packed trace: classify transitions
    /// with the word-parallel kernels (histogram), then reduce. Agrees with
    /// estimate_average on the expanded patterns up to FP summation order.
    [[nodiscard]] double estimate_trace(const streams::PackedTrace& trace,
                                        const streams::KernelOptions& options = {}) const;

    /// Average charge per cycle from only the average Hamming distance,
    /// linearly interpolating between coefficients (section 6.2). This is
    /// the estimator whose error figure 6 quantifies.
    [[nodiscard]] double estimate_from_average_hd(double hd_avg) const;

    /// --- Serialization ----------------------------------------------

    /// Write the model in the library's text format.
    void save(std::ostream& os) const;

    /// Read a model written by save(). Throws RuntimeError on bad input.
    [[nodiscard]] static HdModel load(std::istream& is);

private:
    int input_bits_ = 0;
    std::vector<double> coefficients_;   ///< p_1..p_m
    std::vector<double> deviations_;     ///< ε_1..ε_m (may be empty)
    std::vector<std::size_t> samples_;   ///< per-class sample counts (may be empty)
};

} // namespace hdpm::core
