#include "core/characterize.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/model_library.hpp"
#include "sim/batched.hpp"
#include "sim/sim_context.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/linalg.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace hdpm::core {

using util::BitVec;
using util::Rng;

namespace {

/// A uniformly random mask of exactly @p bits set bits out of @p m
/// (partial Fisher–Yates over bit positions).
BitVec random_mask(int m, int bits, Rng& rng, std::vector<int>& scratch)
{
    scratch.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        scratch[static_cast<std::size_t>(i)] = i;
    }
    BitVec mask{m};
    for (int i = 0; i < bits; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(m - 1)));
        std::swap(scratch[static_cast<std::size_t>(i)], scratch[j]);
        mask.set(scratch[static_cast<std::size_t>(i)], true);
    }
    return mask;
}

BitVec random_vector(int m, Rng& rng)
{
    return BitVec{m, rng.next_u64()};
}

/// Zero-cluster geometry shared by fitting and the EnhancedHdModel itself.
int clusters_for(int m, int hd, int zero_clusters)
{
    const int levels = m - hd + 1;
    return zero_clusters == 0 ? levels : std::min(zero_clusters, levels);
}

int cluster_index(int m, int hd, int zeros, int zero_clusters)
{
    const int levels = m - hd + 1;
    const int clusters = clusters_for(m, hd, zero_clusters);
    if (clusters == levels) {
        return zeros;
    }
    return std::min(clusters - 1, zeros * clusters / levels);
}

/// Convergence monitor over per-class running means.
class ConvergenceMonitor {
public:
    explicit ConvergenceMonitor(std::size_t num_classes)
        : sum_(num_classes, 0.0), count_(num_classes, 0), snapshot_(num_classes, 0.0)
    {
    }

    void add(std::size_t cls, double q)
    {
        sum_[cls] += q;
        ++count_[cls];
    }

    /// Max relative drift of populated class means since the last call;
    /// takes a new snapshot.
    double drift_and_snapshot()
    {
        double max_drift = 0.0;
        for (std::size_t i = 0; i < sum_.size(); ++i) {
            if (count_[i] == 0) {
                continue;
            }
            const double mean = sum_[i] / static_cast<double>(count_[i]);
            if (snapshot_[i] > 0.0) {
                max_drift = std::max(max_drift,
                                     std::abs(mean - snapshot_[i]) / snapshot_[i]);
            } else {
                max_drift = 1.0; // newly populated class: not converged yet
            }
            snapshot_[i] = mean;
        }
        return max_drift;
    }

private:
    std::vector<double> sum_;
    std::vector<std::size_t> count_;
    std::vector<double> snapshot_;
};

} // namespace

const char* char_backend_name(CharBackend backend) noexcept
{
    return backend == CharBackend::PowerEmulation ? "power-emulation" : "event-kernel";
}

Characterizer::Characterizer(const gate::TechLibrary& library,
                             sim::EventSimOptions sim_options)
    : library_(&library), sim_options_(sim_options)
{
}

namespace {

/// Result of one independently simulated stimulus shard.
struct ShardResult {
    std::vector<CharacterizationRecord> records;
    std::uint64_t sim_transitions = 0; ///< net toggles (event: incl. glitches)
    std::uint64_t warmup_vectors = 0;  ///< pairs-mode warm-up vectors settled
    std::uint64_t warmup_batches = 0;  ///< 64-lane batched settle passes
    std::uint64_t emulation_passes = 0; ///< 64-lane zero-delay settle passes
    sim::KernelStats kernel;           ///< scheduler counters of the shard's simulator
};

/// One shard's deterministic stimulus stream, factored out of the shard
/// runners so the event kernel, the power-emulation backend, and the
/// glitch-calibration pass all draw *identical* (u, v) sequences for a
/// given (seed, shard): same Rng seeding, same consumption order, same
/// stratification cycles.
class StimulusStream {
public:
    StimulusStream(int m, StimulusMode mode, std::uint64_t seed, std::uint64_t shard)
        : m_(m), mode_(mode), rng_(seed ^ util::splitmix64(shard))
    {
        hd_cycle_.resize(static_cast<std::size_t>(m));
        for (int i = 0; i < m; ++i) {
            hd_cycle_[static_cast<std::size_t>(i)] = i + 1;
        }
        rng_.shuffle(hd_cycle_);
        if (mode == StimulusMode::StratifiedPairs) {
            for (int hd = 1; hd <= m; ++hd) {
                for (int z = 0; z <= m - hd; ++z) {
                    class_cycle_.emplace_back(hd, z);
                }
            }
            rng_.shuffle(class_cycle_);
        }
        current_ = random_vector(m, rng_);
        stable_.reserve(static_cast<std::size_t>(m));
    }

    /// Chain modes: the current chain head (the start vector before the
    /// first chain_next() call).
    [[nodiscard]] const BitVec& current() const noexcept { return current_; }

    /// Pairs mode: generate the next stratified (u, v) pair — u with the
    /// prescribed stable-zero layout, v = u ^ mask — and return its
    /// (hd, stable-zeros) class.
    std::pair<int, int> next_pair(BitVec& u, BitVec& v)
    {
        const std::pair<int, int> cls = class_cycle_[class_cursor_];
        class_cursor_ = (class_cursor_ + 1) % class_cycle_.size();
        const auto [hd, zeros] = cls;
        const BitVec mask = random_mask(m_, hd, rng_, scratch_);
        u = BitVec{m_};
        // Positions outside the mask: exactly `zeros` of them are 0.
        stable_.clear();
        for (int i = 0; i < m_; ++i) {
            if (!mask.get(i)) {
                stable_.push_back(i);
            }
        }
        rng_.shuffle(stable_);
        for (std::size_t s = 0; s < stable_.size(); ++s) {
            u.set(stable_[s], s >= static_cast<std::size_t>(zeros));
        }
        for (int i = 0; i < m_; ++i) {
            if (mask.get(i)) {
                u.set(i, rng_.bernoulli(0.5));
            }
        }
        v = u ^ mask;
        return cls;
    }

    /// Chain modes: advance the chain by one vector and return it (the
    /// previous head is current() before the call). The head advances even
    /// when the step has Hd = 0 — callers skip such steps, exactly as the
    /// original chain loop did.
    BitVec chain_next()
    {
        BitVec next{m_};
        if (mode_ == StimulusMode::RandomChain) {
            next = random_vector(m_, rng_);
        } else {
            const int hd = hd_cycle_[hd_cursor_];
            hd_cursor_ = (hd_cursor_ + 1) % hd_cycle_.size();
            if (hd_cursor_ == 0) {
                rng_.shuffle(hd_cycle_);
            }
            next = current_ ^ random_mask(m_, hd, rng_, scratch_);
        }
        current_ = next;
        return next;
    }

private:
    int m_;
    StimulusMode mode_;
    Rng rng_;
    std::vector<int> scratch_; // random_mask position pool
    std::vector<int> stable_;  // stable-position pool, reused per pair
    std::vector<int> hd_cycle_;
    std::size_t hd_cursor_ = 0;
    std::vector<std::pair<int, int>> class_cycle_; // (hd, zeros), pairs mode
    std::size_t class_cursor_ = 0;
    BitVec current_;
};

/// Simulate exactly @p count transitions of shard @p shard. Each shard is a
/// self-contained stimulus stream: its own Rng (seeded seed^splitmix64(shard)
/// so shard streams are decorrelated), its own stratification cycles, its
/// own start vector, and its own EventSimulator over the shared immutable
/// context. Nothing here depends on which thread runs the shard or on how
/// many shards run concurrently — that is the whole determinism argument.
ShardResult run_shard(const sim::SimContext& context, int m, StimulusMode mode,
                      const CharacterizationOptions& options,
                      const sim::EventSimOptions& sim_options, std::size_t shard,
                      std::size_t count, const std::function<void()>& tick = {})
{
    if (HDPM_FAULT_FIRE(util::FaultPoint::ShardException)) {
        util::FaultContext context;
        context.shard = static_cast<std::int64_t>(shard);
        context.detail = "injected shard failure";
        throw util::FaultError{util::FaultKind::ShardFailed, std::move(context)};
    }

    ShardResult out;
    out.records.reserve(count);

    StimulusStream stimulus{m, mode, options.seed, shard};
    sim::EventSimulator simulator{context, sim_options};
    if (mode != StimulusMode::StratifiedPairs) {
        simulator.initialize(stimulus.current());
    }

    if (mode == StimulusMode::StratifiedPairs) {
        // Stimulus is generated in blocks of up to kLanes (u, v) pairs into
        // flat reusable arenas, then all warm-up vectors of a block settle
        // in one word-parallel BatchedEvaluator pass (borrowing the shard's
        // compiled view) and each lane is scattered into the event
        // simulator via load_state before the timed apply. RNG consumption
        // order is identical to per-record generation, and the zero-delay
        // fixpoint of u is unique, so records are bit-identical to the
        // WarmupMode::PerRecord baseline. The loop body performs no heap
        // allocation in steady state (tests/steady_alloc_test.cpp).
        constexpr std::size_t kLanes =
            static_cast<std::size_t>(sim::BatchedEvaluator::kLanes);
        const bool batched = options.warmup == WarmupMode::Batched;
        std::optional<sim::BatchedEvaluator> evaluator;
        std::vector<std::uint8_t> lane_values;
        if (batched) {
            evaluator.emplace(context);
            lane_values.resize(context.netlist().num_nets());
        }

        std::array<BitVec, kLanes> u_block;
        std::array<BitVec, kLanes> v_block;
        std::array<std::pair<int, int>, kLanes> cls_block; // (hd, zeros)

        while (out.records.size() < count) {
            if (tick) {
                tick(); // mid-shard heartbeat hook, once per 64-pair batch
            }
            const std::size_t block =
                std::min<std::size_t>(kLanes, count - out.records.size());
            for (std::size_t j = 0; j < block; ++j) {
                cls_block[j] = stimulus.next_pair(u_block[j], v_block[j]);
            }

            if (batched) {
                evaluator->settle({u_block.data(), block});
                ++out.warmup_batches;
            }
            out.warmup_vectors += block;

            for (std::size_t j = 0; j < block; ++j) {
                if (batched) {
                    evaluator->export_lane(static_cast<int>(j), lane_values);
                    simulator.load_state(u_block[j], lane_values);
                } else {
                    simulator.initialize(u_block[j]);
                }
                const sim::CycleResult cycle = simulator.apply(v_block[j]);
                CharacterizationRecord rec;
                rec.hd = cls_block[j].first;
                rec.stable_zeros = cls_block[j].second;
                rec.charge_fc = cycle.charge_fc;
                rec.toggle_mask = (u_block[j] ^ v_block[j]).raw();
                out.sim_transitions += cycle.transitions;
                out.records.push_back(rec);
            }
        }
        out.kernel = simulator.kernel_stats();
        return out;
    }

    while (out.records.size() < count) {
        if (tick && out.records.size() % 64 == 0) {
            tick(); // mid-shard heartbeat hook, every 64 chain transitions
        }
        CharacterizationRecord rec;
        const BitVec previous = stimulus.current();
        const BitVec next = stimulus.chain_next();
        const int hd = BitVec::hamming_distance(previous, next);
        if (hd == 0) {
            continue; // Hd = 0 transitions carry no class information
        }
        const sim::CycleResult cycle = simulator.apply(next);
        rec.hd = hd;
        rec.stable_zeros = BitVec::stable_zeros(previous, next);
        rec.charge_fc = cycle.charge_fc;
        rec.toggle_mask = (previous ^ next).raw();
        out.sim_transitions += cycle.transitions;
        out.records.push_back(rec);
    }
    out.kernel = simulator.kernel_stats();
    return out;
}

/// Power-emulation shard: the *exact* stimulus stream run_shard would draw
/// for the same (seed, shard), scored word-parallel instead of event by
/// event. Pair charges are toggle-weighted sums of @p weights (per-net
/// per-toggle charge with the calibrated glitch correction already folded
/// in): 64 pairs per settle_pairs call in pairs mode, 63 transitions per
/// settle pass in chain modes. No event simulator is constructed at all —
/// this is the backend's whole speed argument.
ShardResult run_shard_emulation(const sim::SimContext& context, int m,
                                StimulusMode mode,
                                const CharacterizationOptions& options,
                                std::span<const double> weights, std::size_t shard,
                                std::size_t count,
                                const std::function<void()>& tick = {})
{
    if (HDPM_FAULT_FIRE(util::FaultPoint::ShardException)) {
        util::FaultContext fault_context;
        fault_context.shard = static_cast<std::int64_t>(shard);
        fault_context.detail = "injected shard failure";
        throw util::FaultError{util::FaultKind::ShardFailed, std::move(fault_context)};
    }

    ShardResult out;
    out.records.reserve(count);
    StimulusStream stimulus{m, mode, options.seed, shard};
    sim::BatchedEvaluator evaluator{context};

    if (mode == StimulusMode::StratifiedPairs) {
        constexpr std::size_t kLanes =
            static_cast<std::size_t>(sim::BatchedEvaluator::kLanes);
        std::array<BitVec, kLanes> u_block;
        std::array<BitVec, kLanes> v_block;
        std::array<std::pair<int, int>, kLanes> cls_block; // (hd, zeros)
        std::array<double, kLanes> charges;

        while (out.records.size() < count) {
            if (tick) {
                tick(); // mid-shard heartbeat hook, once per 64-pair batch
            }
            const std::size_t block =
                std::min<std::size_t>(kLanes, count - out.records.size());
            for (std::size_t j = 0; j < block; ++j) {
                cls_block[j] = stimulus.next_pair(u_block[j], v_block[j]);
            }
            evaluator.settle_pairs({u_block.data(), block}, {v_block.data(), block});
            out.emulation_passes += 2; // one settle per pair side
            evaluator.weighted_pair_charges(weights, {charges.data(), block});
            for (const std::uint8_t toggles : evaluator.toggle_counts_per_net()) {
                out.sim_transitions += toggles;
            }
            for (std::size_t j = 0; j < block; ++j) {
                CharacterizationRecord rec;
                rec.hd = cls_block[j].first;
                rec.stable_zeros = cls_block[j].second;
                rec.charge_fc = charges[j];
                rec.toggle_mask = (u_block[j] ^ v_block[j]).raw();
                out.records.push_back(rec);
            }
        }
        return out;
    }

    // Chain modes: materialize the shard's chain with Hd = 0 steps dropped
    // — identical endpoints settle identically, so removing the duplicate
    // vector leaves every kept adjacent pair (and its zero-delay charge)
    // unchanged — then score it with the windowed weighted counter.
    std::vector<BitVec> chain;
    chain.reserve(count + 1);
    std::vector<std::pair<int, int>> cls; // (hd, zeros) per kept transition
    cls.reserve(count);
    chain.push_back(stimulus.current());
    while (cls.size() < count) {
        if (tick && cls.size() % 64 == 0) {
            tick();
        }
        const BitVec previous = chain.back();
        const BitVec next = stimulus.chain_next();
        const int hd = BitVec::hamming_distance(previous, next);
        if (hd == 0) {
            continue;
        }
        cls.emplace_back(hd, BitVec::stable_zeros(previous, next));
        chain.push_back(next);
    }
    if (tick) {
        tick();
    }

    std::vector<std::uint64_t> toggles;
    const std::vector<double> charges =
        evaluator.count_weighted_toggles(chain, weights, &toggles);
    const std::size_t window_pairs =
        static_cast<std::size_t>(sim::BatchedEvaluator::kLanes) - 1;
    out.emulation_passes += (chain.size() - 2) / window_pairs + 1;
    for (std::size_t i = 0; i < cls.size(); ++i) {
        CharacterizationRecord rec;
        rec.hd = cls[i].first;
        rec.stable_zeros = cls[i].second;
        rec.charge_fc = charges[i];
        rec.toggle_mask = (chain[i] ^ chain[i + 1]).raw();
        out.sim_transitions += toggles[i];
        out.records.push_back(rec);
    }
    return out;
}

/// Calibration shard ids live in their own half of the 64-bit shard space,
/// so `seed ^ splitmix64(id)` can never collide with a measurement shard's
/// stimulus stream.
constexpr std::uint64_t kCalibrationShardBase = std::uint64_t{1} << 63;

/// Per-net base charge per toggle under the event kernel's accounting:
/// cell outputs always draw their edge charge, primary inputs only when
/// the physics counts input charge, and nets nothing drives never toggle.
std::vector<double> base_charge_weights(const sim::SimContext& context,
                                        const sim::EventSimOptions& sim_options)
{
    const std::size_t nets = context.netlist().num_nets();
    std::vector<double> weights(nets, 0.0);
    for (netlist::NetId net = 0; net < nets; ++net) {
        if (context.is_cell_output(net)) {
            weights[net] = context.edge_charge_fc(net);
        }
    }
    if (sim_options.count_input_charge) {
        for (const netlist::NetId pi : context.netlist().primary_inputs()) {
            weights[pi] = context.edge_charge_fc(pi);
        }
    }
    return weights;
}

/// One calibration shard's aggregates: the same stimulus stream driven
/// through *both* engines.
struct CalibrationShard {
    std::vector<std::uint64_t> event_toggles; ///< per net, timed applies only
    std::vector<std::uint64_t> zero_toggles;  ///< per net, zero-delay settles
    double event_charge_fc = 0.0;             ///< event-kernel charge, summed
    std::uint64_t pairs = 0;                  ///< transitions simulated
};

CalibrationShard run_calibration_shard(const sim::SimContext& context, int m,
                                       StimulusMode mode,
                                       const CharacterizationOptions& options,
                                       const sim::EventSimOptions& sim_options,
                                       std::uint64_t shard_id, std::size_t count)
{
    CalibrationShard out;
    const std::size_t nets = context.netlist().num_nets();
    out.zero_toggles.assign(nets, 0);

    StimulusStream stimulus{m, mode, options.seed, shard_id};
    sim::EventSimulator simulator{context, sim_options};
    sim::BatchedEvaluator evaluator{context};
    constexpr std::size_t kLanes =
        static_cast<std::size_t>(sim::BatchedEvaluator::kLanes);

    if (mode == StimulusMode::StratifiedPairs) {
        std::array<BitVec, kLanes> u_block;
        std::array<BitVec, kLanes> v_block;
        while (out.pairs < count) {
            const std::size_t block = std::min<std::size_t>(kLanes, count - out.pairs);
            for (std::size_t j = 0; j < block; ++j) {
                (void)stimulus.next_pair(u_block[j], v_block[j]);
            }
            evaluator.settle_pairs({u_block.data(), block}, {v_block.data(), block});
            const auto counts = evaluator.toggle_counts_per_net();
            for (std::size_t net = 0; net < nets; ++net) {
                out.zero_toggles[net] += counts[net];
            }
            for (std::size_t j = 0; j < block; ++j) {
                simulator.initialize(u_block[j]);
                out.event_charge_fc += simulator.apply(v_block[j]).charge_fc;
            }
            out.pairs += block;
        }
    } else {
        std::vector<BitVec> chain;
        chain.reserve(count + 1);
        chain.push_back(stimulus.current());
        while (chain.size() < count + 1) {
            const BitVec previous = chain.back();
            const BitVec next = stimulus.chain_next();
            if (BitVec::hamming_distance(previous, next) == 0) {
                continue;
            }
            chain.push_back(next);
        }
        simulator.initialize(chain.front());
        for (std::size_t i = 1; i < chain.size(); ++i) {
            out.event_charge_fc += simulator.apply(chain[i]).charge_fc;
        }
        // Zero-delay per-net toggles over the same chain, in overlapping
        // 64-vector windows (count_toggles' boundary contract).
        std::size_t base = 0;
        while (base + 1 < chain.size()) {
            const std::size_t len = std::min<std::size_t>(kLanes, chain.size() - base);
            evaluator.settle({chain.data() + base, len});
            const std::size_t window_pairs = len - 1;
            const std::uint64_t pair_mask =
                window_pairs >= 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << window_pairs) - 1;
            const auto words = evaluator.lane_words();
            for (std::size_t net = 0; net < nets; ++net) {
                out.zero_toggles[net] += static_cast<std::uint64_t>(
                    std::popcount((words[net] ^ (words[net] >> 1)) & pair_mask));
            }
            base += window_pairs;
        }
        out.pairs = chain.size() - 1;
    }

    // The event kernel's per-net toggle totals: initialize()/load_state()
    // settle silently, so the cumulative counters cover exactly the timed
    // applies above.
    const std::vector<std::uint64_t>& cumulative = simulator.cumulative_transitions();
    out.event_toggles.assign(cumulative.begin(), cumulative.end());
    return out;
}

/// The emulation backend's calibrated weight vector plus its counters.
struct CalibrationResult {
    std::vector<double> weights; ///< per-net per-toggle charge, corrected
    std::uint64_t event_pairs = 0; ///< event-kernel transitions simulated
    double scale = 1.0;            ///< fitted residual glitch scale
};

/// Fit the glitch correction: per-cell-output toggle-ratio factors (event
/// toggles / zero-delay toggles — glitches multiply a net's toggle count
/// but never its per-toggle charge) folded into the base weights, then one
/// residual scale fitted with util::least_squares over per-shard
/// (corrected emulated total, event total) rows to absorb charge on nets
/// the zero-delay settles never toggled. Calibration shards reuse the
/// sharded seed scheme with ids offset by kCalibrationShardBase and are
/// merged in shard order, so the fit — like the records — is a pure
/// function of the stimulus plan, bit-identical for any thread count.
CalibrationResult calibrate_emulation(const sim::SimContext& context, int m,
                                      StimulusMode mode,
                                      const CharacterizationOptions& options,
                                      const sim::EventSimOptions& sim_options,
                                      const util::ThreadPool& pool)
{
    CalibrationResult out;
    out.weights = base_charge_weights(context, sim_options);
    if (options.calibration_pairs == 0) {
        return out;
    }

    const std::size_t shard_size =
        options.shard_size != 0 ? options.shard_size : options.batch;
    const std::size_t num_shards =
        (options.calibration_pairs + shard_size - 1) / shard_size;
    const auto shards = pool.parallel_map(num_shards, [&](std::size_t i) {
        const std::size_t planned =
            std::min(shard_size, options.calibration_pairs - i * shard_size);
        return run_calibration_shard(context, m, mode, options, sim_options,
                                     kCalibrationShardBase + i, planned);
    });

    const std::size_t nets = context.netlist().num_nets();
    std::vector<std::uint64_t> event_toggles(nets, 0);
    std::vector<std::uint64_t> zero_toggles(nets, 0);
    for (const CalibrationShard& shard : shards) {
        for (std::size_t net = 0; net < nets; ++net) {
            event_toggles[net] += shard.event_toggles[net];
            zero_toggles[net] += shard.zero_toggles[net];
        }
        out.event_pairs += shard.pairs;
    }

    // Per-cell factors on the nets the calibration set exercised. Primary
    // inputs never glitch (their ratio is exactly 1 by construction), and
    // a cell output the zero-delay settles never toggled contributes no
    // emulated charge for a factor to scale — the residual fit below
    // absorbs its glitch-only charge.
    for (netlist::NetId net = 0; net < nets; ++net) {
        if (context.is_cell_output(net) && zero_toggles[net] > 0) {
            out.weights[net] *= static_cast<double>(event_toggles[net]) /
                                static_cast<double>(zero_toggles[net]);
        }
    }

    // Residual scale: least squares through the origin, one row per
    // calibration shard.
    util::Matrix a{shards.size(), 1};
    std::vector<double> b(shards.size(), 0.0);
    double corrected_total = 0.0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        double corrected = 0.0;
        for (std::size_t net = 0; net < nets; ++net) {
            corrected +=
                out.weights[net] * static_cast<double>(shards[s].zero_toggles[net]);
        }
        a.at(s, 0) = corrected;
        b[s] = shards[s].event_charge_fc;
        corrected_total += corrected;
    }
    if (corrected_total > 0.0) {
        const std::vector<double> fit = util::least_squares(a, b);
        if (std::isfinite(fit[0]) && fit[0] > 0.0) {
            out.scale = fit[0];
        }
    }
    for (double& w : out.weights) {
        w *= out.scale;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Multi-corner single-sweep machinery (docs/corners.md). The amortization
// argument: per-net toggle activity is (exactly, for zero-delay settles;
// nearly, for the event kernel under uniform delay scaling) invariant
// across operating corners, so one stimulus sweep can score K corners by
// dotting shared toggle vectors against K per-corner charge tables.
// ---------------------------------------------------------------------------

/// One shard of a multi-corner sweep: K index-aligned record blocks.
struct MultiShardResult {
    std::vector<std::vector<CharacterizationRecord>> blocks; // per corner
    std::uint64_t sim_transitions = 0;
    std::uint64_t warmup_vectors = 0;
    std::uint64_t warmup_batches = 0;
    std::uint64_t emulation_passes = 0;
    sim::KernelStats kernel;
};

/// Event-kernel multi-corner shard: corner 0 is simulated exactly — the
/// same stimulus, warm-up, and event simulation run_shard performs, so its
/// block is bit-identical to a single-corner run — while per-cycle toggle
/// tracking feeds the remaining corners' charges as dot products against
/// @p transfer_weights (element k-1 scores corner k). The accumulation
/// iterates the cycle's toggled nets in first-toggle order, a
/// deterministic function of the simulation, so every corner's block is
/// bit-identical for any thread count.
MultiShardResult run_shard_event_multi(const sim::SimContext& context, int m,
                                       StimulusMode mode,
                                       const CharacterizationOptions& options,
                                       const sim::EventSimOptions& sim_options,
                                       std::span<const std::vector<double>> transfer_weights,
                                       std::size_t shard, std::size_t count)
{
    if (HDPM_FAULT_FIRE(util::FaultPoint::ShardException)) {
        util::FaultContext fault_context;
        fault_context.shard = static_cast<std::int64_t>(shard);
        fault_context.detail = "injected shard failure";
        throw util::FaultError{util::FaultKind::ShardFailed, std::move(fault_context)};
    }

    const std::size_t corners = transfer_weights.size() + 1;
    MultiShardResult out;
    out.blocks.resize(corners);
    for (auto& block : out.blocks) {
        block.reserve(count);
    }

    StimulusStream stimulus{m, mode, options.seed, shard};
    sim::EventSimulator simulator{context, sim_options};
    simulator.set_cycle_toggle_tracking(true);

    const auto push_records = [&](int hd, int zeros, std::uint64_t mask,
                                  const sim::CycleResult& cycle) {
        CharacterizationRecord rec;
        rec.hd = hd;
        rec.stable_zeros = zeros;
        rec.charge_fc = cycle.charge_fc;
        rec.toggle_mask = mask;
        out.blocks[0].push_back(rec);
        for (std::size_t k = 1; k < corners; ++k) {
            const std::vector<double>& weights = transfer_weights[k - 1];
            double charge = 0.0;
            for (const netlist::NetId net : simulator.cycle_toggled_nets()) {
                charge += weights[net] *
                          static_cast<double>(simulator.cycle_toggle_count(net));
            }
            rec.charge_fc = charge;
            out.blocks[k].push_back(rec);
        }
        out.sim_transitions += cycle.transitions;
    };

    if (mode == StimulusMode::StratifiedPairs) {
        // Mirrors run_shard's batched warm-up exactly (same RNG consumption,
        // same load_state adoption) so corner 0 stays bit-identical.
        constexpr std::size_t kLanes =
            static_cast<std::size_t>(sim::BatchedEvaluator::kLanes);
        const bool batched = options.warmup == WarmupMode::Batched;
        std::optional<sim::BatchedEvaluator> evaluator;
        std::vector<std::uint8_t> lane_values;
        if (batched) {
            evaluator.emplace(context);
            lane_values.resize(context.netlist().num_nets());
        }
        std::array<BitVec, kLanes> u_block;
        std::array<BitVec, kLanes> v_block;
        std::array<std::pair<int, int>, kLanes> cls_block;

        while (out.blocks[0].size() < count) {
            const std::size_t block =
                std::min<std::size_t>(kLanes, count - out.blocks[0].size());
            for (std::size_t j = 0; j < block; ++j) {
                cls_block[j] = stimulus.next_pair(u_block[j], v_block[j]);
            }
            if (batched) {
                evaluator->settle({u_block.data(), block});
                ++out.warmup_batches;
            }
            out.warmup_vectors += block;
            for (std::size_t j = 0; j < block; ++j) {
                if (batched) {
                    evaluator->export_lane(static_cast<int>(j), lane_values);
                    simulator.load_state(u_block[j], lane_values);
                } else {
                    simulator.initialize(u_block[j]);
                }
                const sim::CycleResult cycle = simulator.apply(v_block[j]);
                push_records(cls_block[j].first, cls_block[j].second,
                             (u_block[j] ^ v_block[j]).raw(), cycle);
            }
        }
        out.kernel = simulator.kernel_stats();
        return out;
    }

    simulator.initialize(stimulus.current());
    while (out.blocks[0].size() < count) {
        const BitVec previous = stimulus.current();
        const BitVec next = stimulus.chain_next();
        const int hd = BitVec::hamming_distance(previous, next);
        if (hd == 0) {
            continue;
        }
        const sim::CycleResult cycle = simulator.apply(next);
        push_records(hd, BitVec::stable_zeros(previous, next),
                     (previous ^ next).raw(), cycle);
    }
    out.kernel = simulator.kernel_stats();
    return out;
}

/// Power-emulation multi-corner shard: settle the stimulus once, score K
/// corners with K weighted dot products over the shared toggle words.
/// weight_sets[k] is corner k's independently calibrated weight vector, and
/// each corner's charges come from the same weighted_pair_charges /
/// count_weighted_toggles accumulation a single-corner run performs — so
/// every corner's block is bit-identical to an independent
/// run_shard_emulation at that corner.
MultiShardResult run_shard_emulation_multi(const sim::SimContext& context, int m,
                                           StimulusMode mode,
                                           const CharacterizationOptions& options,
                                           std::span<const std::vector<double>> weight_sets,
                                           std::size_t shard, std::size_t count)
{
    if (HDPM_FAULT_FIRE(util::FaultPoint::ShardException)) {
        util::FaultContext fault_context;
        fault_context.shard = static_cast<std::int64_t>(shard);
        fault_context.detail = "injected shard failure";
        throw util::FaultError{util::FaultKind::ShardFailed, std::move(fault_context)};
    }

    const std::size_t corners = weight_sets.size();
    MultiShardResult out;
    out.blocks.resize(corners);
    for (auto& block : out.blocks) {
        block.reserve(count);
    }
    StimulusStream stimulus{m, mode, options.seed, shard};
    sim::BatchedEvaluator evaluator{context};

    if (mode == StimulusMode::StratifiedPairs) {
        constexpr std::size_t kLanes =
            static_cast<std::size_t>(sim::BatchedEvaluator::kLanes);
        std::array<BitVec, kLanes> u_block;
        std::array<BitVec, kLanes> v_block;
        std::array<std::pair<int, int>, kLanes> cls_block;
        std::vector<std::array<double, kLanes>> charges(corners);

        while (out.blocks[0].size() < count) {
            const std::size_t block =
                std::min<std::size_t>(kLanes, count - out.blocks[0].size());
            for (std::size_t j = 0; j < block; ++j) {
                cls_block[j] = stimulus.next_pair(u_block[j], v_block[j]);
            }
            evaluator.settle_pairs({u_block.data(), block}, {v_block.data(), block});
            out.emulation_passes += 2;
            for (std::size_t k = 0; k < corners; ++k) {
                evaluator.weighted_pair_charges(weight_sets[k],
                                                {charges[k].data(), block});
            }
            for (const std::uint8_t toggles : evaluator.toggle_counts_per_net()) {
                out.sim_transitions += toggles;
            }
            for (std::size_t j = 0; j < block; ++j) {
                CharacterizationRecord rec;
                rec.hd = cls_block[j].first;
                rec.stable_zeros = cls_block[j].second;
                rec.toggle_mask = (u_block[j] ^ v_block[j]).raw();
                for (std::size_t k = 0; k < corners; ++k) {
                    rec.charge_fc = charges[k][j];
                    out.blocks[k].push_back(rec);
                }
            }
        }
        return out;
    }

    std::vector<BitVec> chain;
    chain.reserve(count + 1);
    std::vector<std::pair<int, int>> cls;
    cls.reserve(count);
    chain.push_back(stimulus.current());
    while (cls.size() < count) {
        const BitVec previous = chain.back();
        const BitVec next = stimulus.chain_next();
        const int hd = BitVec::hamming_distance(previous, next);
        if (hd == 0) {
            continue;
        }
        cls.emplace_back(hd, BitVec::stable_zeros(previous, next));
        chain.push_back(next);
    }

    std::vector<std::span<const double>> weight_spans;
    weight_spans.reserve(corners);
    for (const std::vector<double>& w : weight_sets) {
        weight_spans.emplace_back(w);
    }
    std::vector<std::vector<double>> charges(corners);
    std::vector<std::uint64_t> toggles;
    evaluator.count_weighted_toggles_multi(chain, weight_spans, charges, &toggles);
    const std::size_t window_pairs =
        static_cast<std::size_t>(sim::BatchedEvaluator::kLanes) - 1;
    out.emulation_passes += (chain.size() - 2) / window_pairs + 1;
    for (std::size_t i = 0; i < cls.size(); ++i) {
        CharacterizationRecord rec;
        rec.hd = cls[i].first;
        rec.stable_zeros = cls[i].second;
        rec.toggle_mask = (chain[i] ^ chain[i + 1]).raw();
        for (std::size_t k = 0; k < corners; ++k) {
            rec.charge_fc = charges[k][i];
            out.blocks[k].push_back(rec);
        }
        out.sim_transitions += toggles[i];
    }
    return out;
}

/// One corner-transfer calibration shard: the same stimulus subsample
/// driven through the event kernel at *every* corner. Corner 0's per-net
/// toggle totals are the transfer reference; each other corner contributes
/// its own toggle totals (for per-net glitch-ratio factors) and its total
/// event charge (for the residual scale fit).
struct CornerTransferShard {
    std::vector<std::uint64_t> ref_toggles;                 ///< per net, corner 0
    std::vector<std::vector<std::uint64_t>> corner_toggles; ///< [k-1][net]
    std::vector<double> corner_charge;                      ///< [k-1], summed
    std::uint64_t pairs = 0;                                ///< transitions per corner
};

CornerTransferShard run_corner_transfer_shard(
    std::span<const sim::SimContext* const> contexts, int m, StimulusMode mode,
    const CharacterizationOptions& options, const sim::EventSimOptions& sim_options,
    std::uint64_t shard_id, std::size_t count)
{
    const std::size_t corners = contexts.size();
    CornerTransferShard out;
    out.corner_toggles.resize(corners - 1);
    out.corner_charge.assign(corners - 1, 0.0);

    for (std::size_t c = 0; c < corners; ++c) {
        // A fresh stream per corner: identical (seed, shard) → identical
        // stimulus, so every corner sees the same transitions.
        StimulusStream stimulus{m, mode, options.seed, shard_id};
        sim::EventSimulator simulator{*contexts[c], sim_options};
        double charge = 0.0;
        std::uint64_t pairs = 0;
        if (mode == StimulusMode::StratifiedPairs) {
            BitVec u;
            BitVec v;
            while (pairs < count) {
                (void)stimulus.next_pair(u, v);
                simulator.initialize(u);
                charge += simulator.apply(v).charge_fc;
                ++pairs;
            }
        } else {
            simulator.initialize(stimulus.current());
            while (pairs < count) {
                const BitVec previous = stimulus.current();
                const BitVec next = stimulus.chain_next();
                if (BitVec::hamming_distance(previous, next) == 0) {
                    continue;
                }
                charge += simulator.apply(next).charge_fc;
                ++pairs;
            }
        }
        const std::vector<std::uint64_t>& toggles = simulator.cumulative_transitions();
        if (c == 0) {
            out.ref_toggles = toggles;
            out.pairs = pairs;
        } else {
            out.corner_toggles[c - 1] = toggles;
            out.corner_charge[c - 1] = charge;
        }
    }
    return out;
}

/// Per-corner transfer weights of an event-kernel multi-corner sweep.
struct CornerTransferResult {
    std::vector<std::vector<double>> weights; ///< [k-1][net], corrected + scaled
    std::vector<double> scales;               ///< fitted residual scale per corner
    std::uint64_t event_pairs = 0; ///< event transitions simulated (all corners)
};

/// Fit the corner-transfer correction, mirroring calibrate_emulation: per
/// cell-output toggle-ratio factors (corner-k event toggles / corner-0
/// event toggles — uniform delay scaling preserves event order up to
/// integer-ps rounding and the fixed inertial window, so these ratios sit
/// near 1) folded into corner k's base edge-charge weights, then one
/// residual scale per corner fitted with util::least_squares over
/// per-shard (transferred charge, corner-k event charge) rows. Calibration
/// shards reuse the kCalibrationShardBase id scheme and merge in shard
/// order — the fit is a pure function of the stimulus plan and corner
/// list, bit-identical for any thread count.
CornerTransferResult calibrate_corner_transfer(
    std::span<const sim::SimContext* const> contexts, int m, StimulusMode mode,
    const CharacterizationOptions& options, const sim::EventSimOptions& sim_options,
    const util::ThreadPool& pool)
{
    const std::size_t corners = contexts.size();
    CornerTransferResult out;
    out.weights.resize(corners - 1);
    out.scales.assign(corners - 1, 1.0);
    for (std::size_t k = 1; k < corners; ++k) {
        out.weights[k - 1] = base_charge_weights(*contexts[k], sim_options);
    }
    if (options.calibration_pairs == 0 || corners == 1) {
        return out;
    }

    const std::size_t shard_size =
        options.shard_size != 0 ? options.shard_size : options.batch;
    const std::size_t num_shards =
        (options.calibration_pairs + shard_size - 1) / shard_size;
    const auto shards = pool.parallel_map(num_shards, [&](std::size_t i) {
        const std::size_t planned =
            std::min(shard_size, options.calibration_pairs - i * shard_size);
        return run_corner_transfer_shard(contexts, m, mode, options, sim_options,
                                         kCalibrationShardBase + i, planned);
    });

    const std::size_t nets = contexts[0]->netlist().num_nets();
    std::vector<std::uint64_t> ref_toggles(nets, 0);
    for (const CornerTransferShard& shard : shards) {
        for (std::size_t net = 0; net < nets; ++net) {
            ref_toggles[net] += shard.ref_toggles[net];
        }
        out.event_pairs += shard.pairs * corners;
    }

    for (std::size_t k = 1; k < corners; ++k) {
        std::vector<double>& weights = out.weights[k - 1];
        std::vector<std::uint64_t> corner_toggles(nets, 0);
        for (const CornerTransferShard& shard : shards) {
            for (std::size_t net = 0; net < nets; ++net) {
                corner_toggles[net] += shard.corner_toggles[k - 1][net];
            }
        }
        for (netlist::NetId net = 0; net < nets; ++net) {
            if (contexts[0]->is_cell_output(net) && ref_toggles[net] > 0) {
                weights[net] *= static_cast<double>(corner_toggles[net]) /
                                static_cast<double>(ref_toggles[net]);
            }
        }
        // Residual scale through the origin, one row per calibration shard.
        util::Matrix a{shards.size(), 1};
        std::vector<double> b(shards.size(), 0.0);
        double transferred_total = 0.0;
        for (std::size_t s = 0; s < shards.size(); ++s) {
            double transferred = 0.0;
            for (std::size_t net = 0; net < nets; ++net) {
                transferred += weights[net] *
                               static_cast<double>(shards[s].ref_toggles[net]);
            }
            a.at(s, 0) = transferred;
            b[s] = shards[s].corner_charge[k - 1];
            transferred_total += transferred;
        }
        if (transferred_total > 0.0) {
            const std::vector<double> fit = util::least_squares(a, b);
            if (std::isfinite(fit[0]) && fit[0] > 0.0) {
                out.scales[k - 1] = fit[0];
            }
        }
        for (double& w : weights) {
            w *= out.scales[k - 1];
        }
    }
    return out;
}

/// A run_shard call's outcome: the shard result, or the exception it threw
/// (captured so a failing shard never takes its wave's siblings down with
/// it — the merge loop decides whether to rethrow or degrade).
struct ShardOutcome {
    std::optional<ShardResult> result;
    std::exception_ptr error;
};

/// Set a malformed journal aside as <path>.corrupt (never resume from bad
/// state, never destroy the evidence); fall back to removal if the rename
/// itself fails.
void quarantine_checkpoint(const std::filesystem::path& path)
{
    std::error_code ec;
    std::filesystem::rename(path, path.string() + ".corrupt", ec);
    if (ec) {
        std::filesystem::remove(path, ec);
    }
}

} // namespace

// The checkpoint/fleet journal's module identity: type id plus operand
// widths (one whitespace-free token, e.g. "csa_multiplier_16x16"), so a
// journal can never resume against a different instance that shares m.
std::string module_journal_key(const dp::DatapathModule& module)
{
    std::string key = module.netlist().name();
    for (std::size_t i = 0; i < module.operand_widths().size(); ++i) {
        key += i == 0 ? '_' : 'x';
        key += std::to_string(module.operand_widths()[i]);
    }
    return key;
}

// ---------------------------------------------------------------------------
// ShardRunner / ShardMerger — the distribution-facing faces of the sharded
// plan. ShardRunner reuses the exact per-shard simulation entry points the
// in-process thread pool schedules (run_shard / run_shard_emulation), and
// ShardMerger is the merge-and-convergence loop collect_records itself runs
// on, so "merge worker-journaled blocks in shard order" and "run everything
// in one process" are the same computation by construction.
// ---------------------------------------------------------------------------

struct ShardRunner::Impl {
    Impl(const dp::DatapathModule& module, CharacterizationOptions opts,
         const gate::TechLibrary& library, sim::EventSimOptions sim_opts)
        : options(std::move(opts)), sim_options(sim_opts),
          corner_library(options.corner.has_value()
                             ? std::optional<gate::TechLibrary>(
                                   library.at(*options.corner))
                             : std::nullopt),
          context(module.netlist(),
                  corner_library.has_value() ? *corner_library : library),
          m(module.total_input_bits()),
          mode(options.mode.value_or(StimulusMode::StratifiedChain)),
          shard_size(options.shard_size != 0 ? options.shard_size : options.batch),
          num_shards((options.max_transitions + shard_size - 1) / shard_size),
          fingerprint(characterization_fingerprint(options, sim_options)),
          module_key(module_journal_key(module))
    {
        HDPM_REQUIRE(m >= 1 && m <= BitVec::kMaxWidth,
                     "module input width out of range");
        HDPM_REQUIRE(options.batch >= 1, "batch must be positive");
        HDPM_REQUIRE(options.corners.empty(),
                     "ShardRunner plans are single-corner; sweeps use "
                     "collect_records_corners");
        if (options.backend == CharBackend::PowerEmulation) {
            // Calibration is a pure function of the stimulus plan, so every
            // process that runs shards of this plan computes the identical
            // weight vector.
            const util::ThreadPool pool{options.threads};
            calibration =
                calibrate_emulation(context, m, mode, options, sim_options, pool);
        }
    }

    CharacterizationOptions options;
    sim::EventSimOptions sim_options;
    std::optional<gate::TechLibrary> corner_library; // set iff options.corner
    sim::SimContext context;
    int m;
    StimulusMode mode;
    std::size_t shard_size;
    std::size_t num_shards;
    std::uint64_t fingerprint;
    std::string module_key;
    CalibrationResult calibration;
};

ShardRunner::ShardRunner(const dp::DatapathModule& module,
                         CharacterizationOptions options,
                         const gate::TechLibrary& library,
                         sim::EventSimOptions sim_options)
    : impl_(std::make_unique<Impl>(module, std::move(options), library, sim_options))
{
}

ShardRunner::~ShardRunner() = default;

std::size_t ShardRunner::num_shards() const noexcept
{
    return impl_->num_shards;
}

std::size_t ShardRunner::shard_size() const noexcept
{
    return impl_->shard_size;
}

int ShardRunner::input_bits() const noexcept
{
    return impl_->m;
}

std::uint64_t ShardRunner::fingerprint() const noexcept
{
    return impl_->fingerprint;
}

const std::string& ShardRunner::module_key() const noexcept
{
    return impl_->module_key;
}

std::vector<CharacterizationRecord> ShardRunner::run(std::size_t shard,
                                                     const TickFn& tick) const
{
    HDPM_REQUIRE(shard < impl_->num_shards, "shard index outside the plan");
    const std::size_t planned = std::min(
        impl_->shard_size, impl_->options.max_transitions - shard * impl_->shard_size);
    ShardResult result =
        impl_->options.backend == CharBackend::PowerEmulation
            ? run_shard_emulation(impl_->context, impl_->m, impl_->mode,
                                  impl_->options, impl_->calibration.weights, shard,
                                  planned, tick)
            : run_shard(impl_->context, impl_->m, impl_->mode, impl_->options,
                        impl_->sim_options, shard, planned, tick);
    return std::move(result.records);
}

struct ShardMerger::Impl {
    Impl(int input_bits, const CharacterizationOptions& options)
        : monitor(static_cast<std::size_t>(input_bits)), batch(options.batch),
          min_transitions(options.min_transitions), tolerance(options.tolerance)
    {
        HDPM_REQUIRE(input_bits >= 1, "bad input width");
        HDPM_REQUIRE(batch >= 1, "batch must be positive");
        records.reserve(std::min(options.max_transitions, std::size_t{1} << 20));
    }

    ConvergenceMonitor monitor;
    std::size_t batch;
    std::size_t min_transitions;
    double tolerance;
    std::vector<CharacterizationRecord> records;
    std::size_t since_check = 0;
    std::size_t shards_merged = 0;
    bool stop = false;
};

ShardMerger::ShardMerger(int input_bits, const CharacterizationOptions& options)
    : impl_(std::make_unique<Impl>(input_bits, options))
{
}

ShardMerger::~ShardMerger() = default;

bool ShardMerger::merge(std::span<const CharacterizationRecord> block)
{
    Impl& impl = *impl_;
    if (impl.stop) {
        return false; // converged: later blocks are discarded, never merged
    }
    for (const CharacterizationRecord& rec : block) {
        impl.monitor.add(static_cast<std::size_t>(rec.hd - 1), rec.charge_fc);
        impl.records.push_back(rec);
        if (++impl.since_check >= impl.batch) {
            impl.since_check = 0;
            const double drift = impl.monitor.drift_and_snapshot();
            if (impl.records.size() >= impl.min_transitions &&
                drift < impl.tolerance) {
                impl.stop = true; // stopping mid-block is part of the contract
                break;
            }
        }
    }
    ++impl.shards_merged;
    return !impl.stop;
}

bool ShardMerger::converged() const noexcept
{
    return impl_->stop;
}

std::size_t ShardMerger::shards_merged() const noexcept
{
    return impl_->shards_merged;
}

const std::vector<CharacterizationRecord>& ShardMerger::records() const noexcept
{
    return impl_->records;
}

std::vector<CharacterizationRecord> ShardMerger::take_records()
{
    return std::move(impl_->records);
}

std::vector<CharacterizationRecord> Characterizer::collect_records(
    const dp::DatapathModule& module, const CharacterizationOptions& options) const
{
    const int m = module.total_input_bits();
    HDPM_REQUIRE(m >= 1 && m <= BitVec::kMaxWidth, "module input width out of range");
    HDPM_REQUIRE(options.batch >= 1, "batch must be positive");
    HDPM_REQUIRE(options.checkpoint_every >= 1, "checkpoint_every must be positive");
    HDPM_REQUIRE(options.corners.empty(),
                 "multi-corner sweeps go through collect_records_corners");

    const auto start = std::chrono::steady_clock::now();
    const StimulusMode mode = options.mode.value_or(StimulusMode::StratifiedChain);

    // One immutable context (electrical view, fanout CSR, topo order) shared
    // read-only by every shard's private EventSimulator. A corner-qualified
    // run derives the scaled library first; SimContext consumes the library
    // during construction, so the derived temporary may die right after.
    std::optional<sim::SimContext> owned_context;
    if (options.corner.has_value()) {
        owned_context.emplace(module.netlist(), library_->at(*options.corner));
    } else {
        owned_context.emplace(module.netlist(), *library_);
    }
    const sim::SimContext& context = *owned_context;

    // Fixed shard geometry: the stimulus plan depends on (seed, shard_size,
    // max_transitions) only — never on the thread count.
    const std::size_t shard_size =
        options.shard_size != 0 ? options.shard_size : options.batch;
    const std::size_t num_shards =
        (options.max_transitions + shard_size - 1) / shard_size;

    const util::ThreadPool pool{options.threads};

    // Power-emulation backend: calibrate the per-net weight vector up front
    // by running a small deterministic subsample through the event kernel.
    // Calibration is a pure function of the stimulus plan (its shard ids
    // reuse the sharded seed scheme, offset into their own half of the id
    // space), so a resumed run recomputes the identical weights — nothing
    // about it needs journaling.
    const bool emulation = options.backend == CharBackend::PowerEmulation;
    CalibrationResult calibration;
    if (emulation) {
        calibration =
            calibrate_emulation(context, m, mode, options, sim_options_, pool);
    }

    // The merge-and-convergence loop, shared with the fleet coordinator:
    // basic Hd classes suffice for chain modes; pairs mode monitors
    // (hd, zeros) jointly via basic bins as well (a conservative criterion).
    ShardMerger merger{m, options};

    std::size_t shards_merged = 0;
    std::uint64_t sim_transitions = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t warmup_vectors = 0;
    std::uint64_t warmup_batches = 0;
    std::uint64_t emulated_pairs = 0;
    std::uint64_t emulation_passes = 0;
    std::size_t max_queue_depth = 0;

    // Checkpoint/resume setup. The journal is stamped with the same options
    // fingerprint the model library uses plus the module identity; only a
    // journal from the identical stimulus plan is resumed — anything else
    // is a leftover of some other run and is discarded (corrupt journals
    // are additionally quarantined for inspection).
    const bool checkpointing = !options.checkpoint.empty();
    CharCheckpoint journal;
    std::vector<CheckpointShard> resumed_shards;
    std::size_t checkpoints_published = 0;
    bool checkpoint_discarded = false;
    bool checkpoint_salvaged = false;
    if (checkpointing) {
        journal.fingerprint = characterization_fingerprint(options, sim_options_);
        journal.module_key = module_journal_key(module);
        journal.input_bits = m;
        {
            // A .tmp sibling is the debris of a run killed mid-publish.
            std::error_code ec;
            std::filesystem::remove(options.checkpoint.string() + ".tmp", ec);
        }
        const auto matches_plan = [&](const CharCheckpoint& loaded) {
            return loaded.fingerprint == journal.fingerprint &&
                   loaded.module_key == journal.module_key &&
                   loaded.input_bits == m && loaded.shards.size() <= num_shards;
        };
        try {
            if (auto loaded = load_checkpoint(options.checkpoint)) {
                if (matches_plan(*loaded)) {
                    resumed_shards = std::move(loaded->shards);
                } else {
                    checkpoint_discarded = true;
                }
            }
        } catch (const util::FaultError& error) {
            if (error.kind() != util::FaultKind::CheckpointCorrupt) {
                throw;
            }
            // Tolerant second read: a torn tail (the short write of a killed
            // run) still holds every shard block that published whole. Keep
            // that prefix — it re-merges bit-identically — and set the
            // damaged file aside as evidence; the tail is re-simulated.
            CheckpointSalvage salvage = salvage_checkpoint(options.checkpoint);
            quarantine_checkpoint(options.checkpoint);
            checkpoint_discarded = true;
            if (salvage.checkpoint.has_value() && matches_plan(*salvage.checkpoint) &&
                !salvage.checkpoint->shards.empty()) {
                resumed_shards = std::move(salvage.checkpoint->shards);
                checkpoint_salvaged = true;
            }
        }
    }

    std::vector<ShardFailure> shard_failures;
    std::exception_ptr first_failure;

    const auto report_progress = [&] {
        if (options.progress) {
            options.progress(CharProgress{shards_merged, num_shards,
                                          merger.records().size(),
                                          options.max_transitions});
        }
    };

    // A propagating shard failure is tagged with its location before any
    // further handling, so strict aborts and captured degradations both
    // point at the exact (module, bitwidth, shard) to replay.
    const auto handle_shard_failure = [&](std::size_t shard,
                                          std::exception_ptr error) {
        if (first_failure == nullptr) {
            first_failure = error;
        }
        try {
            std::rethrow_exception(error);
        } catch (util::FaultError& fault) {
            fault.context().shard = static_cast<std::int64_t>(shard);
            fault.context().bitwidth = m;
            if (fault.context().component.empty()) {
                fault.context().component = module_journal_key(module);
            }
            if (options.strict_faults) {
                throw;
            }
            shard_failures.push_back(
                ShardFailure{shard, fault.kind(), fault.what()});
        } catch (const std::exception& e) {
            if (options.strict_faults) {
                throw;
            }
            shard_failures.push_back(
                ShardFailure{shard, util::FaultKind::ShardFailed, e.what()});
        }
    };

    // Replay the journaled prefix through the merge loop (no simulation).
    // Replayed shards pass through the identical ShardMerger path as
    // freshly simulated ones, which is what makes a resumed run reproduce
    // the uninterrupted record stream — the stopping point included — bit
    // for bit.
    const std::size_t resumed_count = resumed_shards.size();
    for (CheckpointShard& shard : resumed_shards) {
        merger.merge(shard.records);
        journal.shards.push_back(std::move(shard));
        ++shards_merged;
        report_progress();
        if (merger.converged()) {
            break;
        }
    }
    const std::size_t shards_resumed = shards_merged;
    std::size_t unpublished = 0;

    // Run the remaining shards in waves of pool.size() and merge each wave
    // in shard order. Convergence is evaluated over the merged stream at
    // batch boundaries, so the stopping point — like every record before it
    // — is a pure function of the stimulus plan.
    for (std::size_t wave_start = resumed_count;
         wave_start < num_shards && !merger.converged(); wave_start += pool.size()) {
        const std::size_t wave =
            std::min<std::size_t>(pool.size(), num_shards - wave_start);
        auto results = pool.parallel_map(wave, [&](std::size_t i) {
            const std::size_t shard = wave_start + i;
            const std::size_t planned =
                std::min(shard_size, options.max_transitions - shard * shard_size);
            ShardOutcome outcome;
            try {
                outcome.result =
                    emulation ? run_shard_emulation(context, m, mode, options,
                                                    calibration.weights, shard,
                                                    planned)
                              : run_shard(context, m, mode, options, sim_options_,
                                          shard, planned);
            } catch (...) {
                outcome.error = std::current_exception();
            }
            return outcome;
        });

        for (std::size_t i = 0; i < results.size() && !merger.converged(); ++i) {
            const std::size_t shard = wave_start + i;
            ShardOutcome& outcome = results[i];
            if (outcome.error != nullptr) {
                handle_shard_failure(shard, outcome.error);
                // The journal stays a contiguous prefix: a failed shard is
                // recorded as an empty block (resuming past it reproduces
                // this degraded run's record stream).
                if (checkpointing) {
                    journal.shards.push_back(CheckpointShard{shard, {}});
                    ++unpublished;
                }
            } else {
                ShardResult& result = *outcome.result;
                merger.merge(result.records);
                sim_transitions += result.sim_transitions;
                sim_events += result.kernel.events_processed;
                warmup_vectors += result.warmup_vectors;
                warmup_batches += result.warmup_batches;
                emulation_passes += result.emulation_passes;
                if (emulation) {
                    emulated_pairs += result.records.size();
                }
                max_queue_depth =
                    std::max(max_queue_depth, result.kernel.max_queue_depth);
                ++shards_merged;
                if (checkpointing) {
                    journal.shards.push_back(
                        CheckpointShard{shard, std::move(result.records)});
                    ++unpublished;
                }
            }
            report_progress();
            if (checkpointing && !merger.converged() &&
                unpublished >= options.checkpoint_every) {
                save_checkpoint(options.checkpoint, journal);
                unpublished = 0;
                ++checkpoints_published;
            }
        }
    }

    std::vector<CharacterizationRecord> records = merger.take_records();
    if (records.empty() && first_failure != nullptr) {
        // Degraded continuation produced nothing at all — that is not a
        // result, it is the first failure wearing a disguise.
        std::rethrow_exception(first_failure);
    }
    if (checkpointing) {
        // The run is complete; the journal has served its purpose.
        std::error_code ec;
        std::filesystem::remove(options.checkpoint, ec);
    }

    if (options.stats != nullptr) {
        options.stats->collect_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        options.stats->sim_transitions = sim_transitions;
        options.stats->sim_events = sim_events;
        options.stats->events_per_sec =
            options.stats->collect_wall_ms > 0.0
                ? static_cast<double>(sim_events) /
                      (options.stats->collect_wall_ms / 1000.0)
                : 0.0;
        options.stats->max_queue_depth = max_queue_depth;
        options.stats->records = records.size();
        options.stats->shards = shards_merged;
        options.stats->threads = pool.size();
        options.stats->warmup_vectors = warmup_vectors;
        options.stats->warmup_batches = warmup_batches;
        options.stats->shard_failures = std::move(shard_failures);
        options.stats->shards_resumed = shards_resumed;
        options.stats->checkpoints_published = checkpoints_published;
        options.stats->checkpoint_discarded = checkpoint_discarded;
        options.stats->checkpoint_salvaged = checkpoint_salvaged;
        options.stats->backend = options.backend;
        options.stats->emulated_pairs = emulated_pairs;
        options.stats->emulation_passes = emulation_passes;
        options.stats->calibration_pairs = calibration.event_pairs;
        options.stats->calibration_scale = calibration.scale;
    }
    return records;
}

HdModel fit_basic_model(int input_bits, std::span<const CharacterizationRecord> records)
{
    HDPM_REQUIRE(input_bits >= 1, "bad input width");
    const auto m = static_cast<std::size_t>(input_bits);
    std::vector<double> sum(m, 0.0);
    std::vector<std::size_t> count(m, 0);
    for (const auto& rec : records) {
        HDPM_REQUIRE(rec.hd >= 1 && rec.hd <= input_bits, "record Hd out of range");
        sum[static_cast<std::size_t>(rec.hd - 1)] += rec.charge_fc;
        ++count[static_cast<std::size_t>(rec.hd - 1)];
    }
    std::vector<double> p(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        if (count[i] > 0) {
            p[i] = sum[i] / static_cast<double>(count[i]);
        }
    }
    // Second pass: ε_i = mean |Q - p_i| / p_i (eq. 5).
    std::vector<double> dev(m, 0.0);
    for (const auto& rec : records) {
        const auto i = static_cast<std::size_t>(rec.hd - 1);
        if (p[i] > 0.0) {
            dev[i] += std::abs(rec.charge_fc - p[i]) / p[i];
        }
    }
    for (std::size_t i = 0; i < m; ++i) {
        if (count[i] > 0) {
            dev[i] /= static_cast<double>(count[i]);
        }
    }
    return HdModel{input_bits, std::move(p), std::move(dev), std::move(count)};
}

EnhancedHdModel fit_enhanced_model(int input_bits, int zero_clusters,
                                   std::span<const CharacterizationRecord> records)
{
    HDPM_REQUIRE(input_bits >= 1, "bad input width");
    HdModel fallback = fit_basic_model(input_bits, records);

    std::vector<std::vector<double>> sum(static_cast<std::size_t>(input_bits));
    std::vector<std::vector<std::size_t>> count(static_cast<std::size_t>(input_bits));
    for (int hd = 1; hd <= input_bits; ++hd) {
        const auto clusters =
            static_cast<std::size_t>(clusters_for(input_bits, hd, zero_clusters));
        sum[static_cast<std::size_t>(hd - 1)].assign(clusters, 0.0);
        count[static_cast<std::size_t>(hd - 1)].assign(clusters, 0);
    }
    for (const auto& rec : records) {
        const auto row = static_cast<std::size_t>(rec.hd - 1);
        const auto c = static_cast<std::size_t>(
            cluster_index(input_bits, rec.hd, rec.stable_zeros, zero_clusters));
        sum[row][c] += rec.charge_fc;
        ++count[row][c];
    }

    std::vector<std::vector<double>> p(sum.size());
    std::vector<std::vector<double>> dev(sum.size());
    for (std::size_t row = 0; row < sum.size(); ++row) {
        p[row].assign(sum[row].size(), 0.0);
        dev[row].assign(sum[row].size(), 0.0);
        for (std::size_t c = 0; c < sum[row].size(); ++c) {
            if (count[row][c] > 0) {
                p[row][c] = sum[row][c] / static_cast<double>(count[row][c]);
            }
        }
    }
    for (const auto& rec : records) {
        const auto row = static_cast<std::size_t>(rec.hd - 1);
        const auto c = static_cast<std::size_t>(
            cluster_index(input_bits, rec.hd, rec.stable_zeros, zero_clusters));
        if (p[row][c] > 0.0) {
            dev[row][c] += std::abs(rec.charge_fc - p[row][c]) / p[row][c];
        }
    }
    for (std::size_t row = 0; row < dev.size(); ++row) {
        for (std::size_t c = 0; c < dev[row].size(); ++c) {
            if (count[row][c] > 0) {
                dev[row][c] /= static_cast<double>(count[row][c]);
            }
        }
    }

    return EnhancedHdModel{input_bits, zero_clusters,    std::move(p),
                           std::move(dev), std::move(count), std::move(fallback)};
}

namespace {

/// Time a fitting call into options.stats->fit_wall_ms (when present).
template <typename Fn>
auto timed_fit(const CharacterizationOptions& options, Fn&& fit)
{
    const auto start = std::chrono::steady_clock::now();
    auto model = fit();
    if (options.stats != nullptr) {
        options.stats->fit_wall_ms = std::chrono::duration<double, std::milli>(
                                         std::chrono::steady_clock::now() - start)
                                         .count();
    }
    return model;
}

} // namespace

HdModel Characterizer::characterize(const dp::DatapathModule& module,
                                    const CharacterizationOptions& options) const
{
    const auto records = collect_records(module, options);
    return timed_fit(options, [&] {
        return fit_basic_model(module.total_input_bits(), records);
    });
}

EnhancedHdModel Characterizer::characterize_enhanced(
    const dp::DatapathModule& module, int zero_clusters,
    CharacterizationOptions options) const
{
    // Default (not override): only an unset mode falls back to
    // StratifiedPairs, the one mode that populates every (i, z) class.
    if (!options.mode.has_value()) {
        options.mode = StimulusMode::StratifiedPairs;
    }
    const auto records = collect_records(module, options);
    return timed_fit(options, [&] {
        return fit_enhanced_model(module.total_input_bits(), zero_clusters, records);
    });
}

namespace {

/// Journal fingerprint of corner @p k of a sweep. Every corner journals
/// under its own single-corner fingerprint, so an emulation sweep
/// journal is interchangeable with the matching single-corner run's (the
/// record streams are bit-identical by construction). Event-kernel
/// corners k > 0 are transfer approximations whose values depend on the
/// whole corner list, so their fingerprints additionally fold the list —
/// a sweep journal can never be resumed by an exact single-corner run,
/// nor by a sweep over a different corner set.
std::uint64_t sweep_corner_fingerprint(const CharacterizationOptions& options,
                                       const sim::EventSimOptions& sim_options,
                                       std::size_t k)
{
    CharacterizationOptions corner_options = options;
    corner_options.corner = options.corners[k];
    corner_options.corners.clear();
    std::uint64_t fp = characterization_fingerprint(corner_options, sim_options);
    if (options.backend == CharBackend::EventKernel && k > 0) {
        for (const gate::Corner& corner : options.corners) {
            fp = util::splitmix64(fp ^ std::bit_cast<std::uint64_t>(corner.vdd_v));
            fp = util::splitmix64(fp ^ std::bit_cast<std::uint64_t>(corner.temp_c));
            fp = util::splitmix64(fp ^
                                  static_cast<std::uint64_t>(corner.load_class));
        }
    }
    return fp;
}

/// A multi-corner shard's outcome, mirroring ShardOutcome.
struct MultiShardOutcome {
    std::optional<MultiShardResult> result;
    std::exception_ptr error;
};

} // namespace

std::vector<std::vector<CharacterizationRecord>> Characterizer::collect_records_corners(
    const dp::DatapathModule& module, const CharacterizationOptions& options) const
{
    const std::size_t corners = options.corners.size();
    HDPM_REQUIRE(corners >= 1, "corner sweep needs at least one corner");
    HDPM_REQUIRE(!options.corner.has_value(),
                 "options.corner and options.corners are mutually exclusive");
    const int m = module.total_input_bits();
    HDPM_REQUIRE(m >= 1 && m <= BitVec::kMaxWidth, "module input width out of range");
    HDPM_REQUIRE(options.batch >= 1, "batch must be positive");
    HDPM_REQUIRE(options.checkpoint_every >= 1, "checkpoint_every must be positive");

    const auto start = std::chrono::steady_clock::now();
    const StimulusMode mode = options.mode.value_or(StimulusMode::StratifiedChain);

    // K derived libraries and electrical contexts, index-aligned with
    // options.corners. The libraries must outlive nothing: SimContext
    // consumes them during construction, but keeping the vector makes the
    // derivation cost explicit and the contexts' provenance obvious.
    std::vector<gate::TechLibrary> libraries;
    libraries.reserve(corners);
    for (const gate::Corner& corner : options.corners) {
        libraries.push_back(library_->at(corner));
    }
    std::vector<std::unique_ptr<sim::SimContext>> contexts;
    contexts.reserve(corners);
    for (const gate::TechLibrary& library : libraries) {
        contexts.push_back(
            std::make_unique<sim::SimContext>(module.netlist(), library));
    }
    std::vector<const sim::SimContext*> context_ptrs;
    context_ptrs.reserve(corners);
    for (const auto& context : contexts) {
        context_ptrs.push_back(context.get());
    }

    const std::size_t shard_size =
        options.shard_size != 0 ? options.shard_size : options.batch;
    const std::size_t num_shards =
        (options.max_transitions + shard_size - 1) / shard_size;
    const util::ThreadPool pool{options.threads};
    const bool emulation = options.backend == CharBackend::PowerEmulation;

    // Per-corner scoring weights. Emulation: each corner keeps its own
    // glitch calibration at its own derived context — the calibration
    // stimulus is corner-independent, so each weight vector is exactly
    // what an independent single-corner run would compute. Event kernel:
    // corner 0 needs no weights (it is simulated exactly); corners k > 0
    // get transfer weights calibrated across all corners at once.
    std::vector<std::vector<double>> weight_sets;
    std::uint64_t emulation_calibration_pairs = 0;
    double calibration_scale = 1.0;
    CornerTransferResult transfer;
    if (emulation) {
        weight_sets.reserve(corners);
        for (std::size_t k = 0; k < corners; ++k) {
            CalibrationResult cal = calibrate_emulation(*context_ptrs[k], m, mode,
                                                        options, sim_options_, pool);
            emulation_calibration_pairs += cal.event_pairs;
            if (k == 0) {
                calibration_scale = cal.scale;
            }
            weight_sets.push_back(std::move(cal.weights));
        }
    } else if (corners > 1) {
        transfer = calibrate_corner_transfer(context_ptrs, m, mode, options,
                                             sim_options_, pool);
    }

    // One merger per corner, each running the identical merge-and-convergence
    // loop its independent single-corner run would — so each corner's
    // stopping point (and record stream) matches that run exactly. The
    // sweep stops simulating only once every corner has converged; blocks
    // merged into an already-converged merger are discarded, exactly as
    // collect_records discards shards simulated ahead of a stop.
    std::vector<std::unique_ptr<ShardMerger>> mergers;
    mergers.reserve(corners);
    for (std::size_t k = 0; k < corners; ++k) {
        mergers.push_back(std::make_unique<ShardMerger>(m, options));
    }
    const auto all_converged = [&] {
        for (const auto& merger : mergers) {
            if (!merger->converged()) {
                return false;
            }
        }
        return true;
    };

    std::size_t shards_merged = 0;
    std::uint64_t sim_transitions = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t warmup_vectors = 0;
    std::uint64_t warmup_batches = 0;
    std::uint64_t emulated_pairs = 0;
    std::uint64_t emulation_passes = 0;
    std::size_t max_queue_depth = 0;

    // Per-corner checkpoint journals at <checkpoint>.c<k>, published in
    // lockstep at the same shard boundaries. A crash between the K file
    // publishes leaves journals of different lengths; resume takes the
    // minimum valid prefix over all corners and re-simulates the rest, so
    // lockstep is self-healing rather than load-bearing.
    const bool checkpointing = !options.checkpoint.empty();
    std::vector<CharCheckpoint> journals(corners);
    std::vector<std::filesystem::path> journal_paths(corners);
    std::vector<std::vector<CheckpointShard>> resumed(corners);
    std::size_t checkpoints_published = 0;
    bool checkpoint_discarded = false;
    bool checkpoint_salvaged = false;
    std::size_t resume_len = 0;
    if (checkpointing) {
        resume_len = num_shards; // min over corners below
        for (std::size_t k = 0; k < corners; ++k) {
            journal_paths[k] =
                options.checkpoint.string() + ".c" + std::to_string(k);
            journals[k].fingerprint =
                sweep_corner_fingerprint(options, sim_options_, k);
            journals[k].module_key = module_journal_key(module);
            journals[k].input_bits = m;
            {
                std::error_code ec;
                std::filesystem::remove(journal_paths[k].string() + ".tmp", ec);
            }
            const auto matches_plan = [&](const CharCheckpoint& loaded) {
                return loaded.fingerprint == journals[k].fingerprint &&
                       loaded.module_key == journals[k].module_key &&
                       loaded.input_bits == m && loaded.shards.size() <= num_shards;
            };
            try {
                if (auto loaded = load_checkpoint(journal_paths[k])) {
                    if (matches_plan(*loaded)) {
                        resumed[k] = std::move(loaded->shards);
                    } else {
                        checkpoint_discarded = true;
                    }
                }
            } catch (const util::FaultError& error) {
                if (error.kind() != util::FaultKind::CheckpointCorrupt) {
                    throw;
                }
                CheckpointSalvage salvage = salvage_checkpoint(journal_paths[k]);
                quarantine_checkpoint(journal_paths[k]);
                checkpoint_discarded = true;
                if (salvage.checkpoint.has_value() &&
                    matches_plan(*salvage.checkpoint) &&
                    !salvage.checkpoint->shards.empty()) {
                    resumed[k] = std::move(salvage.checkpoint->shards);
                    checkpoint_salvaged = true;
                }
            }
            resume_len = std::min(resume_len, resumed[k].size());
        }
        for (std::size_t k = 0; k < corners; ++k) {
            resumed[k].resize(resume_len);
        }
    }

    std::vector<ShardFailure> shard_failures;
    std::exception_ptr first_failure;

    const auto report_progress = [&] {
        if (options.progress) {
            options.progress(CharProgress{shards_merged, num_shards,
                                          mergers[0]->records().size(),
                                          options.max_transitions});
        }
    };

    const auto handle_shard_failure = [&](std::size_t shard,
                                          std::exception_ptr error) {
        if (first_failure == nullptr) {
            first_failure = error;
        }
        try {
            std::rethrow_exception(error);
        } catch (util::FaultError& fault) {
            fault.context().shard = static_cast<std::int64_t>(shard);
            fault.context().bitwidth = m;
            if (fault.context().component.empty()) {
                fault.context().component = module_journal_key(module);
            }
            if (options.strict_faults) {
                throw;
            }
            shard_failures.push_back(
                ShardFailure{shard, fault.kind(), fault.what()});
        } catch (const std::exception& e) {
            if (options.strict_faults) {
                throw;
            }
            shard_failures.push_back(
                ShardFailure{shard, util::FaultKind::ShardFailed, e.what()});
        }
    };

    // Replay the common journaled prefix through all K merge loops.
    for (std::size_t r = 0; r < resume_len && !all_converged(); ++r) {
        for (std::size_t k = 0; k < corners; ++k) {
            mergers[k]->merge(resumed[k][r].records);
            journals[k].shards.push_back(std::move(resumed[k][r]));
        }
        ++shards_merged;
        report_progress();
    }
    const std::size_t shards_resumed = shards_merged;
    std::size_t unpublished = 0;

    for (std::size_t wave_start = resume_len;
         wave_start < num_shards && !all_converged(); wave_start += pool.size()) {
        const std::size_t wave =
            std::min<std::size_t>(pool.size(), num_shards - wave_start);
        auto results = pool.parallel_map(wave, [&](std::size_t i) {
            const std::size_t shard = wave_start + i;
            const std::size_t planned =
                std::min(shard_size, options.max_transitions - shard * shard_size);
            MultiShardOutcome outcome;
            try {
                outcome.result =
                    emulation
                        ? run_shard_emulation_multi(*context_ptrs[0], m, mode,
                                                    options, weight_sets, shard,
                                                    planned)
                        : run_shard_event_multi(*context_ptrs[0], m, mode, options,
                                                sim_options_, transfer.weights,
                                                shard, planned);
            } catch (...) {
                outcome.error = std::current_exception();
            }
            return outcome;
        });

        for (std::size_t i = 0; i < results.size() && !all_converged(); ++i) {
            const std::size_t shard = wave_start + i;
            MultiShardOutcome& outcome = results[i];
            if (outcome.error != nullptr) {
                handle_shard_failure(shard, outcome.error);
                if (checkpointing) {
                    for (std::size_t k = 0; k < corners; ++k) {
                        journals[k].shards.push_back(CheckpointShard{shard, {}});
                    }
                    ++unpublished;
                }
            } else {
                MultiShardResult& result = *outcome.result;
                for (std::size_t k = 0; k < corners; ++k) {
                    mergers[k]->merge(result.blocks[k]);
                }
                sim_transitions += result.sim_transitions;
                sim_events += result.kernel.events_processed;
                warmup_vectors += result.warmup_vectors;
                warmup_batches += result.warmup_batches;
                emulation_passes += result.emulation_passes;
                if (emulation) {
                    emulated_pairs += result.blocks[0].size() * corners;
                }
                max_queue_depth =
                    std::max(max_queue_depth, result.kernel.max_queue_depth);
                ++shards_merged;
                if (checkpointing) {
                    for (std::size_t k = 0; k < corners; ++k) {
                        journals[k].shards.push_back(
                            CheckpointShard{shard, std::move(result.blocks[k])});
                    }
                    ++unpublished;
                }
            }
            report_progress();
            if (checkpointing && !all_converged() &&
                unpublished >= options.checkpoint_every) {
                for (std::size_t k = 0; k < corners; ++k) {
                    save_checkpoint(journal_paths[k], journals[k]);
                }
                unpublished = 0;
                ++checkpoints_published;
            }
        }
    }

    std::vector<std::vector<CharacterizationRecord>> records;
    records.reserve(corners);
    bool any_records = false;
    for (std::size_t k = 0; k < corners; ++k) {
        records.push_back(mergers[k]->take_records());
        any_records = any_records || !records.back().empty();
    }
    if (!any_records && first_failure != nullptr) {
        std::rethrow_exception(first_failure);
    }
    if (checkpointing) {
        for (std::size_t k = 0; k < corners; ++k) {
            std::error_code ec;
            std::filesystem::remove(journal_paths[k], ec);
        }
    }

    if (options.stats != nullptr) {
        options.stats->collect_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        options.stats->sim_transitions = sim_transitions;
        options.stats->sim_events = sim_events;
        options.stats->events_per_sec =
            options.stats->collect_wall_ms > 0.0
                ? static_cast<double>(sim_events) /
                      (options.stats->collect_wall_ms / 1000.0)
                : 0.0;
        options.stats->max_queue_depth = max_queue_depth;
        options.stats->records = records[0].size();
        options.stats->shards = shards_merged;
        options.stats->threads = pool.size();
        options.stats->warmup_vectors = warmup_vectors;
        options.stats->warmup_batches = warmup_batches;
        options.stats->shard_failures = std::move(shard_failures);
        options.stats->shards_resumed = shards_resumed;
        options.stats->checkpoints_published = checkpoints_published;
        options.stats->checkpoint_discarded = checkpoint_discarded;
        options.stats->checkpoint_salvaged = checkpoint_salvaged;
        options.stats->backend = options.backend;
        options.stats->emulated_pairs = emulated_pairs;
        options.stats->emulation_passes = emulation_passes;
        options.stats->calibration_pairs = emulation_calibration_pairs;
        options.stats->calibration_scale = calibration_scale;
        options.stats->corners = corners;
        options.stats->corner_calibration_pairs = transfer.event_pairs;
    }
    return records;
}

std::vector<HdModel> Characterizer::characterize_corners(
    const dp::DatapathModule& module, const CharacterizationOptions& options) const
{
    const auto blocks = collect_records_corners(module, options);
    return timed_fit(options, [&] {
        std::vector<HdModel> models;
        models.reserve(blocks.size());
        for (const auto& records : blocks) {
            models.push_back(fit_basic_model(module.total_input_bits(), records));
        }
        return models;
    });
}

std::vector<EnhancedHdModel> Characterizer::characterize_corners_enhanced(
    const dp::DatapathModule& module, int zero_clusters,
    CharacterizationOptions options) const
{
    // Same default as characterize_enhanced: only an unset mode falls back
    // to StratifiedPairs.
    if (!options.mode.has_value()) {
        options.mode = StimulusMode::StratifiedPairs;
    }
    const auto blocks = collect_records_corners(module, options);
    return timed_fit(options, [&] {
        std::vector<EnhancedHdModel> models;
        models.reserve(blocks.size());
        for (const auto& records : blocks) {
            models.push_back(fit_enhanced_model(module.total_input_bits(),
                                                zero_clusters, records));
        }
        return models;
    });
}

} // namespace hdpm::core
