#include "core/characterize.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/model_library.hpp"
#include "sim/batched.hpp"
#include "sim/sim_context.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace hdpm::core {

using util::BitVec;
using util::Rng;

namespace {

/// A uniformly random mask of exactly @p bits set bits out of @p m
/// (partial Fisher–Yates over bit positions).
BitVec random_mask(int m, int bits, Rng& rng, std::vector<int>& scratch)
{
    scratch.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        scratch[static_cast<std::size_t>(i)] = i;
    }
    BitVec mask{m};
    for (int i = 0; i < bits; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(m - 1)));
        std::swap(scratch[static_cast<std::size_t>(i)], scratch[j]);
        mask.set(scratch[static_cast<std::size_t>(i)], true);
    }
    return mask;
}

BitVec random_vector(int m, Rng& rng)
{
    return BitVec{m, rng.next_u64()};
}

/// Zero-cluster geometry shared by fitting and the EnhancedHdModel itself.
int clusters_for(int m, int hd, int zero_clusters)
{
    const int levels = m - hd + 1;
    return zero_clusters == 0 ? levels : std::min(zero_clusters, levels);
}

int cluster_index(int m, int hd, int zeros, int zero_clusters)
{
    const int levels = m - hd + 1;
    const int clusters = clusters_for(m, hd, zero_clusters);
    if (clusters == levels) {
        return zeros;
    }
    return std::min(clusters - 1, zeros * clusters / levels);
}

/// Convergence monitor over per-class running means.
class ConvergenceMonitor {
public:
    explicit ConvergenceMonitor(std::size_t num_classes)
        : sum_(num_classes, 0.0), count_(num_classes, 0), snapshot_(num_classes, 0.0)
    {
    }

    void add(std::size_t cls, double q)
    {
        sum_[cls] += q;
        ++count_[cls];
    }

    /// Max relative drift of populated class means since the last call;
    /// takes a new snapshot.
    double drift_and_snapshot()
    {
        double max_drift = 0.0;
        for (std::size_t i = 0; i < sum_.size(); ++i) {
            if (count_[i] == 0) {
                continue;
            }
            const double mean = sum_[i] / static_cast<double>(count_[i]);
            if (snapshot_[i] > 0.0) {
                max_drift = std::max(max_drift,
                                     std::abs(mean - snapshot_[i]) / snapshot_[i]);
            } else {
                max_drift = 1.0; // newly populated class: not converged yet
            }
            snapshot_[i] = mean;
        }
        return max_drift;
    }

private:
    std::vector<double> sum_;
    std::vector<std::size_t> count_;
    std::vector<double> snapshot_;
};

} // namespace

Characterizer::Characterizer(const gate::TechLibrary& library,
                             sim::EventSimOptions sim_options)
    : library_(&library), sim_options_(sim_options)
{
}

namespace {

/// Result of one independently simulated stimulus shard.
struct ShardResult {
    std::vector<CharacterizationRecord> records;
    std::uint64_t sim_transitions = 0; ///< net toggles incl. glitches
    std::uint64_t warmup_vectors = 0;  ///< pairs-mode warm-up vectors settled
    std::uint64_t warmup_batches = 0;  ///< 64-lane batched settle passes
    sim::KernelStats kernel;           ///< scheduler counters of the shard's simulator
};

/// Simulate exactly @p count transitions of shard @p shard. Each shard is a
/// self-contained stimulus stream: its own Rng (seeded seed^splitmix64(shard)
/// so shard streams are decorrelated), its own stratification cycles, its
/// own start vector, and its own EventSimulator over the shared immutable
/// context. Nothing here depends on which thread runs the shard or on how
/// many shards run concurrently — that is the whole determinism argument.
ShardResult run_shard(const sim::SimContext& context, int m, StimulusMode mode,
                      const CharacterizationOptions& options,
                      const sim::EventSimOptions& sim_options, std::size_t shard,
                      std::size_t count)
{
    if (HDPM_FAULT_FIRE(util::FaultPoint::ShardException)) {
        util::FaultContext context;
        context.shard = static_cast<std::int64_t>(shard);
        context.detail = "injected shard failure";
        throw util::FaultError{util::FaultKind::ShardFailed, std::move(context)};
    }

    ShardResult out;
    out.records.reserve(count);

    Rng rng{options.seed ^ util::splitmix64(shard)};
    std::vector<int> scratch;
    sim::EventSimulator simulator{context, sim_options};

    // Stratification state.
    std::vector<int> hd_cycle(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        hd_cycle[static_cast<std::size_t>(i)] = i + 1;
    }
    rng.shuffle(hd_cycle);
    std::size_t hd_cursor = 0;

    // (hd, zeros) enumeration for StratifiedPairs.
    std::vector<std::pair<int, int>> class_cycle;
    if (mode == StimulusMode::StratifiedPairs) {
        for (int hd = 1; hd <= m; ++hd) {
            for (int z = 0; z <= m - hd; ++z) {
                class_cycle.emplace_back(hd, z);
            }
        }
        rng.shuffle(class_cycle);
    }
    std::size_t class_cursor = 0;

    BitVec current = random_vector(m, rng);
    if (mode != StimulusMode::StratifiedPairs) {
        simulator.initialize(current);
    }

    if (mode == StimulusMode::StratifiedPairs) {
        // Stimulus is generated in blocks of up to kLanes (u, v) pairs into
        // flat reusable arenas, then all warm-up vectors of a block settle
        // in one word-parallel BatchedEvaluator pass (borrowing the shard's
        // compiled view) and each lane is scattered into the event
        // simulator via load_state before the timed apply. RNG consumption
        // order is identical to per-record generation, and the zero-delay
        // fixpoint of u is unique, so records are bit-identical to the
        // WarmupMode::PerRecord baseline. The loop body performs no heap
        // allocation in steady state (tests/steady_alloc_test.cpp).
        constexpr std::size_t kLanes =
            static_cast<std::size_t>(sim::BatchedEvaluator::kLanes);
        const bool batched = options.warmup == WarmupMode::Batched;
        std::optional<sim::BatchedEvaluator> evaluator;
        std::vector<std::uint8_t> lane_values;
        if (batched) {
            evaluator.emplace(context);
            lane_values.resize(context.netlist().num_nets());
        }

        std::array<BitVec, kLanes> u_block;
        std::array<BitVec, kLanes> v_block;
        std::array<std::pair<int, int>, kLanes> cls_block; // (hd, zeros)
        std::vector<int> stable; // stable-position pool, reused per pair
        stable.reserve(static_cast<std::size_t>(m));

        while (out.records.size() < count) {
            const std::size_t block =
                std::min<std::size_t>(kLanes, count - out.records.size());
            for (std::size_t j = 0; j < block; ++j) {
                const auto [hd, zeros] = class_cycle[class_cursor];
                class_cursor = (class_cursor + 1) % class_cycle.size();

                // Build u with the prescribed stable-zero layout, v = u ^ mask.
                const BitVec mask = random_mask(m, hd, rng, scratch);
                BitVec u{m};
                // Positions outside the mask: exactly `zeros` of them are 0.
                stable.clear();
                for (int i = 0; i < m; ++i) {
                    if (!mask.get(i)) {
                        stable.push_back(i);
                    }
                }
                rng.shuffle(stable);
                for (std::size_t s = 0; s < stable.size(); ++s) {
                    u.set(stable[s], s >= static_cast<std::size_t>(zeros));
                }
                for (int i = 0; i < m; ++i) {
                    if (mask.get(i)) {
                        u.set(i, rng.bernoulli(0.5));
                    }
                }
                u_block[j] = u;
                v_block[j] = u ^ mask;
                cls_block[j] = {hd, zeros};
            }

            if (batched) {
                evaluator->settle({u_block.data(), block});
                ++out.warmup_batches;
            }
            out.warmup_vectors += block;

            for (std::size_t j = 0; j < block; ++j) {
                if (batched) {
                    evaluator->export_lane(static_cast<int>(j), lane_values);
                    simulator.load_state(u_block[j], lane_values);
                } else {
                    simulator.initialize(u_block[j]);
                }
                const sim::CycleResult cycle = simulator.apply(v_block[j]);
                CharacterizationRecord rec;
                rec.hd = cls_block[j].first;
                rec.stable_zeros = cls_block[j].second;
                rec.charge_fc = cycle.charge_fc;
                rec.toggle_mask = (u_block[j] ^ v_block[j]).raw();
                out.sim_transitions += cycle.transitions;
                out.records.push_back(rec);
            }
        }
        out.kernel = simulator.kernel_stats();
        return out;
    }

    while (out.records.size() < count) {
        CharacterizationRecord rec;
        BitVec next{m};
        if (mode == StimulusMode::RandomChain) {
            next = random_vector(m, rng);
        } else {
            const int hd = hd_cycle[hd_cursor];
            hd_cursor = (hd_cursor + 1) % hd_cycle.size();
            if (hd_cursor == 0) {
                rng.shuffle(hd_cycle);
            }
            next = current ^ random_mask(m, hd, rng, scratch);
        }
        const int hd = BitVec::hamming_distance(current, next);
        if (hd == 0) {
            current = next;
            continue; // Hd = 0 transitions carry no class information
        }
        const sim::CycleResult cycle = simulator.apply(next);
        rec.hd = hd;
        rec.stable_zeros = BitVec::stable_zeros(current, next);
        rec.charge_fc = cycle.charge_fc;
        rec.toggle_mask = (current ^ next).raw();
        out.sim_transitions += cycle.transitions;
        current = next;
        out.records.push_back(rec);
    }
    out.kernel = simulator.kernel_stats();
    return out;
}

/// A run_shard call's outcome: the shard result, or the exception it threw
/// (captured so a failing shard never takes its wave's siblings down with
/// it — the merge loop decides whether to rethrow or degrade).
struct ShardOutcome {
    std::optional<ShardResult> result;
    std::exception_ptr error;
};

/// The checkpoint journal's module identity: type id plus operand widths
/// (one whitespace-free token, e.g. "csa_multiplier_16x16"), so a journal
/// can never resume against a different instance that happens to share m.
std::string checkpoint_module_key(const dp::DatapathModule& module)
{
    std::string key = module.netlist().name();
    for (std::size_t i = 0; i < module.operand_widths().size(); ++i) {
        key += i == 0 ? '_' : 'x';
        key += std::to_string(module.operand_widths()[i]);
    }
    return key;
}

/// Set a malformed journal aside as <path>.corrupt (never resume from bad
/// state, never destroy the evidence); fall back to removal if the rename
/// itself fails.
void quarantine_checkpoint(const std::filesystem::path& path)
{
    std::error_code ec;
    std::filesystem::rename(path, path.string() + ".corrupt", ec);
    if (ec) {
        std::filesystem::remove(path, ec);
    }
}

} // namespace

std::vector<CharacterizationRecord> Characterizer::collect_records(
    const dp::DatapathModule& module, const CharacterizationOptions& options) const
{
    const int m = module.total_input_bits();
    HDPM_REQUIRE(m >= 1 && m <= BitVec::kMaxWidth, "module input width out of range");
    HDPM_REQUIRE(options.batch >= 1, "batch must be positive");
    HDPM_REQUIRE(options.checkpoint_every >= 1, "checkpoint_every must be positive");

    const auto start = std::chrono::steady_clock::now();
    const StimulusMode mode = options.mode.value_or(StimulusMode::StratifiedChain);

    // One immutable context (electrical view, fanout CSR, topo order) shared
    // read-only by every shard's private EventSimulator.
    const sim::SimContext context{module.netlist(), *library_};

    // Fixed shard geometry: the stimulus plan depends on (seed, shard_size,
    // max_transitions) only — never on the thread count.
    const std::size_t shard_size =
        options.shard_size != 0 ? options.shard_size : options.batch;
    const std::size_t num_shards =
        (options.max_transitions + shard_size - 1) / shard_size;

    const util::ThreadPool pool{options.threads};

    // Class geometry for convergence monitoring: basic classes suffice for
    // chain modes; pairs mode monitors (hd, zeros) jointly via basic bins
    // as well (a conservative criterion).
    ConvergenceMonitor monitor{static_cast<std::size_t>(m)};

    std::vector<CharacterizationRecord> records;
    records.reserve(std::min(options.max_transitions, std::size_t{1} << 20));

    std::size_t since_check = 0;
    std::size_t shards_merged = 0;
    std::uint64_t sim_transitions = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t warmup_vectors = 0;
    std::uint64_t warmup_batches = 0;
    std::size_t max_queue_depth = 0;
    bool stop = false;

    // Checkpoint/resume setup. The journal is stamped with the same options
    // fingerprint the model library uses plus the module identity; only a
    // journal from the identical stimulus plan is resumed — anything else
    // is a leftover of some other run and is discarded (corrupt journals
    // are additionally quarantined for inspection).
    const bool checkpointing = !options.checkpoint.empty();
    CharCheckpoint journal;
    std::vector<CheckpointShard> resumed_shards;
    std::size_t checkpoints_published = 0;
    bool checkpoint_discarded = false;
    if (checkpointing) {
        journal.fingerprint = characterization_fingerprint(options, sim_options_);
        journal.module_key = checkpoint_module_key(module);
        journal.input_bits = m;
        {
            // A .tmp sibling is the debris of a run killed mid-publish.
            std::error_code ec;
            std::filesystem::remove(options.checkpoint.string() + ".tmp", ec);
        }
        try {
            if (auto loaded = load_checkpoint(options.checkpoint)) {
                if (loaded->fingerprint == journal.fingerprint &&
                    loaded->module_key == journal.module_key &&
                    loaded->input_bits == m &&
                    loaded->shards.size() <= num_shards) {
                    resumed_shards = std::move(loaded->shards);
                } else {
                    checkpoint_discarded = true;
                }
            }
        } catch (const util::FaultError& error) {
            if (error.kind() != util::FaultKind::CheckpointCorrupt) {
                throw;
            }
            quarantine_checkpoint(options.checkpoint);
            checkpoint_discarded = true;
        }
    }

    std::vector<ShardFailure> shard_failures;
    std::exception_ptr first_failure;

    // Merge one shard's record block into the result stream, evaluating
    // convergence at batch boundaries. Replayed journal shards pass through
    // the identical code path as freshly simulated ones, which is what
    // makes a resumed run reproduce the uninterrupted record stream — the
    // stopping point included — bit for bit.
    const auto merge_block = [&](const std::vector<CharacterizationRecord>& block) {
        for (const CharacterizationRecord& rec : block) {
            monitor.add(static_cast<std::size_t>(rec.hd - 1), rec.charge_fc);
            records.push_back(rec);
            if (++since_check >= options.batch) {
                since_check = 0;
                const double drift = monitor.drift_and_snapshot();
                if (records.size() >= options.min_transitions &&
                    drift < options.tolerance) {
                    stop = true;
                    break;
                }
            }
        }
    };
    const auto report_progress = [&] {
        if (options.progress) {
            options.progress(CharProgress{shards_merged, num_shards, records.size(),
                                          options.max_transitions});
        }
    };

    // A propagating shard failure is tagged with its location before any
    // further handling, so strict aborts and captured degradations both
    // point at the exact (module, bitwidth, shard) to replay.
    const auto handle_shard_failure = [&](std::size_t shard,
                                          std::exception_ptr error) {
        if (first_failure == nullptr) {
            first_failure = error;
        }
        try {
            std::rethrow_exception(error);
        } catch (util::FaultError& fault) {
            fault.context().shard = static_cast<std::int64_t>(shard);
            fault.context().bitwidth = m;
            if (fault.context().component.empty()) {
                fault.context().component = checkpoint_module_key(module);
            }
            if (options.strict_faults) {
                throw;
            }
            shard_failures.push_back(
                ShardFailure{shard, fault.kind(), fault.what()});
        } catch (const std::exception& e) {
            if (options.strict_faults) {
                throw;
            }
            shard_failures.push_back(
                ShardFailure{shard, util::FaultKind::ShardFailed, e.what()});
        }
    };

    // Replay the journaled prefix through the merge loop (no simulation).
    const std::size_t resumed_count = resumed_shards.size();
    for (CheckpointShard& shard : resumed_shards) {
        merge_block(shard.records);
        journal.shards.push_back(std::move(shard));
        ++shards_merged;
        report_progress();
        if (stop) {
            break;
        }
    }
    const std::size_t shards_resumed = shards_merged;
    std::size_t unpublished = 0;

    // Run the remaining shards in waves of pool.size() and merge each wave
    // in shard order. Convergence is evaluated over the merged stream at
    // batch boundaries, so the stopping point — like every record before it
    // — is a pure function of the stimulus plan.
    for (std::size_t wave_start = resumed_count; wave_start < num_shards && !stop;
         wave_start += pool.size()) {
        const std::size_t wave =
            std::min<std::size_t>(pool.size(), num_shards - wave_start);
        auto results = pool.parallel_map(wave, [&](std::size_t i) {
            const std::size_t shard = wave_start + i;
            const std::size_t planned =
                std::min(shard_size, options.max_transitions - shard * shard_size);
            ShardOutcome outcome;
            try {
                outcome.result =
                    run_shard(context, m, mode, options, sim_options_, shard, planned);
            } catch (...) {
                outcome.error = std::current_exception();
            }
            return outcome;
        });

        for (std::size_t i = 0; i < results.size() && !stop; ++i) {
            const std::size_t shard = wave_start + i;
            ShardOutcome& outcome = results[i];
            if (outcome.error != nullptr) {
                handle_shard_failure(shard, outcome.error);
                // The journal stays a contiguous prefix: a failed shard is
                // recorded as an empty block (resuming past it reproduces
                // this degraded run's record stream).
                if (checkpointing) {
                    journal.shards.push_back(CheckpointShard{shard, {}});
                    ++unpublished;
                }
            } else {
                ShardResult& result = *outcome.result;
                merge_block(result.records);
                sim_transitions += result.sim_transitions;
                sim_events += result.kernel.events_processed;
                warmup_vectors += result.warmup_vectors;
                warmup_batches += result.warmup_batches;
                max_queue_depth =
                    std::max(max_queue_depth, result.kernel.max_queue_depth);
                ++shards_merged;
                if (checkpointing) {
                    journal.shards.push_back(
                        CheckpointShard{shard, std::move(result.records)});
                    ++unpublished;
                }
            }
            report_progress();
            if (checkpointing && !stop && unpublished >= options.checkpoint_every) {
                save_checkpoint(options.checkpoint, journal);
                unpublished = 0;
                ++checkpoints_published;
            }
        }
    }

    if (records.empty() && first_failure != nullptr) {
        // Degraded continuation produced nothing at all — that is not a
        // result, it is the first failure wearing a disguise.
        std::rethrow_exception(first_failure);
    }
    if (checkpointing) {
        // The run is complete; the journal has served its purpose.
        std::error_code ec;
        std::filesystem::remove(options.checkpoint, ec);
    }

    if (options.stats != nullptr) {
        options.stats->collect_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        options.stats->sim_transitions = sim_transitions;
        options.stats->sim_events = sim_events;
        options.stats->events_per_sec =
            options.stats->collect_wall_ms > 0.0
                ? static_cast<double>(sim_events) /
                      (options.stats->collect_wall_ms / 1000.0)
                : 0.0;
        options.stats->max_queue_depth = max_queue_depth;
        options.stats->records = records.size();
        options.stats->shards = shards_merged;
        options.stats->threads = pool.size();
        options.stats->warmup_vectors = warmup_vectors;
        options.stats->warmup_batches = warmup_batches;
        options.stats->shard_failures = std::move(shard_failures);
        options.stats->shards_resumed = shards_resumed;
        options.stats->checkpoints_published = checkpoints_published;
        options.stats->checkpoint_discarded = checkpoint_discarded;
    }
    return records;
}

HdModel fit_basic_model(int input_bits, std::span<const CharacterizationRecord> records)
{
    HDPM_REQUIRE(input_bits >= 1, "bad input width");
    const auto m = static_cast<std::size_t>(input_bits);
    std::vector<double> sum(m, 0.0);
    std::vector<std::size_t> count(m, 0);
    for (const auto& rec : records) {
        HDPM_REQUIRE(rec.hd >= 1 && rec.hd <= input_bits, "record Hd out of range");
        sum[static_cast<std::size_t>(rec.hd - 1)] += rec.charge_fc;
        ++count[static_cast<std::size_t>(rec.hd - 1)];
    }
    std::vector<double> p(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        if (count[i] > 0) {
            p[i] = sum[i] / static_cast<double>(count[i]);
        }
    }
    // Second pass: ε_i = mean |Q - p_i| / p_i (eq. 5).
    std::vector<double> dev(m, 0.0);
    for (const auto& rec : records) {
        const auto i = static_cast<std::size_t>(rec.hd - 1);
        if (p[i] > 0.0) {
            dev[i] += std::abs(rec.charge_fc - p[i]) / p[i];
        }
    }
    for (std::size_t i = 0; i < m; ++i) {
        if (count[i] > 0) {
            dev[i] /= static_cast<double>(count[i]);
        }
    }
    return HdModel{input_bits, std::move(p), std::move(dev), std::move(count)};
}

EnhancedHdModel fit_enhanced_model(int input_bits, int zero_clusters,
                                   std::span<const CharacterizationRecord> records)
{
    HDPM_REQUIRE(input_bits >= 1, "bad input width");
    HdModel fallback = fit_basic_model(input_bits, records);

    std::vector<std::vector<double>> sum(static_cast<std::size_t>(input_bits));
    std::vector<std::vector<std::size_t>> count(static_cast<std::size_t>(input_bits));
    for (int hd = 1; hd <= input_bits; ++hd) {
        const auto clusters =
            static_cast<std::size_t>(clusters_for(input_bits, hd, zero_clusters));
        sum[static_cast<std::size_t>(hd - 1)].assign(clusters, 0.0);
        count[static_cast<std::size_t>(hd - 1)].assign(clusters, 0);
    }
    for (const auto& rec : records) {
        const auto row = static_cast<std::size_t>(rec.hd - 1);
        const auto c = static_cast<std::size_t>(
            cluster_index(input_bits, rec.hd, rec.stable_zeros, zero_clusters));
        sum[row][c] += rec.charge_fc;
        ++count[row][c];
    }

    std::vector<std::vector<double>> p(sum.size());
    std::vector<std::vector<double>> dev(sum.size());
    for (std::size_t row = 0; row < sum.size(); ++row) {
        p[row].assign(sum[row].size(), 0.0);
        dev[row].assign(sum[row].size(), 0.0);
        for (std::size_t c = 0; c < sum[row].size(); ++c) {
            if (count[row][c] > 0) {
                p[row][c] = sum[row][c] / static_cast<double>(count[row][c]);
            }
        }
    }
    for (const auto& rec : records) {
        const auto row = static_cast<std::size_t>(rec.hd - 1);
        const auto c = static_cast<std::size_t>(
            cluster_index(input_bits, rec.hd, rec.stable_zeros, zero_clusters));
        if (p[row][c] > 0.0) {
            dev[row][c] += std::abs(rec.charge_fc - p[row][c]) / p[row][c];
        }
    }
    for (std::size_t row = 0; row < dev.size(); ++row) {
        for (std::size_t c = 0; c < dev[row].size(); ++c) {
            if (count[row][c] > 0) {
                dev[row][c] /= static_cast<double>(count[row][c]);
            }
        }
    }

    return EnhancedHdModel{input_bits, zero_clusters,    std::move(p),
                           std::move(dev), std::move(count), std::move(fallback)};
}

namespace {

/// Time a fitting call into options.stats->fit_wall_ms (when present).
template <typename Fn>
auto timed_fit(const CharacterizationOptions& options, Fn&& fit)
{
    const auto start = std::chrono::steady_clock::now();
    auto model = fit();
    if (options.stats != nullptr) {
        options.stats->fit_wall_ms = std::chrono::duration<double, std::milli>(
                                         std::chrono::steady_clock::now() - start)
                                         .count();
    }
    return model;
}

} // namespace

HdModel Characterizer::characterize(const dp::DatapathModule& module,
                                    const CharacterizationOptions& options) const
{
    const auto records = collect_records(module, options);
    return timed_fit(options, [&] {
        return fit_basic_model(module.total_input_bits(), records);
    });
}

EnhancedHdModel Characterizer::characterize_enhanced(
    const dp::DatapathModule& module, int zero_clusters,
    CharacterizationOptions options) const
{
    // Default (not override): only an unset mode falls back to
    // StratifiedPairs, the one mode that populates every (i, z) class.
    if (!options.mode.has_value()) {
        options.mode = StimulusMode::StratifiedPairs;
    }
    const auto records = collect_records(module, options);
    return timed_fit(options, [&] {
        return fit_enhanced_model(module.total_input_bits(), zero_clusters, records);
    });
}

} // namespace hdpm::core
