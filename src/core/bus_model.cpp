#include "core/bus_model.hpp"

#include "util/error.hpp"

namespace hdpm::core {

using util::BitVec;

BusPowerModel::BusPowerModel(int width, double line_cap_ff, double vdd_v,
                             double clock_cap_ff)
    : width_(width),
      per_toggle_fc_(0.5 * line_cap_ff * vdd_v),
      clock_fc_(0.5 * clock_cap_ff * vdd_v)
{
    HDPM_REQUIRE(width >= 1, "bus needs at least one line");
    HDPM_REQUIRE(line_cap_ff > 0.0, "line capacitance must be positive");
    HDPM_REQUIRE(vdd_v > 0.0, "Vdd must be positive");
    HDPM_REQUIRE(clock_cap_ff >= 0.0, "negative clock capacitance");
}

double BusPowerModel::estimate_cycle(int hd) const
{
    HDPM_REQUIRE(hd >= 0 && hd <= width_, "Hd ", hd, " outside [0, ", width_, "]");
    return clock_fc_ + per_toggle_fc_ * static_cast<double>(hd);
}

double BusPowerModel::estimate_average(std::span<const BitVec> patterns) const
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    for (const BitVec& pattern : patterns) {
        HDPM_REQUIRE(pattern.width() == width_, "pattern width mismatch");
    }
    return clock_fc_ +
           per_toggle_fc_ * streams::extract_average_hd(patterns);
}

double BusPowerModel::estimate_from_distribution(
    std::span<const double> hd_distribution) const
{
    HDPM_REQUIRE(static_cast<int>(hd_distribution.size()) == width_ + 1,
                 "distribution must have width+1 entries");
    double mean_hd = 0.0;
    for (std::size_t i = 0; i < hd_distribution.size(); ++i) {
        mean_hd += static_cast<double>(i) * hd_distribution[i];
    }
    return clock_fc_ + per_toggle_fc_ * mean_hd;
}

double BusPowerModel::estimate_from_stats(const streams::WordStats& stats,
                                          streams::NumberFormat format) const
{
    HDPM_REQUIRE(stats.width == width_, "word width ", stats.width, " vs bus width ",
                 width_);
    return clock_fc_ +
           per_toggle_fc_ * stats::analytic_average_hd(stats, format);
}

} // namespace hdpm::core
