#pragma once

#include <cstddef>
#include <span>

namespace hdpm::core {

/// Accuracy of a model's per-cycle estimates against the reference
/// simulation, using the paper's two error metrics (section 4.2):
///   ε_a = (1/n)·Σ |(Q_model[j] − Q_ref[j]) / Q_ref[j]| · 100 %
///   ε   = (ΣQ_model − ΣQ_ref) / ΣQ_ref · 100 %        (signed)
struct AccuracyReport {
    double avg_abs_cycle_error_pct = 0.0; ///< ε_a
    double avg_error_pct = 0.0;           ///< ε (signed average-power error)
    std::size_t cycles = 0;               ///< cycles compared
    std::size_t skipped_zero_reference = 0; ///< cycles with Q_ref = 0 excluded from ε_a
};

/// Compare per-cycle estimates against reference values of equal length.
/// Cycles whose reference charge is zero are excluded from ε_a (the
/// paper's relative metric is undefined there) but still enter ε.
[[nodiscard]] AccuracyReport compare_cycles(std::span<const double> estimate,
                                            std::span<const double> reference);

} // namespace hdpm::core
