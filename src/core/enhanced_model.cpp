#include "core/enhanced_model.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace hdpm::core {

using util::BitVec;

EnhancedHdModel::EnhancedHdModel(int input_bits, int zero_clusters,
                                 std::vector<std::vector<double>> coefficients,
                                 std::vector<std::vector<double>> deviations,
                                 std::vector<std::vector<std::size_t>> sample_counts,
                                 HdModel fallback)
    : input_bits_(input_bits),
      zero_clusters_(zero_clusters),
      coefficients_(std::move(coefficients)),
      deviations_(std::move(deviations)),
      samples_(std::move(sample_counts)),
      fallback_(std::move(fallback))
{
    HDPM_REQUIRE(input_bits_ >= 1, "model needs at least one input bit");
    HDPM_REQUIRE(zero_clusters_ >= 0, "negative cluster count");
    HDPM_REQUIRE(fallback_.input_bits() == input_bits_, "fallback model width mismatch");
    HDPM_REQUIRE(static_cast<int>(coefficients_.size()) == input_bits_,
                 "coefficient table must have m rows");
    for (int hd = 1; hd <= input_bits_; ++hd) {
        const auto expected = static_cast<std::size_t>(num_clusters(hd));
        HDPM_REQUIRE(coefficients_[static_cast<std::size_t>(hd - 1)].size() == expected,
                     "row ", hd, " cluster count mismatch");
        HDPM_REQUIRE(deviations_[static_cast<std::size_t>(hd - 1)].size() == expected,
                     "deviation row ", hd, " size mismatch");
        HDPM_REQUIRE(samples_[static_cast<std::size_t>(hd - 1)].size() == expected,
                     "sample row ", hd, " size mismatch");
    }
}

int EnhancedHdModel::num_clusters(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= input_bits_, "Hd ", hd, " outside [1, ", input_bits_,
                 "]");
    const int levels = input_bits_ - hd + 1; // zeros ∈ [0, m−hd]
    if (zero_clusters_ == 0) {
        return levels;
    }
    return std::min(zero_clusters_, levels);
}

int EnhancedHdModel::cluster_of(int hd, int zeros) const
{
    const int levels = input_bits_ - hd + 1;
    HDPM_REQUIRE(zeros >= 0 && zeros < levels, "zeros ", zeros, " outside [0, ",
                 levels - 1, "] for Hd ", hd);
    const int clusters = num_clusters(hd);
    if (clusters == levels) {
        return zeros;
    }
    return std::min(clusters - 1, zeros * clusters / levels);
}

double EnhancedHdModel::coefficient(int hd, int zeros) const
{
    const int c = cluster_of(hd, zeros);
    if (samples_[static_cast<std::size_t>(hd - 1)][static_cast<std::size_t>(c)] == 0) {
        return fallback_.coefficient(hd);
    }
    return coefficients_[static_cast<std::size_t>(hd - 1)][static_cast<std::size_t>(c)];
}

double EnhancedHdModel::deviation(int hd, int zeros) const
{
    const int c = cluster_of(hd, zeros);
    if (samples_[static_cast<std::size_t>(hd - 1)][static_cast<std::size_t>(c)] == 0) {
        return fallback_.deviation(hd);
    }
    return deviations_[static_cast<std::size_t>(hd - 1)][static_cast<std::size_t>(c)];
}

std::size_t EnhancedHdModel::sample_count(int hd, int zeros) const
{
    const int c = cluster_of(hd, zeros);
    return samples_[static_cast<std::size_t>(hd - 1)][static_cast<std::size_t>(c)];
}

double EnhancedHdModel::average_deviation() const
{
    double sum = 0.0;
    std::size_t populated = 0;
    for (std::size_t row = 0; row < deviations_.size(); ++row) {
        for (std::size_t c = 0; c < deviations_[row].size(); ++c) {
            if (samples_[row][c] > 0) {
                sum += deviations_[row][c];
                ++populated;
            }
        }
    }
    return populated > 0 ? sum / static_cast<double>(populated) : 0.0;
}

std::size_t EnhancedHdModel::num_coefficients() const
{
    std::size_t total = 0;
    for (const auto& row : coefficients_) {
        total += row.size();
    }
    return total;
}

double EnhancedHdModel::estimate_cycle(int hd, int zeros) const
{
    if (hd == 0) {
        return 0.0;
    }
    return coefficient(hd, zeros);
}

std::vector<double> EnhancedHdModel::estimate_cycles(
    std::span<const BitVec> patterns) const
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    // Width checks hoisted out of the classification loop (same message,
    // first offending index first).
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == input_bits_, "pattern width ",
                     patterns[j].width(), " vs model m=", input_bits_);
    }
    std::vector<double> q;
    q.reserve(patterns.size() - 1);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        const int hd = BitVec::hamming_distance(patterns[j - 1], patterns[j]);
        const int zeros = BitVec::stable_zeros(patterns[j - 1], patterns[j]);
        q.push_back(estimate_cycle(hd, zeros));
    }
    return q;
}

double EnhancedHdModel::estimate_average(std::span<const BitVec> patterns) const
{
    const std::vector<double> q = estimate_cycles(patterns);
    double total = 0.0;
    for (const double v : q) {
        total += v;
    }
    return total / static_cast<double>(q.size());
}

double EnhancedHdModel::estimate_from_distribution(
    std::span<const double> hd_distribution, std::span<const double> expected_zeros) const
{
    HDPM_REQUIRE(static_cast<int>(hd_distribution.size()) == input_bits_ + 1,
                 "distribution must have m+1 entries, got ", hd_distribution.size());
    HDPM_REQUIRE(expected_zeros.size() == hd_distribution.size(),
                 "expected_zeros must have m+1 entries, got ", expected_zeros.size());
    double q = 0.0;
    for (int i = 1; i <= input_bits_; ++i) {
        const double p = hd_distribution[static_cast<std::size_t>(i)];
        if (p == 0.0) {
            continue;
        }
        const int zeros = std::clamp(
            static_cast<int>(std::lround(expected_zeros[static_cast<std::size_t>(i)])), 0,
            input_bits_ - i);
        q += p * coefficient(i, zeros);
    }
    return q;
}

double EnhancedHdModel::estimate_from_histogram(
    const streams::HdClassHistogram& histogram) const
{
    HDPM_REQUIRE(histogram.width == input_bits_, "histogram width ", histogram.width,
                 " vs model m=", input_bits_);
    HDPM_REQUIRE(histogram.pairs > 0, "empty histogram");
    const auto stride = static_cast<std::size_t>(input_bits_) + 1;
    HDPM_REQUIRE(histogram.counts.size() == stride * stride,
                 "histogram must have (m+1)² entries, got ", histogram.counts.size());
    double total = 0.0;
    for (int hd = 1; hd <= input_bits_; ++hd) {
        for (int zeros = 0; zeros <= input_bits_ - hd; ++zeros) {
            const std::uint64_t n =
                histogram.counts[static_cast<std::size_t>(hd) * stride +
                                 static_cast<std::size_t>(zeros)];
            if (n != 0) {
                total += static_cast<double>(n) * coefficient(hd, zeros);
            }
        }
    }
    return total / static_cast<double>(histogram.pairs);
}

double EnhancedHdModel::estimate_trace(const streams::PackedTrace& trace,
                                       const streams::KernelOptions& options) const
{
    HDPM_REQUIRE(trace.width() == input_bits_, "trace width ", trace.width(),
                 " vs model m=", input_bits_);
    return estimate_from_histogram(streams::hd_class_histogram(trace, options));
}

void EnhancedHdModel::save(std::ostream& os) const
{
    const auto old_precision = os.precision(17); // lossless double round trip
    os << "enhanced_hdmodel 1\n";
    os << "m " << input_bits_ << " clusters " << zero_clusters_ << '\n';
    for (int hd = 1; hd <= input_bits_; ++hd) {
        const auto row = static_cast<std::size_t>(hd - 1);
        for (std::size_t c = 0; c < coefficients_[row].size(); ++c) {
            os << hd << ' ' << c << ' ' << coefficients_[row][c] << ' '
               << deviations_[row][c] << ' ' << samples_[row][c] << '\n';
        }
    }
    os << "fallback\n";
    fallback_.save(os);
    os << "end\n";
    os.precision(old_precision);
}

EnhancedHdModel EnhancedHdModel::load(std::istream& is)
{
    std::string tag;
    int version = 0;
    is >> tag >> version;
    if (!is || tag != "enhanced_hdmodel" || version != 1) {
        HDPM_FAIL("not a version-1 enhanced_hdmodel file");
    }
    int m = 0;
    int clusters = 0;
    std::string ctag;
    is >> tag >> m >> ctag >> clusters;
    if (!is || tag != "m" || ctag != "clusters" || m < 1 || clusters < 0) {
        HDPM_FAIL("malformed enhanced_hdmodel header");
    }

    // Row sizes are implied by (m, clusters); rebuild the empty table and
    // fill it from the rows until the 'fallback' marker.
    std::vector<std::vector<double>> coeffs(static_cast<std::size_t>(m));
    std::vector<std::vector<double>> devs(static_cast<std::size_t>(m));
    std::vector<std::vector<std::size_t>> counts(static_cast<std::size_t>(m));
    for (int hd = 1; hd <= m; ++hd) {
        const int levels = m - hd + 1;
        const int row_clusters =
            clusters == 0 ? levels : std::min(clusters, levels);
        coeffs[static_cast<std::size_t>(hd - 1)].assign(
            static_cast<std::size_t>(row_clusters), 0.0);
        devs[static_cast<std::size_t>(hd - 1)].assign(
            static_cast<std::size_t>(row_clusters), 0.0);
        counts[static_cast<std::size_t>(hd - 1)].assign(
            static_cast<std::size_t>(row_clusters), 0);
    }

    for (;;) {
        is >> tag;
        if (!is) {
            HDPM_FAIL("unexpected end of enhanced_hdmodel file");
        }
        if (tag == "fallback") {
            break;
        }
        // Parse the row's hd tag with from_chars, not stoi: a corrupted
        // token must surface as the structured failure below, not as a
        // std::invalid_argument that bypasses the quarantine handling.
        int hd = 0;
        const auto [ptr, err] =
            std::from_chars(tag.data(), tag.data() + tag.size(), hd);
        if (err != std::errc{} || ptr != tag.data() + tag.size()) {
            HDPM_FAIL("malformed enhanced_hdmodel row tag '", tag, "'");
        }
        std::size_t c = 0;
        double p = 0.0;
        double eps = 0.0;
        std::size_t n = 0;
        is >> c >> p >> eps >> n;
        if (!is || hd < 1 || hd > m ||
            c >= coeffs[static_cast<std::size_t>(hd - 1)].size()) {
            HDPM_FAIL("malformed enhanced_hdmodel row");
        }
        if (!std::isfinite(p) || !std::isfinite(eps)) {
            util::FaultContext context;
            context.component = "enhanced_hdmodel";
            context.bitwidth = m;
            context.detail = "non-finite coefficient in row (hd=" +
                             std::to_string(hd) + ", cluster=" + std::to_string(c) +
                             ")";
            throw util::FaultError{util::FaultKind::ModelFileCorrupt,
                                   std::move(context)};
        }
        coeffs[static_cast<std::size_t>(hd - 1)][c] = p;
        devs[static_cast<std::size_t>(hd - 1)][c] = eps;
        counts[static_cast<std::size_t>(hd - 1)][c] = n;
    }

    HdModel fallback = HdModel::load(is);
    is >> tag;
    if (!is || tag != "end") {
        HDPM_FAIL("enhanced_hdmodel file missing 'end'");
    }
    return EnhancedHdModel{m,           clusters, std::move(coeffs), std::move(devs),
                           std::move(counts), std::move(fallback)};
}

} // namespace hdpm::core
