#pragma once

/// Umbrella header of the hdpower library: the Hamming-distance power
/// macro-modelling toolkit (DATE 1999 reproduction).
///
/// Typical flow:
///   1. Build a component:            dp::make_module(...)
///   2. Characterize it:              core::Characterizer::characterize(...)
///   3. (Optionally) fit a family:    core::ParameterizableModel::fit(...)
///   4. Estimate power of a stream:   model.estimate_average(patterns), or
///      statistically from word-level stats via core::estimate_from_word_stats.
/// The reference simulator behind all of it is sim::PowerSimulator.

#include "core/adaptive.hpp"
#include "core/bitwise_model.hpp"
#include "core/bus_model.hpp"
#include "core/char_report.hpp"
#include "core/characterize.hpp"
#include "core/corner_model.hpp"
#include "core/enhanced_model.hpp"
#include "core/error_metrics.hpp"
#include "core/estimation_engine.hpp"
#include "core/estimator.hpp"
#include "core/hd_model.hpp"
#include "core/model_library.hpp"
#include "core/regression.hpp"
#include "core/workloads.hpp"
#include "dpgen/arith.hpp"
#include "dpgen/module.hpp"
#include "gatelib/techlib.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "netlist/transform.hpp"
#include "sim/functional.hpp"
#include "sim/glitch.hpp"
#include "sim/power.hpp"
#include "sim/probabilistic.hpp"
#include "sim/report.hpp"
#include "sim/sequential.hpp"
#include "sim/vcd.hpp"
#include "stats/datamodel.hpp"
#include "stats/dfg.hpp"
#include "stats/gaussian.hpp"
#include "stats/propagation.hpp"
#include "streams/bitstats.hpp"
#include "streams/io.hpp"
#include "streams/kernels.hpp"
#include "streams/packed_trace.hpp"
#include "streams/stream.hpp"
#include "streams/wordstats.hpp"
