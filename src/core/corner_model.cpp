#include "core/corner_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/linalg.hpp"

namespace hdpm::core {

namespace {

/// The full surface basis evaluated at one corner coordinate.
std::vector<double> basis_row(double vdd, double temp, std::size_t terms)
{
    std::vector<double> row{1.0, vdd, vdd * vdd, temp, vdd * temp};
    row.resize(terms);
    return row;
}

} // namespace

CornerSurfaceModel CornerSurfaceModel::fit(std::span<const gate::Corner> corners,
                                           std::span<const HdModel> models)
{
    HDPM_REQUIRE(!corners.empty(), "corner surface needs at least one corner");
    HDPM_REQUIRE(corners.size() == models.size(),
                 "corners and models must be index-aligned");
    CornerSurfaceModel surface;
    surface.input_bits_ = models[0].input_bits();
    surface.load_class_ = corners[0].load_class;
    surface.corners_ = corners.size();
    for (std::size_t c = 1; c < corners.size(); ++c) {
        HDPM_REQUIRE(models[c].input_bits() == surface.input_bits_,
                     "corner models disagree on input width");
        HDPM_REQUIRE(corners[c].load_class == surface.load_class_,
                     "corner surface needs a uniform load class; fit one "
                     "surface per load class");
    }

    // Shrink the basis to the sample count: an overdetermined system is
    // fine, an underdetermined one would hand least_squares a singular
    // normal matrix. Term order {1, v, v², t, v·t} drops the subtlest
    // terms first.
    const std::size_t terms = std::min<std::size_t>(5, corners.size());

    const auto m = static_cast<std::size_t>(surface.input_bits_);
    surface.coefficients_.resize(m);
    surface.deviation_.assign(m, 0.0);
    surface.sample_count_.assign(m, 0);

    util::Matrix a{corners.size(), terms};
    for (std::size_t c = 0; c < corners.size(); ++c) {
        const std::vector<double> row =
            basis_row(corners[c].vdd_v, corners[c].temp_c, terms);
        for (std::size_t t = 0; t < terms; ++t) {
            a.at(c, t) = row[t];
        }
    }

    std::vector<double> b(corners.size(), 0.0);
    for (int hd = 1; hd <= surface.input_bits_; ++hd) {
        const auto row = static_cast<std::size_t>(hd - 1);
        std::size_t populated = 0;
        for (std::size_t c = 0; c < corners.size(); ++c) {
            b[c] = models[c].coefficient(hd);
            surface.deviation_[row] += models[c].deviation(hd);
            surface.sample_count_[row] += models[c].sample_count(hd);
            if (models[c].sample_count(hd) > 0) {
                ++populated;
            }
        }
        surface.deviation_[row] /= static_cast<double>(corners.size());
        if (populated == 0) {
            // An unpopulated class carries no signal at any corner; a flat
            // zero surface keeps model_at's output aligned with the fitted
            // models' own zeros.
            surface.coefficients_[row].assign(terms, 0.0);
            continue;
        }
        surface.coefficients_[row] = util::least_squares(a, b);
        surface.coefficients_[row].resize(terms, 0.0);
        for (std::size_t c = 0; c < corners.size(); ++c) {
            double predicted = 0.0;
            const std::vector<double> basis =
                basis_row(corners[c].vdd_v, corners[c].temp_c, terms);
            for (std::size_t t = 0; t < terms; ++t) {
                predicted += surface.coefficients_[row][t] * basis[t];
            }
            if (b[c] > 0.0) {
                surface.max_residual_ = std::max(
                    surface.max_residual_, std::abs(predicted - b[c]) / b[c]);
            }
        }
    }
    return surface;
}

HdModel CornerSurfaceModel::model_at(double vdd_v, double temp_c) const
{
    HDPM_REQUIRE(input_bits_ >= 1, "corner surface was never fitted");
    const auto m = static_cast<std::size_t>(input_bits_);
    std::vector<double> p(m, 0.0);
    const std::vector<double> basis = basis_row(vdd_v, temp_c, basis_terms());
    for (std::size_t row = 0; row < m; ++row) {
        double value = 0.0;
        for (std::size_t t = 0; t < coefficients_[row].size(); ++t) {
            value += coefficients_[row][t] * basis[t];
        }
        // Physics floor: charge is non-negative; a slightly negative
        // extrapolation (possible at the basis edge) clamps to zero.
        p[row] = std::max(0.0, value);
    }
    return HdModel{input_bits_, std::move(p), deviation_, sample_count_};
}

} // namespace hdpm::core
