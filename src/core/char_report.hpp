#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/characterize.hpp"

namespace hdpm::core {

/// Quality statistics of one Hamming-distance class of a characterization
/// run.
struct ClassQuality {
    int hd = 0;
    std::size_t samples = 0;
    double mean_fc = 0.0;            ///< p_i
    double stddev_fc = 0.0;          ///< intra-class charge spread
    double standard_error_fc = 0.0;  ///< σ/√n — coefficient confidence
    double deviation = 0.0;          ///< ε_i (paper eq. 5)

    /// Relative half-width of an approximate 95 % confidence interval.
    [[nodiscard]] double relative_ci95() const noexcept
    {
        return mean_fc > 0.0 ? 1.96 * standard_error_fc / mean_fc : 0.0;
    }
};

/// Characterization-run quality summary: per-class occupancy, confidence,
/// and the run's overall spread. The paper stops at "characterization can
/// be finished after the coefficient values have converged"; this report
/// makes that call auditable — thin classes and wide intervals show up
/// immediately.
struct CharacterizationReport {
    int input_bits = 0;
    std::size_t total_records = 0;
    std::vector<ClassQuality> classes; ///< index 0 = Hd 1
    double min_charge_fc = 0.0;
    double max_charge_fc = 0.0;

    /// Run counters (wall clock, simulated transitions, shards, threads);
    /// populated by the summarize overload that receives CharRunStats —
    /// run.records == 0 means "not measured".
    CharRunStats run;

    /// Worst relative 95 % CI half-width over populated classes.
    [[nodiscard]] double worst_relative_ci95() const noexcept;

    /// Smallest per-class sample count (0 if any class is empty).
    [[nodiscard]] std::size_t min_class_samples() const noexcept;
};

/// Summarize raw characterization records.
[[nodiscard]] CharacterizationReport summarize_characterization(
    int input_bits, std::span<const CharacterizationRecord> records);

/// Summarize records and attach the run counters collected through
/// CharacterizationOptions::stats.
[[nodiscard]] CharacterizationReport summarize_characterization(
    int input_bits, std::span<const CharacterizationRecord> records,
    const CharRunStats& run);

/// Print the report as an aligned table.
void print_characterization_report(std::ostream& os,
                                   const CharacterizationReport& report);

} // namespace hdpm::core
