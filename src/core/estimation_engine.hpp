#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/bitwise_model.hpp"
#include "core/enhanced_model.hpp"
#include "core/hd_model.hpp"
#include "streams/kernels.hpp"
#include "streams/packed_trace.hpp"

namespace hdpm::core {

/// Throughput counters of an engine's estimate calls since the last
/// reset_stats(). Cycles are counted per (model, trace) evaluation, so
/// evaluating 3 models against a 1M-cycle trace reports 3M cycles even
/// when the classification histogram was computed only once.
struct EstimateRunStats {
    std::size_t models = 0;          ///< (model, trace) evaluations served
    std::size_t cycles = 0;          ///< transitions evaluated across them
    std::size_t histograms_built = 0;///< classification passes actually run
    std::size_t cache_hits = 0;      ///< evaluations served from the cache
    double seconds = 0.0;            ///< wall time inside estimate calls

    /// Serving throughput in estimated cycles per second (0 if no time
    /// was measured).
    [[nodiscard]] double cycles_per_second() const noexcept
    {
        return seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
    }
};

/// A model reference an EstimationEngine can evaluate. Non-owning.
using AnyModel =
    std::variant<const HdModel*, const EnhancedHdModel*, const BitwiseLinearModel*>;

/// Batched trace-evaluation engine: evaluates models against packed traces,
/// computing each trace's classification histogram once and caching it per
/// (trace identity, trace geometry, histogram kind) so that serving many
/// models — or the same model repeatedly — against one trace pays for
/// classification once.
///
/// The kernels run with the engine's KernelOptions (packed/scalar, thread
/// count, chunking, SIMD tier); results are bit-identical across those
/// knobs, so the cache never needs to key on them. It does key on the
/// trace's width alongside its id — width fixes both the bin count and the
/// words-per-sample stride, so two traces that ever shared an id but not a
/// geometry can never alias an entry. Eviction is LRU and byte-aware: an
/// Hd entry holds (width+1) bins but a class entry holds (width+1)² — wide
/// traces are charged accordingly against cache_bytes. The engine itself
/// is not thread-safe: one engine per serving thread (the kernels
/// parallelize internally).
class EstimationEngine {
public:
    explicit EstimationEngine(streams::KernelOptions options = {},
                              std::size_t cache_capacity = 8,
                              std::size_t cache_bytes = std::size_t{64} << 20);

    [[nodiscard]] const streams::KernelOptions& options() const noexcept
    {
        return options_;
    }

    /// Replace the kernel options. The histogram cache stays valid (all
    /// kernel configurations produce identical integer histograms).
    void set_options(const streams::KernelOptions& options) noexcept
    {
        options_ = options;
    }

    /// Average charge per cycle of @p trace under each model kind. The Hd
    /// and enhanced models are served from cached histograms; the bitwise
    /// model evaluates per transition (its clamp is nonlinear — see
    /// BitwiseLinearModel::estimate_trace) and bypasses the cache.
    [[nodiscard]] double estimate(const HdModel& model,
                                  const streams::PackedTrace& trace);
    [[nodiscard]] double estimate(const EnhancedHdModel& model,
                                  const streams::PackedTrace& trace);
    [[nodiscard]] double estimate(const BitwiseLinearModel& model,
                                  const streams::PackedTrace& trace);

    /// Evaluate a batch of models against one trace; returns one average
    /// per model, in order.
    [[nodiscard]] std::vector<double> estimate_batch(std::span<const AnyModel> models,
                                                     const streams::PackedTrace& trace);

    /// The trace's Hd histogram, computed on first use and cached.
    [[nodiscard]] const streams::HdHistogram& hd_histogram(
        const streams::PackedTrace& trace);

    /// The trace's (Hd, stable-zero) class histogram, cached likewise.
    [[nodiscard]] const streams::HdClassHistogram& hd_class_histogram(
        const streams::PackedTrace& trace);

    [[nodiscard]] const EstimateRunStats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }

    /// Bytes of histogram bins currently held by the cache.
    [[nodiscard]] std::size_t cache_bytes_used() const noexcept { return bytes_used_; }

    /// Drop all cached histograms.
    void clear_cache();

private:
    /// Cache identity: the trace id plus its width. The width pins the
    /// histogram geometry (bin count and words-per-sample), so an id that
    /// is ever reused across different trace shapes cannot serve a stale
    /// histogram of the wrong size.
    struct CacheKey {
        std::uint64_t id = 0;
        int width = 0;

        friend bool operator==(const CacheKey&, const CacheKey&) = default;
    };

    struct CacheKeyHash {
        [[nodiscard]] std::size_t operator()(const CacheKey& key) const noexcept
        {
            // splitmix-style mix of the two fields.
            std::uint64_t x =
                key.id ^ (static_cast<std::uint64_t>(key.width) * 0x9e3779b97f4a7c15ULL);
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ULL;
            x ^= x >> 27;
            return static_cast<std::size_t>(x);
        }
    };

    struct CacheEntry {
        std::optional<streams::HdHistogram> hd;
        std::optional<streams::HdClassHistogram> classes;
    };

    CacheEntry& entry_for(const streams::PackedTrace& trace);

    /// Kernel options with the chunk size rescaled so a chunk covers
    /// roughly the same number of *words* regardless of the trace's
    /// stride (wide samples get proportionally fewer samples per chunk).
    [[nodiscard]] streams::KernelOptions options_for(
        const streams::PackedTrace& trace) const noexcept;

    /// Evict LRU entries until both the entry and byte budgets hold,
    /// keeping at least the most recently used entry.
    void evict_to_budget();

    streams::KernelOptions options_;
    std::size_t cache_capacity_;
    std::size_t cache_bytes_;
    std::size_t bytes_used_ = 0;
    std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
    std::list<CacheKey> lru_; ///< most recently used first
    EstimateRunStats stats_;
};

} // namespace hdpm::core
