#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/bitwise_model.hpp"
#include "core/enhanced_model.hpp"
#include "core/hd_model.hpp"
#include "streams/kernels.hpp"
#include "streams/packed_trace.hpp"

namespace hdpm::core {

/// Throughput counters of an engine's estimate calls since the last
/// reset_stats(). Cycles are counted per (model, trace) evaluation, so
/// evaluating 3 models against a 1M-cycle trace reports 3M cycles even
/// when the classification histogram was computed only once.
struct EstimateRunStats {
    std::size_t models = 0;          ///< (model, trace) evaluations served
    std::size_t cycles = 0;          ///< transitions evaluated across them
    std::size_t histograms_built = 0;///< classification passes actually run
    std::size_t cache_hits = 0;      ///< evaluations served from the cache
    double seconds = 0.0;            ///< wall time inside estimate calls

    /// Serving throughput in estimated cycles per second (0 if no time
    /// was measured).
    [[nodiscard]] double cycles_per_second() const noexcept
    {
        return seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
    }
};

/// A model reference an EstimationEngine can evaluate. Non-owning.
using AnyModel =
    std::variant<const HdModel*, const EnhancedHdModel*, const BitwiseLinearModel*>;

/// Batched trace-evaluation engine: evaluates models against packed traces,
/// computing each trace's classification histogram once and caching it per
/// (trace identity, histogram kind) so that serving many models — or the
/// same model repeatedly — against one trace pays for classification once.
///
/// The kernels run with the engine's KernelOptions (packed/scalar, thread
/// count, chunking); results are bit-identical across those knobs, so the
/// cache never needs to key on them. The engine itself is not thread-safe:
/// one engine per serving thread (the kernels parallelize internally).
class EstimationEngine {
public:
    explicit EstimationEngine(streams::KernelOptions options = {},
                              std::size_t cache_capacity = 8);

    [[nodiscard]] const streams::KernelOptions& options() const noexcept
    {
        return options_;
    }

    /// Replace the kernel options. The histogram cache stays valid (all
    /// kernel configurations produce identical integer histograms).
    void set_options(const streams::KernelOptions& options) noexcept
    {
        options_ = options;
    }

    /// Average charge per cycle of @p trace under each model kind. The Hd
    /// and enhanced models are served from cached histograms; the bitwise
    /// model evaluates per transition (its clamp is nonlinear — see
    /// BitwiseLinearModel::estimate_trace) and bypasses the cache.
    [[nodiscard]] double estimate(const HdModel& model,
                                  const streams::PackedTrace& trace);
    [[nodiscard]] double estimate(const EnhancedHdModel& model,
                                  const streams::PackedTrace& trace);
    [[nodiscard]] double estimate(const BitwiseLinearModel& model,
                                  const streams::PackedTrace& trace);

    /// Evaluate a batch of models against one trace; returns one average
    /// per model, in order.
    [[nodiscard]] std::vector<double> estimate_batch(std::span<const AnyModel> models,
                                                     const streams::PackedTrace& trace);

    /// The trace's Hd histogram, computed on first use and cached.
    [[nodiscard]] const streams::HdHistogram& hd_histogram(
        const streams::PackedTrace& trace);

    /// The trace's (Hd, stable-zero) class histogram, cached likewise.
    [[nodiscard]] const streams::HdClassHistogram& hd_class_histogram(
        const streams::PackedTrace& trace);

    [[nodiscard]] const EstimateRunStats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }

    /// Drop all cached histograms.
    void clear_cache();

private:
    struct CacheEntry {
        std::optional<streams::HdHistogram> hd;
        std::optional<streams::HdClassHistogram> classes;
    };

    CacheEntry& entry_for(const streams::PackedTrace& trace);

    streams::KernelOptions options_;
    std::size_t cache_capacity_;
    std::unordered_map<std::uint64_t, CacheEntry> cache_;
    std::list<std::uint64_t> lru_; ///< most recently used first
    EstimateRunStats stats_;
};

} // namespace hdpm::core
