#pragma once

#include <span>
#include <vector>

#include "core/hd_model.hpp"
#include "gatelib/techlib.hpp"

namespace hdpm::core {

/// A per-Hd-class coefficient surface over the (Vdd, temperature) plane.
///
/// A multi-corner sweep fits one HdModel per characterized corner; this
/// model regresses each coefficient p_i against the corner coordinates so
/// intermediate corners — a Vdd or temperature that was never simulated —
/// can be served by interpolation instead of a fresh characterization.
/// The regression basis is {1, v, v², t, v·t} (charge scales ~quadratically
/// in Vdd and linearly in temperature under the alpha-power derating
/// physics of gate::TechLibrary::at), shrunk adaptively when fewer corners
/// were characterized than the basis has terms.
///
/// All fitted corners must share one load class: wire-load scaling is a
/// discrete axis, not an interpolatable coordinate — fit one surface per
/// load class instead.
class CornerSurfaceModel {
public:
    /// Fit the surface from index-aligned corners and fitted models (e.g.
    /// Characterizer::characterize_corners output). Requires at least one
    /// corner, equal input widths, and a uniform load class.
    [[nodiscard]] static CornerSurfaceModel fit(std::span<const gate::Corner> corners,
                                                std::span<const HdModel> models);

    /// The interpolated basic model at (vdd_v, temp_c). Deviations and
    /// sample counts are not interpolated (they are measurement properties
    /// of the fitted corners, not physics): the returned model carries the
    /// per-class mean deviation and summed sample count of the fit set.
    [[nodiscard]] HdModel model_at(double vdd_v, double temp_c) const;

    [[nodiscard]] int input_bits() const noexcept { return input_bits_; }
    [[nodiscard]] gate::LoadClass load_class() const noexcept { return load_class_; }
    [[nodiscard]] std::size_t corners_fitted() const noexcept { return corners_; }
    /// Basis terms actually used ({1} ⊆ basis ⊆ {1, v, v², t, v·t}).
    [[nodiscard]] std::size_t basis_terms() const noexcept
    {
        return coefficients_.empty() ? 0 : coefficients_.front().size();
    }

    /// Max relative residual of the fit over the fitted corners and
    /// populated classes — how faithfully the surface reproduces its own
    /// training corners (0 for an exactly determined fit).
    [[nodiscard]] double max_fit_residual() const noexcept { return max_residual_; }

private:
    int input_bits_ = 0;
    gate::LoadClass load_class_ = gate::LoadClass::Nominal;
    std::size_t corners_ = 0;
    double max_residual_ = 0.0;
    /// coefficients_[hd-1] = basis weights of class hd's surface.
    std::vector<std::vector<double>> coefficients_;
    std::vector<double> deviation_;          ///< per class, mean over corners
    std::vector<std::size_t> sample_count_;  ///< per class, summed over corners
};

} // namespace hdpm::core
