#include "core/bitwise_model.hpp"

#include <bit>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/linalg.hpp"

namespace hdpm::core {

using util::BitVec;

BitwiseLinearModel::BitwiseLinearModel(double intercept, std::vector<double> weights)
    : intercept_(intercept), weights_(std::move(weights))
{
    HDPM_REQUIRE(!weights_.empty(), "model needs at least one input bit");
}

BitwiseLinearModel BitwiseLinearModel::fit(
    int input_bits, std::span<const CharacterizationRecord> records)
{
    HDPM_REQUIRE(input_bits >= 1 && input_bits <= 64, "bad input width");
    HDPM_REQUIRE(records.size() > static_cast<std::size_t>(input_bits),
                 "need more records (", records.size(), ") than parameters (",
                 input_bits + 1, ")");

    // Least squares over the (m+1)-column design [τ_0 .. τ_{m-1}, 1].
    const auto k = static_cast<std::size_t>(input_bits) + 1;
    util::Matrix design{records.size(), k};
    std::vector<double> rhs(records.size());
    for (std::size_t r = 0; r < records.size(); ++r) {
        for (int bit = 0; bit < input_bits; ++bit) {
            design.at(r, static_cast<std::size_t>(bit)) =
                static_cast<double>((records[r].toggle_mask >> bit) & 1U);
        }
        design.at(r, k - 1) = 1.0;
        rhs[r] = records[r].charge_fc;
    }
    std::vector<double> solution = util::least_squares(design, rhs);

    const double intercept = solution.back();
    solution.pop_back();
    return BitwiseLinearModel{intercept, std::move(solution)};
}

double BitwiseLinearModel::weight(int bit) const
{
    HDPM_REQUIRE(bit >= 0 && bit < input_bits(), "bit ", bit, " outside [0, ",
                 input_bits(), ")");
    return weights_[static_cast<std::size_t>(bit)];
}

double BitwiseLinearModel::estimate_cycle(std::uint64_t toggle_mask) const
{
    if (toggle_mask == 0) {
        return 0.0; // no event, no charge (matches the Hd-model convention)
    }
    double q = intercept_;
    std::uint64_t mask = toggle_mask;
    while (mask != 0) {
        const int bit = std::countr_zero(mask);
        if (bit >= input_bits()) {
            break;
        }
        q += weights_[static_cast<std::size_t>(bit)];
        mask &= mask - 1;
    }
    return q > 0.0 ? q : 0.0;
}

std::vector<double> BitwiseLinearModel::estimate_cycles(
    std::span<const BitVec> patterns) const
{
    HDPM_REQUIRE(patterns.size() >= 2, "need at least two patterns");
    // Width checks hoisted out of the per-cycle loop (same message, first
    // offending index first).
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        HDPM_REQUIRE(patterns[j].width() == input_bits(), "pattern width ",
                     patterns[j].width(), " vs model m=", input_bits());
    }
    std::vector<double> q;
    q.reserve(patterns.size() - 1);
    for (std::size_t j = 1; j < patterns.size(); ++j) {
        q.push_back(estimate_cycle((patterns[j - 1] ^ patterns[j]).raw()));
    }
    return q;
}

double BitwiseLinearModel::estimate_average(std::span<const BitVec> patterns) const
{
    const std::vector<double> q = estimate_cycles(patterns);
    double total = 0.0;
    for (const double v : q) {
        total += v;
    }
    return total / static_cast<double>(q.size());
}

double BitwiseLinearModel::estimate_trace(const streams::PackedTrace& trace) const
{
    HDPM_REQUIRE(trace.width() == input_bits(), "trace width ", trace.width(),
                 " vs model m=", input_bits());
    HDPM_REQUIRE(trace.size() >= 2, "need at least two patterns");
    const std::span<const std::uint64_t> words = trace.words();
    const std::size_t stride = trace.words_per_sample();
    double total = 0.0;
    if (stride == 1) {
        for (std::size_t j = 1; j < words.size(); ++j) {
            total += estimate_cycle(words[j] ^ words[j - 1]);
        }
        return total / static_cast<double>(words.size() - 1);
    }
    // Multi-word walk: same event convention and same summation order as
    // estimate_cycle (intercept first, then weights in ascending global
    // bit order), so the stride-1 path and this one agree to the last ulp
    // on equal toggle sets. Bits above width() are zero in every sample,
    // so no per-bit range guard is needed.
    for (std::size_t j = 1; j < trace.size(); ++j) {
        const std::uint64_t* prev = words.data() + (j - 1) * stride;
        const std::uint64_t* cur = prev + stride;
        std::uint64_t any = 0;
        for (std::size_t k = 0; k < stride; ++k) {
            any |= prev[k] ^ cur[k];
        }
        if (any == 0) {
            continue; // no event, no charge (matches estimate_cycle)
        }
        double q = intercept_;
        for (std::size_t k = 0; k < stride; ++k) {
            std::uint64_t mask = prev[k] ^ cur[k];
            const std::size_t base = k * 64;
            while (mask != 0) {
                const int bit = std::countr_zero(mask);
                mask &= mask - 1;
                q += weights_[base + static_cast<std::size_t>(bit)];
            }
        }
        total += q > 0.0 ? q : 0.0;
    }
    return total / static_cast<double>(trace.size() - 1);
}

void BitwiseLinearModel::save(std::ostream& os) const
{
    const auto old_precision = os.precision(17);
    os << "bitwise_linear_model 1\n";
    os << "m " << input_bits() << " b0 " << intercept_ << '\n';
    for (int bit = 0; bit < input_bits(); ++bit) {
        os << bit << ' ' << weights_[static_cast<std::size_t>(bit)] << '\n';
    }
    os << "end\n";
    os.precision(old_precision);
}

BitwiseLinearModel BitwiseLinearModel::load(std::istream& is)
{
    std::string tag;
    int version = 0;
    is >> tag >> version;
    if (!is || tag != "bitwise_linear_model" || version != 1) {
        HDPM_FAIL("not a version-1 bitwise_linear_model file");
    }
    int m = 0;
    double intercept = 0.0;
    std::string btag;
    is >> tag >> m >> btag >> intercept;
    if (!is || tag != "m" || btag != "b0" || m < 1) {
        HDPM_FAIL("malformed bitwise_linear_model header");
    }
    std::vector<double> weights(static_cast<std::size_t>(m), 0.0);
    for (int bit = 0; bit < m; ++bit) {
        int idx = 0;
        double w = 0.0;
        is >> idx >> w;
        if (!is || idx != bit) {
            HDPM_FAIL("malformed bitwise_linear_model row ", bit);
        }
        weights[static_cast<std::size_t>(bit)] = w;
    }
    is >> tag;
    if (!is || tag != "end") {
        HDPM_FAIL("bitwise_linear_model file missing 'end'");
    }
    return BitwiseLinearModel{intercept, std::move(weights)};
}

} // namespace hdpm::core
