#include "core/estimation_engine.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace hdpm::core {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

EstimationEngine::EstimationEngine(streams::KernelOptions options,
                                   std::size_t cache_capacity,
                                   std::size_t cache_bytes)
    : options_(options), cache_capacity_(std::max<std::size_t>(cache_capacity, 1)),
      cache_bytes_(cache_bytes)
{
}

streams::KernelOptions EstimationEngine::options_for(
    const streams::PackedTrace& trace) const noexcept
{
    streams::KernelOptions opts = options_;
    // Keep the words-per-chunk (and thus per-task cost) roughly constant
    // across strides. Chunk layout only affects work division, never the
    // counts, so this is purely a scheduling choice.
    opts.chunk = std::max<std::size_t>(options_.chunk / trace.words_per_sample(), 2);
    return opts;
}

EstimationEngine::CacheEntry& EstimationEngine::entry_for(
    const streams::PackedTrace& trace)
{
    const CacheKey key{trace.id(), trace.width()};
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        // Refresh LRU position.
        lru_.remove(key);
        lru_.push_front(key);
        return it->second;
    }
    lru_.push_front(key);
    CacheEntry& entry = cache_[key];
    evict_to_budget();
    return entry;
}

void EstimationEngine::evict_to_budget()
{
    while (cache_.size() > 1 &&
           (cache_.size() > cache_capacity_ || bytes_used_ > cache_bytes_)) {
        const CacheKey victim = lru_.back();
        lru_.pop_back();
        const auto it = cache_.find(victim);
        if (it != cache_.end()) {
            const CacheEntry& entry = it->second;
            if (entry.hd) {
                bytes_used_ -= entry.hd->counts.size() * sizeof(std::uint64_t);
            }
            if (entry.classes) {
                bytes_used_ -= entry.classes->counts.size() * sizeof(std::uint64_t);
            }
            cache_.erase(it);
        }
    }
}

const streams::HdHistogram& EstimationEngine::hd_histogram(
    const streams::PackedTrace& trace)
{
    CacheEntry& entry = entry_for(trace);
    if (!entry.hd) {
        entry.hd = streams::hd_histogram(trace, options_for(trace));
        bytes_used_ += entry.hd->counts.size() * sizeof(std::uint64_t);
        ++stats_.histograms_built;
        evict_to_budget();
    } else {
        ++stats_.cache_hits;
    }
    return *entry.hd;
}

const streams::HdClassHistogram& EstimationEngine::hd_class_histogram(
    const streams::PackedTrace& trace)
{
    CacheEntry& entry = entry_for(trace);
    if (!entry.classes) {
        entry.classes = streams::hd_class_histogram(trace, options_for(trace));
        bytes_used_ += entry.classes->counts.size() * sizeof(std::uint64_t);
        ++stats_.histograms_built;
        evict_to_budget();
    } else {
        ++stats_.cache_hits;
    }
    return *entry.classes;
}

double EstimationEngine::estimate(const HdModel& model,
                                  const streams::PackedTrace& trace)
{
    HDPM_REQUIRE(trace.width() == model.input_bits(), "trace width ", trace.width(),
                 " vs model m=", model.input_bits());
    const auto start = Clock::now();
    const double q = model.estimate_from_histogram(hd_histogram(trace));
    stats_.seconds += elapsed_seconds(start);
    ++stats_.models;
    stats_.cycles += trace.cycles();
    return q;
}

double EstimationEngine::estimate(const EnhancedHdModel& model,
                                  const streams::PackedTrace& trace)
{
    HDPM_REQUIRE(trace.width() == model.input_bits(), "trace width ", trace.width(),
                 " vs model m=", model.input_bits());
    const auto start = Clock::now();
    const double q = model.estimate_from_histogram(hd_class_histogram(trace));
    stats_.seconds += elapsed_seconds(start);
    ++stats_.models;
    stats_.cycles += trace.cycles();
    return q;
}

double EstimationEngine::estimate(const BitwiseLinearModel& model,
                                  const streams::PackedTrace& trace)
{
    const auto start = Clock::now();
    const double q = model.estimate_trace(trace);
    stats_.seconds += elapsed_seconds(start);
    ++stats_.models;
    stats_.cycles += trace.cycles();
    return q;
}

std::vector<double> EstimationEngine::estimate_batch(std::span<const AnyModel> models,
                                                     const streams::PackedTrace& trace)
{
    std::vector<double> results;
    results.reserve(models.size());
    for (const AnyModel& model : models) {
        results.push_back(std::visit(
            [&](const auto* m) {
                HDPM_REQUIRE(m != nullptr, "null model in batch");
                return estimate(*m, trace);
            },
            model));
    }
    return results;
}

void EstimationEngine::clear_cache()
{
    cache_.clear();
    lru_.clear();
    bytes_used_ = 0;
}

} // namespace hdpm::core
