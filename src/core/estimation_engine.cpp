#include "core/estimation_engine.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace hdpm::core {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

EstimationEngine::EstimationEngine(streams::KernelOptions options,
                                   std::size_t cache_capacity)
    : options_(options), cache_capacity_(std::max<std::size_t>(cache_capacity, 1))
{
}

EstimationEngine::CacheEntry& EstimationEngine::entry_for(
    const streams::PackedTrace& trace)
{
    const std::uint64_t key = trace.id();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        // Refresh LRU position.
        lru_.remove(key);
        lru_.push_front(key);
        return it->second;
    }
    if (cache_.size() >= cache_capacity_) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
    }
    lru_.push_front(key);
    return cache_[key];
}

const streams::HdHistogram& EstimationEngine::hd_histogram(
    const streams::PackedTrace& trace)
{
    CacheEntry& entry = entry_for(trace);
    if (!entry.hd) {
        entry.hd = streams::hd_histogram(trace, options_);
        ++stats_.histograms_built;
    } else {
        ++stats_.cache_hits;
    }
    return *entry.hd;
}

const streams::HdClassHistogram& EstimationEngine::hd_class_histogram(
    const streams::PackedTrace& trace)
{
    CacheEntry& entry = entry_for(trace);
    if (!entry.classes) {
        entry.classes = streams::hd_class_histogram(trace, options_);
        ++stats_.histograms_built;
    } else {
        ++stats_.cache_hits;
    }
    return *entry.classes;
}

double EstimationEngine::estimate(const HdModel& model,
                                  const streams::PackedTrace& trace)
{
    HDPM_REQUIRE(trace.width() == model.input_bits(), "trace width ", trace.width(),
                 " vs model m=", model.input_bits());
    const auto start = Clock::now();
    const double q = model.estimate_from_histogram(hd_histogram(trace));
    stats_.seconds += elapsed_seconds(start);
    ++stats_.models;
    stats_.cycles += trace.cycles();
    return q;
}

double EstimationEngine::estimate(const EnhancedHdModel& model,
                                  const streams::PackedTrace& trace)
{
    HDPM_REQUIRE(trace.width() == model.input_bits(), "trace width ", trace.width(),
                 " vs model m=", model.input_bits());
    const auto start = Clock::now();
    const double q = model.estimate_from_histogram(hd_class_histogram(trace));
    stats_.seconds += elapsed_seconds(start);
    ++stats_.models;
    stats_.cycles += trace.cycles();
    return q;
}

double EstimationEngine::estimate(const BitwiseLinearModel& model,
                                  const streams::PackedTrace& trace)
{
    const auto start = Clock::now();
    const double q = model.estimate_trace(trace);
    stats_.seconds += elapsed_seconds(start);
    ++stats_.models;
    stats_.cycles += trace.cycles();
    return q;
}

std::vector<double> EstimationEngine::estimate_batch(std::span<const AnyModel> models,
                                                     const streams::PackedTrace& trace)
{
    std::vector<double> results;
    results.reserve(models.size());
    for (const AnyModel& model : models) {
        results.push_back(std::visit(
            [&](const auto* m) {
                HDPM_REQUIRE(m != nullptr, "null model in batch");
                return estimate(*m, trace);
            },
            model));
    }
    return results;
}

void EstimationEngine::clear_cache()
{
    cache_.clear();
    lru_.clear();
}

} // namespace hdpm::core
