#include "core/checkpoint.hpp"

#include <bit>
#include <fstream>
#include <sstream>

#include "util/fault.hpp"

namespace hdpm::core {

using util::FaultContext;
using util::FaultError;
using util::FaultKind;
using util::FaultPoint;

namespace {

constexpr std::string_view kMagic = "hdpm_checkpoint";
constexpr int kVersion = 1;

[[noreturn]] void corrupt(const std::filesystem::path& path, std::string detail)
{
    FaultContext context;
    context.component = path.string();
    context.detail = std::move(detail);
    throw FaultError{FaultKind::CheckpointCorrupt, std::move(context)};
}

std::string hex64(std::uint64_t value)
{
    char buf[17];
    for (int i = 15; i >= 0; --i) {
        buf[15 - i] = "0123456789abcdef"[(value >> (4 * i)) & 0xf];
    }
    buf[16] = '\0';
    return buf;
}

} // namespace

std::size_t CharCheckpoint::total_records() const
{
    std::size_t total = 0;
    for (const CheckpointShard& shard : shards) {
        total += shard.records.size();
    }
    return total;
}

void save_checkpoint(const std::filesystem::path& path,
                     const CharCheckpoint& checkpoint)
{
    // Serialize fully in memory first: the journal is then written with a
    // single stream insert and published with an atomic rename, the same
    // discipline the model library uses for .hdm files. Charges round-trip
    // as raw IEEE-754 bit patterns — resume must be bit-identical, and
    // decimal round trips are one rounding slip away from not being.
    std::ostringstream os;
    os << kMagic << ' ' << kVersion << '\n';
    os << "fingerprint " << hex64(checkpoint.fingerprint) << '\n';
    os << "module " << checkpoint.module_key << " m " << checkpoint.input_bits << '\n';
    for (const CheckpointShard& shard : checkpoint.shards) {
        os << "shard " << shard.index << ' ' << shard.records.size() << '\n';
        for (const CharacterizationRecord& rec : shard.records) {
            os << rec.hd << ' ' << rec.stable_zeros << ' '
               << hex64(std::bit_cast<std::uint64_t>(rec.charge_fc)) << ' '
               << hex64(rec.toggle_mask) << '\n';
        }
    }
    os << "end\n";
    std::string payload = os.str();
    HDPM_FAULT_MUTATE(FaultPoint::CheckpointShortWrite, payload);

    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
        if (!out) {
            FaultContext context;
            context.component = tmp.string();
            context.detail = "cannot open checkpoint tmp file for writing";
            throw FaultError{FaultKind::IoError, std::move(context)};
        }
        out << payload;
        out.flush();
        if (!out) {
            FaultContext context;
            context.component = tmp.string();
            context.detail = "short write publishing checkpoint";
            throw FaultError{FaultKind::IoError, std::move(context)};
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        FaultContext context;
        context.component = path.string();
        context.detail = "cannot publish checkpoint: " + ec.message();
        throw FaultError{FaultKind::IoError, std::move(context)};
    }
}

namespace {

/// Shared parser for the strict and the tolerant loaders. Damage raises
/// CheckpointCorrupt in strict mode; in tolerant mode it stops the parse at
/// the last fully valid shard block (anything behind a tear is untrusted)
/// and reports what was wrong via @p damage_detail.
std::optional<CharCheckpoint> parse_checkpoint(const std::filesystem::path& path,
                                               std::size_t first_shard, bool strict,
                                               bool& damaged,
                                               std::string& damage_detail)
{
    damaged = false;
    damage_detail.clear();
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        return std::nullopt;
    }

    // In tolerant mode a damage site keeps whatever parsed whole so far
    // (possibly nothing: then the header itself is unusable and the caller
    // starts fresh).
    const auto fail = [&](std::string detail) {
        if (strict) {
            corrupt(path, std::move(detail));
        }
        damaged = true;
        damage_detail = std::move(detail);
    };

    const auto parse_hex64 = [&](const std::string& text, const char* what,
                                 std::uint64_t& value) -> bool {
        if (text.size() != 16) {
            return false;
        }
        value = 0;
        for (const char c : text) {
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<std::uint64_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<std::uint64_t>(c - 'a' + 10);
            } else {
                return false;
            }
        }
        (void)what;
        return true;
    };

    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (!in || tag != kMagic || version != kVersion) {
        fail("bad magic/version header");
        return std::nullopt;
    }

    CharCheckpoint checkpoint;
    std::string hex;
    in >> tag >> hex;
    if (!in || tag != "fingerprint" ||
        !parse_hex64(hex, "fingerprint", checkpoint.fingerprint)) {
        fail("missing or malformed fingerprint header");
        return std::nullopt;
    }

    std::string mtag;
    in >> tag >> checkpoint.module_key >> mtag >> checkpoint.input_bits;
    if (!in || tag != "module" || mtag != "m" || checkpoint.input_bits < 1) {
        fail("malformed module header");
        return std::nullopt;
    }

    for (;;) {
        in >> tag;
        if (!in) {
            fail("truncated journal (missing 'end')");
            return checkpoint;
        }
        if (tag == "end") {
            break;
        }
        if (tag != "shard") {
            fail("unexpected token '" + tag + "'");
            return checkpoint;
        }
        CheckpointShard shard;
        std::size_t count = 0;
        in >> shard.index >> count;
        if (!in) {
            fail("malformed shard header");
            return checkpoint;
        }
        // Shards are merged — and therefore journaled — strictly in plan
        // order, so anything else is damage, not a valid journal.
        if (shard.index != first_shard + checkpoint.shards.size()) {
            fail("shard indices are not a contiguous prefix");
            return checkpoint;
        }
        shard.records.reserve(count);
        bool shard_ok = true;
        for (std::size_t i = 0; i < count; ++i) {
            CharacterizationRecord rec;
            std::string charge_hex;
            std::string mask_hex;
            std::uint64_t charge_bits = 0;
            in >> rec.hd >> rec.stable_zeros >> charge_hex >> mask_hex;
            if (!in || rec.hd < 1 || rec.hd > checkpoint.input_bits ||
                rec.stable_zeros < 0 ||
                rec.stable_zeros > checkpoint.input_bits - rec.hd ||
                !parse_hex64(charge_hex, "charge", charge_bits) ||
                !parse_hex64(mask_hex, "toggle mask", rec.toggle_mask)) {
                fail("malformed record in shard " + std::to_string(shard.index));
                shard_ok = false;
                break;
            }
            rec.charge_fc = std::bit_cast<double>(charge_bits);
            shard.records.push_back(rec);
        }
        if (!shard_ok) {
            // A torn record invalidates its whole shard block: keep only
            // the shards that parsed whole.
            return checkpoint;
        }
        checkpoint.shards.push_back(std::move(shard));
    }
    return checkpoint;
}

} // namespace

std::optional<CharCheckpoint> load_checkpoint(const std::filesystem::path& path,
                                              std::size_t first_shard)
{
    bool damaged = false;
    std::string detail;
    return parse_checkpoint(path, first_shard, /*strict=*/true, damaged, detail);
}

CheckpointSalvage salvage_checkpoint(const std::filesystem::path& path,
                                     std::size_t first_shard)
{
    CheckpointSalvage salvage;
    bool damaged = false;
    salvage.checkpoint =
        parse_checkpoint(path, first_shard, /*strict=*/false, damaged, salvage.detail);
    salvage.clean = !damaged;
    return salvage;
}

} // namespace hdpm::core
