#include "core/char_report.hpp"

#include <cmath>
#include <ostream>

#include "util/accumulators.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace hdpm::core {

double CharacterizationReport::worst_relative_ci95() const noexcept
{
    double worst = 0.0;
    for (const ClassQuality& cls : classes) {
        if (cls.samples > 0) {
            worst = std::max(worst, cls.relative_ci95());
        }
    }
    return worst;
}

std::size_t CharacterizationReport::min_class_samples() const noexcept
{
    std::size_t least = ~std::size_t{0};
    for (const ClassQuality& cls : classes) {
        least = std::min(least, cls.samples);
    }
    return classes.empty() ? 0 : least;
}

CharacterizationReport summarize_characterization(
    int input_bits, std::span<const CharacterizationRecord> records)
{
    HDPM_REQUIRE(input_bits >= 1, "bad input width");
    HDPM_REQUIRE(!records.empty(), "no records");

    std::vector<util::RunningStats> per_class(static_cast<std::size_t>(input_bits));
    util::RunningStats overall;
    for (const CharacterizationRecord& rec : records) {
        HDPM_REQUIRE(rec.hd >= 1 && rec.hd <= input_bits, "record Hd out of range");
        per_class[static_cast<std::size_t>(rec.hd - 1)].add(rec.charge_fc);
        overall.add(rec.charge_fc);
    }

    CharacterizationReport report;
    report.input_bits = input_bits;
    report.total_records = records.size();
    report.min_charge_fc = overall.min();
    report.max_charge_fc = overall.max();
    report.classes.resize(static_cast<std::size_t>(input_bits));
    for (int hd = 1; hd <= input_bits; ++hd) {
        const util::RunningStats& stats = per_class[static_cast<std::size_t>(hd - 1)];
        ClassQuality cls;
        cls.hd = hd;
        cls.samples = stats.count();
        cls.mean_fc = stats.mean();
        cls.stddev_fc = stats.stddev();
        cls.standard_error_fc =
            stats.count() > 0 ? stats.stddev() / std::sqrt(static_cast<double>(stats.count()))
                              : 0.0;
        report.classes[static_cast<std::size_t>(hd - 1)] = cls;
    }
    // Exact ε_i (paper eq. 5) in a second pass.
    std::vector<double> abs_dev(static_cast<std::size_t>(input_bits), 0.0);
    for (const CharacterizationRecord& rec : records) {
        const ClassQuality& cls = report.classes[static_cast<std::size_t>(rec.hd - 1)];
        if (cls.mean_fc > 0.0) {
            abs_dev[static_cast<std::size_t>(rec.hd - 1)] +=
                std::abs(rec.charge_fc - cls.mean_fc) / cls.mean_fc;
        }
    }
    for (int hd = 1; hd <= input_bits; ++hd) {
        ClassQuality& cls = report.classes[static_cast<std::size_t>(hd - 1)];
        cls.deviation = cls.samples > 0
                            ? abs_dev[static_cast<std::size_t>(hd - 1)] /
                                  static_cast<double>(cls.samples)
                            : 0.0;
    }
    return report;
}

CharacterizationReport summarize_characterization(
    int input_bits, std::span<const CharacterizationRecord> records,
    const CharRunStats& run)
{
    CharacterizationReport report = summarize_characterization(input_bits, records);
    report.run = run;
    return report;
}

void print_characterization_report(std::ostream& os,
                                   const CharacterizationReport& report)
{
    os << "characterization quality: " << report.total_records << " transitions, m = "
       << report.input_bits << ", charge range ["
       << util::TextTable::fmt(report.min_charge_fc, 1) << ", "
       << util::TextTable::fmt(report.max_charge_fc, 1) << "] fC\n";
    if (report.run.records > 0) {
        os << "run: " << util::TextTable::fmt(report.run.collect_wall_ms, 1)
           << " ms collect + " << util::TextTable::fmt(report.run.fit_wall_ms, 1)
           << " ms fit, " << report.run.sim_transitions << " net toggles, "
           << report.run.shards << " shards on " << report.run.threads
           << (report.run.threads == 1 ? " thread" : " threads");
        if (report.run.sim_events > 0) {
            os << ", "
               << util::TextTable::fmt(report.run.events_per_sec / 1e6, 2)
               << " M events/s (peak queue " << report.run.max_queue_depth << ")";
        }
        if (report.run.warmup_vectors > 0) {
            os << "\nwarm-up: " << report.run.warmup_vectors << " vectors, ";
            if (report.run.warmup_batches > 0) {
                os << report.run.warmup_batches << " word-parallel 64-lane batches";
            } else {
                os << "settled per record";
            }
        }
        os << "\nbackend: " << char_backend_name(report.run.backend);
        if (report.run.backend == CharBackend::PowerEmulation) {
            os << ", " << report.run.emulated_pairs << " emulated pairs in "
               << report.run.emulation_passes << " settle passes, calibrated on "
               << report.run.calibration_pairs << " event-kernel pairs (residual scale "
               << util::TextTable::fmt(report.run.calibration_scale, 4) << ")";
        }
        os << '\n';
    }

    util::TextTable table;
    table.set_header({"Hd", "n", "p_i [fC]", "stddev", "stderr", "±CI95 [%]",
                      "eps_i [%]"});
    for (const ClassQuality& cls : report.classes) {
        table.add_row({std::to_string(cls.hd), std::to_string(cls.samples),
                       util::TextTable::fmt(cls.mean_fc, 1),
                       util::TextTable::fmt(cls.stddev_fc, 1),
                       util::TextTable::fmt(cls.standard_error_fc, 2),
                       util::TextTable::fmt(100.0 * cls.relative_ci95(), 2),
                       util::TextTable::fmt(100.0 * cls.deviation, 1)});
    }
    table.print(os);
    os << "worst class CI95 half-width: "
       << util::TextTable::fmt(100.0 * report.worst_relative_ci95(), 2)
       << "%  min class occupancy: " << report.min_class_samples() << '\n';
}

} // namespace hdpm::core
