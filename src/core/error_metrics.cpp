#include "core/error_metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hdpm::core {

AccuracyReport compare_cycles(std::span<const double> estimate,
                              std::span<const double> reference)
{
    HDPM_REQUIRE(estimate.size() == reference.size(), "cycle count mismatch: ",
                 estimate.size(), " vs ", reference.size());
    HDPM_REQUIRE(!estimate.empty(), "no cycles to compare");

    AccuracyReport report;
    report.cycles = estimate.size();

    double abs_sum = 0.0;
    std::size_t abs_count = 0;
    double est_total = 0.0;
    double ref_total = 0.0;
    for (std::size_t j = 0; j < estimate.size(); ++j) {
        est_total += estimate[j];
        ref_total += reference[j];
        if (reference[j] > 0.0) {
            abs_sum += std::abs(estimate[j] - reference[j]) / reference[j];
            ++abs_count;
        } else {
            ++report.skipped_zero_reference;
        }
    }
    report.avg_abs_cycle_error_pct =
        abs_count > 0 ? 100.0 * abs_sum / static_cast<double>(abs_count) : 0.0;
    HDPM_REQUIRE(ref_total > 0.0, "reference stream has zero total charge");
    report.avg_error_pct = 100.0 * (est_total - ref_total) / ref_total;
    return report;
}

} // namespace hdpm::core
