#pragma once

#include "core/hd_model.hpp"

namespace hdpm::core {

/// Online least-mean-square adaptation of Hd-model coefficients.
///
/// Section 4.2 of the paper proposes "coefficient adaptation techniques
/// [4]" (Bogliolo/Benini/De Micheli, adaptive LMS behavioural power
/// modelling) for input statistics that differ strongly from the
/// characterization stream. This class implements that extension: whenever
/// a reference charge measurement is available for a transition, the
/// corresponding coefficient moves towards it:
///     p_i ← p_i + λ·(Q_observed − p_i)
class AdaptiveHdModel {
public:
    /// Wrap an initial model; @p learning_rate is the LMS step λ ∈ (0, 1].
    explicit AdaptiveHdModel(HdModel initial, double learning_rate = 0.1);

    [[nodiscard]] int input_bits() const noexcept { return input_bits_; }
    [[nodiscard]] double learning_rate() const noexcept { return learning_rate_; }

    /// Current coefficient p_i.
    [[nodiscard]] double coefficient(int hd) const;

    /// Estimate of a transition's charge under the current coefficients.
    [[nodiscard]] double estimate_cycle(int hd) const;

    /// Feed one observed (Hamming distance, reference charge) pair; returns
    /// the estimate *before* adaptation (so callers can score tracking
    /// error as they adapt).
    double observe(int hd, double reference_charge_fc);

    /// Snapshot the adapted coefficients as a plain HdModel.
    [[nodiscard]] HdModel snapshot() const;

private:
    int input_bits_;
    double learning_rate_;
    std::vector<double> coefficients_;
};

} // namespace hdpm::core
