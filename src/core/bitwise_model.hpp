#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/characterize.hpp"
#include "streams/packed_trace.hpp"
#include "util/bitvec.hpp"

namespace hdpm::core {

/// Baseline comparator: a per-bit linear regression macro-model.
///
/// The classic alternative to Hamming-distance binning (regression-based
/// behavioural macro-models in the tradition of [1, 4]): the cycle charge
/// is modelled as an affine function of *which* input bits toggled,
///     Q[j] ≈ b₀ + Σ_i w_i·τ_i[j],      τ_i[j] ∈ {0, 1},
/// fitted by least squares over the characterization records. It has
/// m + 1 parameters — the same order as the basic Hd-model — but spends
/// them on bit position instead of transition count, so the two models
/// bracket the design space the paper's model sits in:
///  - position-sensitive streams (counters, constant operands) favour
///    the bitwise model,
///  - count-sensitive behaviour (glitch amplification with many
///    simultaneous toggles) favours the Hd-model.
/// bench_baselines quantifies this trade-off.
class BitwiseLinearModel {
public:
    BitwiseLinearModel() = default;

    /// Construct from explicit parameters; @p weights holds w_0..w_{m-1}.
    BitwiseLinearModel(double intercept, std::vector<double> weights);

    /// Fit by least squares from characterization records (uses the
    /// toggle masks; charge is the regression target).
    [[nodiscard]] static BitwiseLinearModel fit(
        int input_bits, std::span<const CharacterizationRecord> records);

    [[nodiscard]] int input_bits() const noexcept
    {
        return static_cast<int>(weights_.size());
    }
    [[nodiscard]] double intercept() const noexcept { return intercept_; }

    /// Weight of input bit @p bit (0 = LSB of operand 0).
    [[nodiscard]] double weight(int bit) const;

    /// Charge estimate for a transition with the given toggle mask.
    [[nodiscard]] double estimate_cycle(std::uint64_t toggle_mask) const;

    /// Per-cycle charges for a pattern stream.
    [[nodiscard]] std::vector<double> estimate_cycles(
        std::span<const util::BitVec> patterns) const;

    /// Average charge per cycle for a pattern stream.
    [[nodiscard]] double estimate_average(std::span<const util::BitVec> patterns) const;

    /// Average charge per cycle for a packed trace: a single word loop over
    /// XORed samples, no BitVec materialization. Unlike the Hd models this
    /// cannot reduce to a histogram dot product — estimate_cycle() clamps at
    /// 0 and special-cases an all-zero toggle mask, both nonlinear in the
    /// per-bit toggle counts — so the packed path evaluates per transition.
    [[nodiscard]] double estimate_trace(const streams::PackedTrace& trace) const;

    /// --- Serialization ----------------------------------------------
    void save(std::ostream& os) const;
    [[nodiscard]] static BitwiseLinearModel load(std::istream& is);

private:
    double intercept_ = 0.0;
    std::vector<double> weights_;
};

} // namespace hdpm::core
