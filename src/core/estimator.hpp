#pragma once

#include <span>

#include "core/hd_model.hpp"
#include "stats/datamodel.hpp"
#include "streams/wordstats.hpp"

namespace hdpm::core {

/// Result of a purely statistical (simulation-free) power estimate.
struct StatisticalEstimate {
    /// Average cycle charge using the full analytic Hd-distribution
    /// (section 6.3) [fC].
    double from_distribution_fc = 0.0;

    /// Average cycle charge using only the analytic average Hamming
    /// distance with coefficient interpolation (section 6.2) [fC].
    double from_average_hd_fc = 0.0;

    /// The combined module-input Hd distribution the estimate used.
    stats::HdDistribution distribution;

    /// The analytic average Hd.
    double average_hd = 0.0;
};

/// Estimate a module's average cycle charge from the word-level statistics
/// of its operand streams alone — the paper's headline use case: no
/// bit-level simulation anywhere in the loop. Operand streams are treated
/// as mutually independent; their Hd distributions are convolved into the
/// module-input distribution (end of section 6.3).
///
/// The model's input width must equal the summed operand widths.
[[nodiscard]] StatisticalEstimate estimate_from_word_stats(
    const HdModel& model, std::span<const streams::WordStats> operand_stats);

} // namespace hdpm::core
