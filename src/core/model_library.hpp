#pragma once

#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/characterize.hpp"

namespace hdpm::core {

/// A directory-backed store of characterized macro-models.
///
/// Characterization is the expensive step of the flow (it runs reference
/// power simulations), and its results are reusable across runs — exactly
/// like the cell-library characterization data the paper's flow assumes.
/// The library keys models by (technology, module family, operand widths)
/// and transparently characterizes on a miss.
///
/// Thread safety: all methods may be called concurrently. A miss is
/// resolved with single-flight semantics — the first caller of a key
/// becomes the leader and characterizes; concurrent callers of the same
/// key block on the leader's flight and then load the stored file, so one
/// characterization never runs twice however many threads race on it. A
/// leader failure is rethrown to every waiter of that flight; the key is
/// released so a later call can retry.
///
/// File layout: <directory>/<tech>_<module>_<w1>x<w0>.hdm      (basic)
///              <directory>/<tech>_<module>_<w1>x<w0>.z<K>.ehdm (enhanced)
class ModelLibrary {
public:
    /// Open (creating if needed) a model library directory.
    explicit ModelLibrary(std::filesystem::path directory,
                          const gate::TechLibrary& library = gate::TechLibrary::generic350(),
                          sim::EventSimOptions sim_options = {});

    /// The deterministic file-name key of a model.
    [[nodiscard]] std::string model_key(dp::ModuleType type,
                                        std::span<const int> widths) const;

    /// True if a basic model for the instance is stored.
    [[nodiscard]] bool contains(dp::ModuleType type, std::span<const int> widths) const;

    /// Load the basic model for a module instance, characterizing and
    /// storing it first if absent.
    [[nodiscard]] HdModel get_or_characterize(
        dp::ModuleType type, std::span<const int> widths,
        const CharacterizationOptions& options = {}) const;

    /// Enhanced-model variant; @p zero_clusters as in Characterizer.
    [[nodiscard]] EnhancedHdModel get_or_characterize_enhanced(
        dp::ModuleType type, std::span<const int> widths, int zero_clusters = 0,
        const CharacterizationOptions& options = {}) const;

    /// Remove every stored model (e.g. after a technology change).
    void clear() const;

    [[nodiscard]] const std::filesystem::path& directory() const noexcept
    {
        return directory_;
    }

private:
    [[nodiscard]] std::filesystem::path basic_path(dp::ModuleType type,
                                                   std::span<const int> widths) const;
    [[nodiscard]] std::filesystem::path enhanced_path(dp::ModuleType type,
                                                      std::span<const int> widths,
                                                      int zero_clusters) const;

    /// Load @p path if it exists, else run @p build (single-flight per
    /// path) and store its result before returning it.
    template <typename Model, typename BuildFn>
    [[nodiscard]] Model load_or_build(const std::filesystem::path& path,
                                      BuildFn&& build) const;

    std::filesystem::path directory_;
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;

    mutable std::mutex mutex_; ///< guards in_flight_
    /// Single-flight table: one pending characterization per model file.
    mutable std::unordered_map<std::string, std::shared_future<void>> in_flight_;
};

} // namespace hdpm::core
