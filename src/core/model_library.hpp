#pragma once

#include <atomic>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/characterize.hpp"

namespace hdpm::core {

/// FNV-1a fingerprint of every knob that shapes a characterized model's
/// coefficients: the stimulus plan (seed, budgets, batch, tolerance, mode,
/// shard size) and the reference-simulation physics (input-charge
/// accounting, inertial window). Execution-only knobs that are proven
/// bit-identical — threads, warm-up mode, scheduler kind, the event-budget
/// safety valve, progress/stats observers — are deliberately excluded, so
/// re-running with a different thread count or warm-up strategy still hits
/// the stored model.
[[nodiscard]] std::uint64_t characterization_fingerprint(
    const CharacterizationOptions& options, const sim::EventSimOptions& sim_options);

/// A directory-backed store of characterized macro-models.
///
/// Characterization is the expensive step of the flow (it runs reference
/// power simulations), and its results are reusable across runs — exactly
/// like the cell-library characterization data the paper's flow assumes.
/// The library keys models by (technology, module family, operand widths)
/// and transparently characterizes on a miss.
///
/// Thread safety: all methods may be called concurrently. A miss is
/// resolved with single-flight semantics — the first caller of a key
/// becomes the leader and characterizes; concurrent callers of the same
/// key block on the leader's flight and then load the stored file, so one
/// characterization never runs twice however many threads race on it. A
/// leader failure is rethrown to every waiter of that flight; the key is
/// released so a later call can retry.
///
/// File layout: <directory>/<tech>_<module>_<w1>x<w0>.hdm      (basic)
///              <directory>/<tech>_<module>_<w1>x<w0>.z<K>.ehdm (enhanced)
/// Each file starts with a one-line `options <hex>` header — the
/// characterization_fingerprint the model was built under. A stored model
/// is only reused when the requested options hash to the same fingerprint;
/// a mismatch (or a legacy header-less file) triggers recharacterization,
/// so stale coefficients can never leak across an options change.
///
/// Degradation: a file whose fingerprint header matches but whose payload
/// fails to parse (truncation, bit rot, non-finite coefficients) is
/// quarantined — renamed with a ".corrupt" suffix for inspection — and the
/// model is recharacterized, so a damaged store degrades to a slower run,
/// never to a failed or wrong one. Stale ".tmp" debris from killed runs is
/// swept on open. Both events are counted (models_quarantined /
/// stale_tmps_removed) rather than silent.
class ModelLibrary {
public:
    /// Open (creating if needed) a model library directory.
    explicit ModelLibrary(std::filesystem::path directory,
                          const gate::TechLibrary& library = gate::TechLibrary::generic350(),
                          sim::EventSimOptions sim_options = {});

    /// The deterministic file-name key of a model. A corner-qualified model
    /// (options.corner set) appends the corner's canonical key — e.g.
    /// "generic350_csa_multiplier_16x16@v3300t250n" — so two corners of the
    /// same instance can never alias each other's stored files.
    [[nodiscard]] std::string model_key(
        dp::ModuleType type, std::span<const int> widths,
        const std::optional<gate::Corner>& corner = std::nullopt) const;

    /// True if a basic model for the instance is stored.
    [[nodiscard]] bool contains(dp::ModuleType type, std::span<const int> widths) const;

    /// Load the basic model for a module instance, characterizing and
    /// storing it first if absent.
    [[nodiscard]] HdModel get_or_characterize(
        dp::ModuleType type, std::span<const int> widths,
        const CharacterizationOptions& options = {}) const;

    /// Enhanced-model variant; @p zero_clusters as in Characterizer.
    [[nodiscard]] EnhancedHdModel get_or_characterize_enhanced(
        dp::ModuleType type, std::span<const int> widths, int zero_clusters = 0,
        const CharacterizationOptions& options = {}) const;

    /// Publish a model fitted elsewhere (e.g. by the fleet coordinator from
    /// merged worker journals) under the exact key, fingerprint header, and
    /// atomic tmp+rename discipline get_or_characterize uses. The stored
    /// file is byte-identical to what a single-process characterization
    /// under @p options would have written from the same records. A current
    /// stored model for the key is kept (first-published-wins — safe
    /// because characterization is deterministic).
    void store_basic(dp::ModuleType type, std::span<const int> widths,
                     const CharacterizationOptions& options, const HdModel& model) const;
    void store_enhanced(dp::ModuleType type, std::span<const int> widths,
                        int zero_clusters, const CharacterizationOptions& options,
                        const EnhancedHdModel& model) const;

    /// Remove every stored model (e.g. after a technology change).
    void clear() const;

    [[nodiscard]] const std::filesystem::path& directory() const noexcept
    {
        return directory_;
    }

    /// Corrupt model files set aside (".corrupt") by this instance.
    [[nodiscard]] std::uint64_t models_quarantined() const noexcept
    {
        return quarantined_.load(std::memory_order_relaxed);
    }

    /// Stale ".tmp" files swept when the directory was opened.
    [[nodiscard]] std::uint64_t stale_tmps_removed() const noexcept
    {
        return stale_tmps_.load(std::memory_order_relaxed);
    }

private:
    [[nodiscard]] std::filesystem::path basic_path(
        dp::ModuleType type, std::span<const int> widths,
        const std::optional<gate::Corner>& corner) const;
    [[nodiscard]] std::filesystem::path enhanced_path(
        dp::ModuleType type, std::span<const int> widths, int zero_clusters,
        const std::optional<gate::Corner>& corner) const;

    /// Load @p path if it exists and its stored options fingerprint equals
    /// @p fingerprint, else run @p build (single-flight per path) and store
    /// its result — prefixed with the fingerprint header — before returning
    /// it. A legacy file without a header, or one characterized under
    /// different options, is recharacterized rather than silently reused.
    template <typename Model, typename BuildFn>
    [[nodiscard]] Model load_or_build(const std::filesystem::path& path,
                                      std::uint64_t fingerprint, BuildFn&& build) const;

    /// Set a corrupt model file aside as <path>.corrupt (never reuse bad
    /// state, never destroy the evidence) and count the quarantine.
    void quarantine(const std::filesystem::path& path) const;

    std::filesystem::path directory_;
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;
    mutable std::atomic<std::uint64_t> quarantined_{0};
    mutable std::atomic<std::uint64_t> stale_tmps_{0};

    mutable std::mutex mutex_; ///< guards in_flight_
    /// Single-flight table: one pending characterization per model file.
    mutable std::unordered_map<std::string, std::shared_future<void>> in_flight_;
};

} // namespace hdpm::core
