#pragma once

#include <filesystem>
#include <string>

#include "core/characterize.hpp"

namespace hdpm::core {

/// A directory-backed store of characterized macro-models.
///
/// Characterization is the expensive step of the flow (it runs reference
/// power simulations), and its results are reusable across runs — exactly
/// like the cell-library characterization data the paper's flow assumes.
/// The library keys models by (technology, module family, operand widths)
/// and transparently characterizes on a miss.
///
/// File layout: <directory>/<tech>_<module>_<w1>x<w0>.hdm      (basic)
///              <directory>/<tech>_<module>_<w1>x<w0>.z<K>.ehdm (enhanced)
class ModelLibrary {
public:
    /// Open (creating if needed) a model library directory.
    explicit ModelLibrary(std::filesystem::path directory,
                          const gate::TechLibrary& library = gate::TechLibrary::generic350(),
                          sim::EventSimOptions sim_options = {});

    /// The deterministic file-name key of a model.
    [[nodiscard]] std::string model_key(dp::ModuleType type,
                                        std::span<const int> widths) const;

    /// True if a basic model for the instance is stored.
    [[nodiscard]] bool contains(dp::ModuleType type, std::span<const int> widths) const;

    /// Load the basic model for a module instance, characterizing and
    /// storing it first if absent.
    [[nodiscard]] HdModel get_or_characterize(
        dp::ModuleType type, std::span<const int> widths,
        const CharacterizationOptions& options = {}) const;

    /// Enhanced-model variant; @p zero_clusters as in Characterizer.
    [[nodiscard]] EnhancedHdModel get_or_characterize_enhanced(
        dp::ModuleType type, std::span<const int> widths, int zero_clusters = 0,
        const CharacterizationOptions& options = {}) const;

    /// Remove every stored model (e.g. after a technology change).
    void clear() const;

    [[nodiscard]] const std::filesystem::path& directory() const noexcept
    {
        return directory_;
    }

private:
    [[nodiscard]] std::filesystem::path basic_path(dp::ModuleType type,
                                                   std::span<const int> widths) const;
    [[nodiscard]] std::filesystem::path enhanced_path(dp::ModuleType type,
                                                      std::span<const int> widths,
                                                      int zero_clusters) const;

    std::filesystem::path directory_;
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;
};

} // namespace hdpm::core
