#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/characterize.hpp"
#include "core/hd_model.hpp"
#include "dpgen/module.hpp"

namespace hdpm::core {

/// A characterized prototype instance: its operand widths and fitted model.
struct PrototypeModel {
    std::vector<int> operand_widths;
    HdModel model;
};

/// Bit-width parameterizable Hd-model (paper section 5).
///
/// For each Hamming-distance index i the coefficient is expressed as
/// p_i = R_iᵀ·M(widths) where M is the module family's complexity basis
/// (linear in m for ripple structures, m1·m0 terms for array multipliers;
/// eqs. 6–9). The regression vectors R_i are fitted by least squares over a
/// prototype set (eq. 10).
///
/// Coefficient indices larger than the biggest prototype can support fall
/// back to the highest fitted index (extrapolation is clamped); indices
/// with fewer prototypes than basis terms are fitted with the leading
/// (highest-order) terms only, so predictions keep scaling with the
/// structural complexity. Both cases are inherent to regressing a
/// triangular coefficient family and are reported by samples_for().
class ParameterizableModel {
public:
    ParameterizableModel() = default;

    /// Fit regression vectors from characterized prototypes of one module
    /// family (the "prototype set"). The per-index least-squares problems
    /// are independent; @p threads > 1 (0 = hardware) fans them out on a
    /// pool, with results identical for every thread count.
    [[nodiscard]] static ParameterizableModel fit(
        dp::ModuleType type, std::span<const PrototypeModel> prototypes,
        unsigned threads = 1);

    [[nodiscard]] dp::ModuleType module_type() const noexcept { return type_; }

    /// Highest coefficient index any prototype provided.
    [[nodiscard]] int max_fitted_hd() const noexcept
    {
        return static_cast<int>(r_.size());
    }

    /// Number of prototypes that contributed to coefficient index @p hd.
    [[nodiscard]] std::size_t samples_for(int hd) const;

    /// True when the least-squares fit of index @p hd was ill-conditioned
    /// (e.g. a degenerate prototype set) and degraded to the recorded
    /// ridge-regularized solve.
    [[nodiscard]] bool used_ridge_fallback(int hd) const;

    /// Number of coefficient indices fitted via the ridge fallback.
    [[nodiscard]] std::size_t ridge_fallback_count() const noexcept;

    /// Regression vector R_i (basis-term order of complexity_basis(type)).
    [[nodiscard]] std::span<const double> regression_vector(int hd) const;

    /// Predicted coefficient p_i for a module with the given operand
    /// widths (clamped to ≥ 0).
    [[nodiscard]] double coefficient(int hd, std::span<const int> operand_widths) const;

    /// Build a full HdModel for a target instance of the family.
    [[nodiscard]] HdModel model_for(std::span<const int> operand_widths) const;

    /// Convenience for square two-operand / single-operand modules.
    [[nodiscard]] HdModel model_for(int width) const;

private:
    dp::ModuleType type_{};
    std::vector<std::vector<double>> r_;   ///< per hd-1: basis-sized vector
    std::vector<std::size_t> samples_;     ///< prototypes per coefficient index
    std::vector<std::uint8_t> ridge_;      ///< per hd-1: ridge fallback used
};

/// Total primary-input bit count of a module family instance (the m the
/// Hd-model runs over) without building the netlist.
[[nodiscard]] int total_input_bits(dp::ModuleType type, std::span<const int> operand_widths);

/// Characterize one prototype per width of a module family, fanning the
/// (mutually independent) characterizations out over @p threads workers
/// (0 = one per hardware thread), and return the prototypes in input order.
///
/// Each prototype keeps @p options except for the seed, which is derived
/// as splitmix64(seed ^ (index + 1)) so prototype streams are decorrelated,
/// and options.threads, which is forced to 1 inside each characterization —
/// the parallelism budget is spent across prototypes here, not within one.
/// The prototype set is bit-identical for every thread count.
///
/// When @p journal is non-empty, every completed (module, width) prototype
/// fit is published crash-safely to that path (stamped with the options
/// fingerprint and module id); a later call with the same plan resumes the
/// completed prototypes from the journal and characterizes only the
/// missing ones, bit-identically. The journal is deleted once the full set
/// is built; a stale or corrupt journal is discarded (corrupt ones are set
/// aside with a ".corrupt" suffix).
[[nodiscard]] std::vector<PrototypeModel> characterize_prototype_set(
    dp::ModuleType type, std::span<const int> widths,
    const Characterizer& characterizer, const CharacterizationOptions& options,
    unsigned threads = 0, const std::filesystem::path& journal = {});

} // namespace hdpm::core
