#include "core/regression.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"
#include "util/linalg.hpp"
#include "util/parallel.hpp"

namespace hdpm::core {

int total_input_bits(dp::ModuleType type, std::span<const int> operand_widths)
{
    int total = 0;
    for (const int width : dp::expand_operand_widths(type, operand_widths)) {
        total += width;
    }
    return total;
}

ParameterizableModel ParameterizableModel::fit(dp::ModuleType type,
                                               std::span<const PrototypeModel> prototypes,
                                               unsigned threads)
{
    HDPM_REQUIRE(!prototypes.empty(), "empty prototype set");
    const dp::ComplexityBasis& basis = dp::complexity_basis(type);
    const std::size_t k = basis.size();

    int max_hd = 0;
    for (const auto& proto : prototypes) {
        max_hd = std::max(max_hd, proto.model.input_bits());
    }

    ParameterizableModel out;
    out.type_ = type;
    out.r_.resize(static_cast<std::size_t>(max_hd));
    out.samples_.resize(static_cast<std::size_t>(max_hd), 0);

    // Each coefficient index is an independent least-squares problem
    // writing to its own slot, so the loop parallelizes without any
    // cross-index state (and therefore thread-count independently).
    const util::ThreadPool pool{threads == 0 ? 0 : threads};
    pool.parallel_for(static_cast<std::size_t>(max_hd), [&](std::size_t index) {
        const int hd = static_cast<int>(index) + 1;
        // Gather every prototype that has this coefficient index.
        std::vector<std::vector<double>> rows;
        std::vector<double> rhs;
        for (const auto& proto : prototypes) {
            if (proto.model.input_bits() < hd) {
                continue;
            }
            rows.push_back(basis.eval(proto.operand_widths));
            rhs.push_back(proto.model.coefficient(hd));
        }
        out.samples_[static_cast<std::size_t>(hd - 1)] = rows.size();
        HDPM_ASSERT(!rows.empty(), "no prototype covers Hd ", hd);

        // With fewer samples than basis terms, keep only the leading
        // (highest-order) terms: the dominant term is the structural
        // complexity itself (m for ripple structures, m1·m0 for arrays),
        // so e.g. a single prototype still scales proportionally with
        // complexity rather than being treated as a constant.
        const std::size_t terms = std::min(k, rows.size());
        util::Matrix design{rows.size(), terms};
        for (std::size_t r = 0; r < rows.size(); ++r) {
            for (std::size_t c = 0; c < terms; ++c) {
                design.at(r, c) = rows[r][c];
            }
        }
        const std::vector<double> fitted = util::least_squares(design, rhs);
        std::vector<double> full(k, 0.0);
        for (std::size_t c = 0; c < terms; ++c) {
            full[c] = fitted[c];
        }
        out.r_[static_cast<std::size_t>(hd - 1)] = std::move(full);
    });
    return out;
}

std::vector<PrototypeModel> characterize_prototype_set(
    dp::ModuleType type, std::span<const int> widths,
    const Characterizer& characterizer, const CharacterizationOptions& options,
    unsigned threads)
{
    HDPM_REQUIRE(!widths.empty(), "empty prototype width set");
    const util::ThreadPool pool{threads};
    return pool.parallel_map(widths.size(), [&](std::size_t index) {
        CharacterizationOptions proto_options = options;
        proto_options.seed =
            util::splitmix64(options.seed ^ static_cast<std::uint64_t>(index + 1));
        proto_options.threads = 1;
        proto_options.progress = nullptr; // workers must not call user code
        proto_options.stats = nullptr;    // one stats sink cannot serve N writers

        const dp::DatapathModule module = dp::make_module(type, widths[index]);
        PrototypeModel proto;
        proto.operand_widths = {widths[index]};
        proto.model = characterizer.characterize(module, proto_options);
        return proto;
    });
}

std::size_t ParameterizableModel::samples_for(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= max_fitted_hd(), "Hd ", hd, " outside fitted range");
    return samples_[static_cast<std::size_t>(hd - 1)];
}

std::span<const double> ParameterizableModel::regression_vector(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= max_fitted_hd(), "Hd ", hd, " outside fitted range");
    return r_[static_cast<std::size_t>(hd - 1)];
}

double ParameterizableModel::coefficient(int hd, std::span<const int> operand_widths) const
{
    HDPM_REQUIRE(!r_.empty(), "model not fitted");
    HDPM_REQUIRE(hd >= 1, "bad Hd");
    const int clamped = std::min(hd, max_fitted_hd());
    const dp::ComplexityBasis& basis = dp::complexity_basis(type_);
    const std::vector<double> terms = basis.eval(operand_widths);
    const double p = util::dot(r_[static_cast<std::size_t>(clamped - 1)], terms);
    return std::max(p, 0.0);
}

HdModel ParameterizableModel::model_for(std::span<const int> operand_widths) const
{
    const int m = total_input_bits(type_, operand_widths);
    std::vector<double> coeffs(static_cast<std::size_t>(m), 0.0);
    for (int hd = 1; hd <= m; ++hd) {
        coeffs[static_cast<std::size_t>(hd - 1)] = coefficient(hd, operand_widths);
    }
    return HdModel{m, std::move(coeffs)};
}

HdModel ParameterizableModel::model_for(int width) const
{
    const std::array<int, 1> w = {width};
    return model_for(std::span<const int>{w});
}

} // namespace hdpm::core
