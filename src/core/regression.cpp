#include "core/regression.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <ios>
#include <mutex>
#include <optional>
#include <sstream>

#include "core/model_library.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/linalg.hpp"
#include "util/parallel.hpp"

namespace hdpm::core {

int total_input_bits(dp::ModuleType type, std::span<const int> operand_widths)
{
    int total = 0;
    for (const int width : dp::expand_operand_widths(type, operand_widths)) {
        total += width;
    }
    return total;
}

ParameterizableModel ParameterizableModel::fit(dp::ModuleType type,
                                               std::span<const PrototypeModel> prototypes,
                                               unsigned threads)
{
    HDPM_REQUIRE(!prototypes.empty(), "empty prototype set");
    const dp::ComplexityBasis& basis = dp::complexity_basis(type);
    const std::size_t k = basis.size();

    int max_hd = 0;
    for (const auto& proto : prototypes) {
        max_hd = std::max(max_hd, proto.model.input_bits());
    }

    ParameterizableModel out;
    out.type_ = type;
    out.r_.resize(static_cast<std::size_t>(max_hd));
    out.samples_.resize(static_cast<std::size_t>(max_hd), 0);
    out.ridge_.resize(static_cast<std::size_t>(max_hd), 0);

    // Each coefficient index is an independent least-squares problem
    // writing to its own slot, so the loop parallelizes without any
    // cross-index state (and therefore thread-count independently).
    const util::ThreadPool pool{threads == 0 ? 0 : threads};
    pool.parallel_for(static_cast<std::size_t>(max_hd), [&](std::size_t index) {
        const int hd = static_cast<int>(index) + 1;
        // Gather every prototype that has this coefficient index.
        std::vector<std::vector<double>> rows;
        std::vector<double> rhs;
        for (const auto& proto : prototypes) {
            if (proto.model.input_bits() < hd) {
                continue;
            }
            rows.push_back(basis.eval(proto.operand_widths));
            rhs.push_back(proto.model.coefficient(hd));
        }
        out.samples_[static_cast<std::size_t>(hd - 1)] = rows.size();
        HDPM_ASSERT(!rows.empty(), "no prototype covers Hd ", hd);

        // With fewer samples than basis terms, keep only the leading
        // (highest-order) terms: the dominant term is the structural
        // complexity itself (m for ripple structures, m1·m0 for arrays),
        // so e.g. a single prototype still scales proportionally with
        // complexity rather than being treated as a constant.
        const std::size_t terms = std::min(k, rows.size());
        util::Matrix design{rows.size(), terms};
        for (std::size_t r = 0; r < rows.size(); ++r) {
            for (std::size_t c = 0; c < terms; ++c) {
                design.at(r, c) = rows[r][c];
            }
        }
        util::LeastSquaresReport report;
        const std::vector<double> fitted = util::least_squares(design, rhs, &report);
        out.ridge_[static_cast<std::size_t>(hd - 1)] = report.ridge_fallback ? 1 : 0;
        std::vector<double> full(k, 0.0);
        for (std::size_t c = 0; c < terms; ++c) {
            full[c] = fitted[c];
        }
        out.r_[static_cast<std::size_t>(hd - 1)] = std::move(full);
    });
    return out;
}

namespace {

/// Crash-safe prototype-fit journal ("hdpm_protolib 1"): the completed
/// subset of a prototype set's (index, width) fits, stamped with the
/// options fingerprint and the module id. Entries are keyed by index as
/// well as width because each prototype's seed is derived from its index —
/// the same width at a different position is a different stimulus stream.
void save_proto_journal(const std::filesystem::path& path, std::uint64_t fingerprint,
                        const std::string& module_id, std::span<const int> widths,
                        std::span<const std::optional<HdModel>> completed)
{
    std::ostringstream os;
    os << "hdpm_protolib 1\n";
    os << "fingerprint " << std::hex << fingerprint << std::dec << '\n';
    os << "module " << module_id << '\n';
    for (std::size_t index = 0; index < completed.size(); ++index) {
        if (!completed[index].has_value()) {
            continue;
        }
        os << "proto " << index << ' ' << widths[index] << '\n';
        completed[index]->save(os);
    }
    os << "end\n";
    std::string payload = os.str();
    HDPM_FAULT_MUTATE(util::FaultPoint::CheckpointShortWrite, payload);

    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream out{tmp, std::ios::trunc};
        if (!out) {
            HDPM_FAIL("cannot write prototype journal '", tmp.string(), "'");
        }
        out << payload;
        out.flush();
        if (!out) {
            HDPM_FAIL("failed writing prototype journal '", tmp.string(), "'");
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        HDPM_FAIL("cannot publish prototype journal '", path.string(), "': ",
                  ec.message());
    }
}

/// Load the completed fits a journal holds for this exact plan into
/// @p completed. A missing journal or one from a different plan loads
/// nothing; a malformed one is quarantined (".corrupt") and loads nothing —
/// resuming never trusts damaged state.
void load_proto_journal(const std::filesystem::path& path, std::uint64_t fingerprint,
                        const std::string& module_id, std::span<const int> widths,
                        std::vector<std::optional<HdModel>>& completed)
{
    std::ifstream in{path};
    if (!in) {
        return;
    }
    try {
        std::string tag;
        int version = 0;
        in >> tag >> version;
        if (!in || tag != "hdpm_protolib" || version != 1) {
            HDPM_FAIL("bad prototype journal header");
        }
        std::uint64_t stored_fingerprint = 0;
        in >> tag >> std::hex >> stored_fingerprint >> std::dec;
        if (!in || tag != "fingerprint") {
            HDPM_FAIL("bad prototype journal fingerprint line");
        }
        std::string stored_module;
        in >> tag >> stored_module;
        if (!in || tag != "module") {
            HDPM_FAIL("bad prototype journal module line");
        }
        if (stored_fingerprint != fingerprint || stored_module != module_id) {
            return; // some other plan's journal: ignore, it will be replaced
        }
        std::vector<std::optional<HdModel>> loaded(widths.size());
        for (;;) {
            in >> tag;
            if (!in) {
                HDPM_FAIL("truncated prototype journal");
            }
            if (tag == "end") {
                break;
            }
            if (tag != "proto") {
                HDPM_FAIL("unexpected prototype journal token '", tag, "'");
            }
            std::size_t index = 0;
            int width = 0;
            in >> index >> width;
            if (!in || index >= widths.size() || widths[index] != width) {
                HDPM_FAIL("prototype journal entry does not match the width plan");
            }
            loaded[index] = HdModel::load(in);
        }
        completed = std::move(loaded);
    } catch (const util::RuntimeError&) {
        std::error_code ec;
        std::filesystem::rename(path, path.string() + ".corrupt", ec);
        if (ec) {
            std::filesystem::remove(path, ec);
        }
    }
}

} // namespace

std::vector<PrototypeModel> characterize_prototype_set(
    dp::ModuleType type, std::span<const int> widths,
    const Characterizer& characterizer, const CharacterizationOptions& options,
    unsigned threads, const std::filesystem::path& journal)
{
    HDPM_REQUIRE(!widths.empty(), "empty prototype width set");

    const bool journaling = !journal.empty();
    std::uint64_t fingerprint = 0;
    std::string module_id;
    std::vector<std::optional<HdModel>> completed(widths.size());
    if (journaling) {
        fingerprint = characterization_fingerprint(options, characterizer.sim_options());
        module_id = dp::module_type_id(type);
        {
            std::error_code ec;
            std::filesystem::remove(journal.string() + ".tmp", ec);
        }
        load_proto_journal(journal, fingerprint, module_id, widths, completed);
    }
    std::mutex journal_mutex; // guards `completed` and the journal file

    const util::ThreadPool pool{threads};
    auto prototypes = pool.parallel_map(widths.size(), [&](std::size_t index) {
        PrototypeModel proto;
        proto.operand_widths = {widths[index]};
        if (journaling) {
            const std::lock_guard<std::mutex> lock{journal_mutex};
            if (completed[index].has_value()) {
                proto.model = *completed[index];
                return proto;
            }
        }

        CharacterizationOptions proto_options = options;
        proto_options.seed =
            util::splitmix64(options.seed ^ static_cast<std::uint64_t>(index + 1));
        proto_options.threads = 1;
        proto_options.progress = nullptr; // workers must not call user code
        proto_options.stats = nullptr;    // one stats sink cannot serve N writers

        const dp::DatapathModule module = dp::make_module(type, widths[index]);
        proto.model = characterizer.characterize(module, proto_options);
        if (journaling) {
            // Publish every completed fit as it lands: a killed run only
            // repeats the prototypes that had not finished.
            const std::lock_guard<std::mutex> lock{journal_mutex};
            completed[index] = proto.model;
            save_proto_journal(journal, fingerprint, module_id, widths, completed);
        }
        return proto;
    });

    if (journaling) {
        std::error_code ec;
        std::filesystem::remove(journal, ec);
    }
    return prototypes;
}

std::size_t ParameterizableModel::samples_for(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= max_fitted_hd(), "Hd ", hd, " outside fitted range");
    return samples_[static_cast<std::size_t>(hd - 1)];
}

bool ParameterizableModel::used_ridge_fallback(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= max_fitted_hd(), "Hd ", hd, " outside fitted range");
    return ridge_[static_cast<std::size_t>(hd - 1)] != 0;
}

std::size_t ParameterizableModel::ridge_fallback_count() const noexcept
{
    std::size_t count = 0;
    for (const std::uint8_t used : ridge_) {
        count += used;
    }
    return count;
}

std::span<const double> ParameterizableModel::regression_vector(int hd) const
{
    HDPM_REQUIRE(hd >= 1 && hd <= max_fitted_hd(), "Hd ", hd, " outside fitted range");
    return r_[static_cast<std::size_t>(hd - 1)];
}

double ParameterizableModel::coefficient(int hd, std::span<const int> operand_widths) const
{
    HDPM_REQUIRE(!r_.empty(), "model not fitted");
    HDPM_REQUIRE(hd >= 1, "bad Hd");
    const int clamped = std::min(hd, max_fitted_hd());
    const dp::ComplexityBasis& basis = dp::complexity_basis(type_);
    const std::vector<double> terms = basis.eval(operand_widths);
    const double p = util::dot(r_[static_cast<std::size_t>(clamped - 1)], terms);
    return std::max(p, 0.0);
}

HdModel ParameterizableModel::model_for(std::span<const int> operand_widths) const
{
    const int m = total_input_bits(type_, operand_widths);
    std::vector<double> coeffs(static_cast<std::size_t>(m), 0.0);
    for (int hd = 1; hd <= m; ++hd) {
        coeffs[static_cast<std::size_t>(hd - 1)] = coefficient(hd, operand_widths);
    }
    return HdModel{m, std::move(coeffs)};
}

HdModel ParameterizableModel::model_for(int width) const
{
    const std::array<int, 1> w = {width};
    return model_for(std::span<const int>{w});
}

} // namespace hdpm::core
