#include "core/model_library.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace hdpm::core {

namespace {

/// Bump when the set of fingerprinted fields changes; every stored model
/// becomes stale at once, which is exactly the safe behaviour.
/// v3: operating corner (vdd, temperature, load class) joined the plan.
constexpr std::uint64_t kFingerprintVersion = 3;

constexpr std::string_view kOptionsHeaderTag = "options";

std::string fingerprint_header_line(std::uint64_t fingerprint)
{
    char hex[17];
    for (int i = 15; i >= 0; --i) {
        hex[15 - i] = "0123456789abcdef"[(fingerprint >> (4 * i)) & 0xf];
    }
    hex[16] = '\0';
    std::string line{kOptionsHeaderTag};
    line += ' ';
    line += hex;
    line += '\n';
    return line;
}

/// Consume the `options <hex>` header of @p in. Returns true (stream
/// positioned at the model payload) when a well-formed header equal to
/// @p fingerprint was read; false for a mismatch or a legacy file with no
/// header.
bool consume_matching_header(std::istream& in, std::uint64_t fingerprint)
{
    std::string line;
    if (!std::getline(in, line)) {
        return false;
    }
    return line + '\n' == fingerprint_header_line(fingerprint);
}

} // namespace

std::uint64_t characterization_fingerprint(const CharacterizationOptions& options,
                                           const sim::EventSimOptions& sim_options)
{
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL; // FNV-1a offset basis
    const auto mix = [&hash](std::uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (8 * byte)) & 0xffU;
            hash *= 0x0000'0100'0000'01b3ULL; // FNV-1a prime
        }
    };
    mix(kFingerprintVersion);
    // The stimulus plan: everything that shapes the generated stream.
    mix(options.seed);
    mix(options.max_transitions);
    mix(options.min_transitions);
    mix(options.batch);
    mix(std::bit_cast<std::uint64_t>(options.tolerance));
    mix(options.mode ? static_cast<std::uint64_t>(*options.mode) + 1 : 0);
    mix(options.shard_size);
    // The scoring backend and its calibration budget: emulated records are
    // a different measurement of the same stimulus plan, so two runs that
    // differ only in backend (or in how many event-kernel pairs calibrated
    // the emulation weights) must never share a stored model or resume each
    // other's checkpoints.
    mix(static_cast<std::uint64_t>(options.backend));
    mix(options.calibration_pairs);
    // The reference-simulation physics.
    mix(sim_options.count_input_charge ? 1 : 0);
    mix(static_cast<std::uint64_t>(sim_options.inertial_window_ps));
    // The operating corner: a derived library scales every charge in the
    // measurement, so corner-qualified models and journals must never mix
    // with native-corner ones (or with each other across corners).
    mix(options.corner.has_value() ? 1 : 0);
    if (options.corner.has_value()) {
        mix(std::bit_cast<std::uint64_t>(options.corner->vdd_v));
        mix(std::bit_cast<std::uint64_t>(options.corner->temp_c));
        mix(static_cast<std::uint64_t>(options.corner->load_class));
    }
    // Deliberately excluded (execution-only, results bit-identical):
    // threads, warmup, scheduler, max_events_per_cycle, progress, stats,
    // checkpoint/checkpoint_every (resume is bit-identical), strict_faults.
    // Also excluded: options.corners — a sweep journals and stores each
    // corner under its own single-corner fingerprint (see
    // sweep_corner_fingerprint in characterize.cpp for the event-kernel
    // poisoning that keeps approximate sweep journals apart).
    return hash;
}

ModelLibrary::ModelLibrary(std::filesystem::path directory,
                           const gate::TechLibrary& library,
                           sim::EventSimOptions sim_options)
    : directory_(std::move(directory)), library_(&library), sim_options_(sim_options)
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        HDPM_FAIL("cannot create model library directory '", directory_.string(), "': ",
                  ec.message());
    }
    // Sweep ".tmp" debris left by runs killed between write and rename. A
    // .tmp never matched any probe (models are only read under their final
    // name), so removal is always safe.
    for (const auto& entry : std::filesystem::directory_iterator{directory_, ec}) {
        if (entry.path().extension() == ".tmp") {
            std::error_code remove_ec;
            if (std::filesystem::remove(entry.path(), remove_ec)) {
                stale_tmps_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
}

void ModelLibrary::quarantine(const std::filesystem::path& path) const
{
    std::error_code ec;
    std::filesystem::rename(path, path.string() + ".corrupt", ec);
    if (ec) {
        std::filesystem::remove(path, ec);
    }
    quarantined_.fetch_add(1, std::memory_order_relaxed);
}

std::string ModelLibrary::model_key(dp::ModuleType type, std::span<const int> widths,
                                    const std::optional<gate::Corner>& corner) const
{
    std::string key = library_->name();
    key += '_';
    key += dp::module_type_id(type);
    key += '_';
    const std::vector<int> expanded = dp::expand_operand_widths(type, widths);
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        if (i > 0) {
            key += 'x';
        }
        key += std::to_string(expanded[i]);
    }
    if (corner.has_value()) {
        key += '@';
        key += corner->key();
    }
    return key;
}

std::filesystem::path ModelLibrary::basic_path(
    dp::ModuleType type, std::span<const int> widths,
    const std::optional<gate::Corner>& corner) const
{
    return directory_ / (model_key(type, widths, corner) + ".hdm");
}

std::filesystem::path ModelLibrary::enhanced_path(
    dp::ModuleType type, std::span<const int> widths, int zero_clusters,
    const std::optional<gate::Corner>& corner) const
{
    return directory_ / (model_key(type, widths, corner) + ".z" +
                         std::to_string(zero_clusters) + ".ehdm");
}

bool ModelLibrary::contains(dp::ModuleType type, std::span<const int> widths) const
{
    return std::filesystem::exists(basic_path(type, widths, std::nullopt));
}

template <typename Model, typename BuildFn>
Model ModelLibrary::load_or_build(const std::filesystem::path& path,
                                  const std::uint64_t fingerprint,
                                  BuildFn&& build) const
{
    const std::string key = path.string();
    std::promise<void> promise;
    for (;;) {
        std::shared_future<void> flight;
        {
            std::unique_lock<std::mutex> lock{mutex_};
            // The in-flight check must precede the file probe: a stale file
            // may sit on disk while the leader rebuilds it, and the flight
            // entry is only erased once the replacement is complete (the
            // leader publishes with an atomic rename, so a probe never sees
            // a half-written model).
            const auto it = in_flight_.find(key);
            if (it != in_flight_.end()) {
                flight = it->second;
            } else {
                std::ifstream in{path};
                if (in && consume_matching_header(in, fingerprint)) {
                    lock.unlock(); // complete + current: reading needs no lock
                    try {
                        return Model::load(in);
                    } catch (const util::RuntimeError&) {
                        // Current fingerprint but unparseable payload:
                        // truncation or bit rot behind a valid header.
                        // Quarantine the file and loop back — the probe now
                        // misses, so some caller becomes the rebuild leader
                        // and the store heals itself.
                        in.close();
                        quarantine(path);
                        continue;
                    }
                }
                // Missing, legacy (no header) or characterized under other
                // options: this caller becomes the rebuild leader.
                in_flight_.emplace(key, promise.get_future().share());
                break;
            }
        }
        // Wait out the leader's characterization, then re-probe the file.
        // get() rethrows a leader failure to every waiter.
        flight.get();
    }
    try {
        Model model = build();
        // Serialize to memory, then write a sibling temp file and publish
        // with an atomic rename, so no reader — in this process or another
        // sharing the directory — can ever observe a partially written
        // model. The in-memory payload is also where the fault-injection
        // hooks corrupt (truncate / bit-flip) a model on its way to disk.
        std::ostringstream serialized;
        serialized << fingerprint_header_line(fingerprint);
        model.save(serialized);
        std::string payload = serialized.str();
        HDPM_FAULT_MUTATE(util::FaultPoint::ModelShortWrite, payload);
        HDPM_FAULT_MUTATE(util::FaultPoint::ModelBitFlip, payload);
        const std::filesystem::path tmp = path.string() + ".tmp";
        {
            std::ofstream out{tmp};
            if (!out) {
                HDPM_FAIL("cannot write model file '", tmp.string(), "'");
            }
            out << payload;
            out.flush();
            if (!out) {
                HDPM_FAIL("failed writing model file '", tmp.string(), "'");
            }
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            HDPM_FAIL("cannot publish model file '", key, "': ", ec.message());
        }
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            in_flight_.erase(key);
        }
        promise.set_value();
        return model;
    } catch (...) {
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            in_flight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

HdModel ModelLibrary::get_or_characterize(dp::ModuleType type,
                                          std::span<const int> widths,
                                          const CharacterizationOptions& options) const
{
    const std::filesystem::path path = basic_path(type, widths, options.corner);
    return load_or_build<HdModel>(
        path, characterization_fingerprint(options, sim_options_), [&] {
            const dp::DatapathModule module = dp::make_module(type, widths);
            const Characterizer characterizer{*library_, sim_options_};
            return characterizer.characterize(module, options);
        });
}

EnhancedHdModel ModelLibrary::get_or_characterize_enhanced(
    dp::ModuleType type, std::span<const int> widths, int zero_clusters,
    const CharacterizationOptions& options) const
{
    const std::filesystem::path path =
        enhanced_path(type, widths, zero_clusters, options.corner);
    return load_or_build<EnhancedHdModel>(
        path, characterization_fingerprint(options, sim_options_), [&] {
            const dp::DatapathModule module = dp::make_module(type, widths);
            const Characterizer characterizer{*library_, sim_options_};
            return characterizer.characterize_enhanced(module, zero_clusters, options);
        });
}

void ModelLibrary::store_basic(dp::ModuleType type, std::span<const int> widths,
                               const CharacterizationOptions& options,
                               const HdModel& model) const
{
    (void)load_or_build<HdModel>(basic_path(type, widths, options.corner),
                                 characterization_fingerprint(options, sim_options_),
                                 [&] { return model; });
}

void ModelLibrary::store_enhanced(dp::ModuleType type, std::span<const int> widths,
                                  int zero_clusters,
                                  const CharacterizationOptions& options,
                                  const EnhancedHdModel& model) const
{
    (void)load_or_build<EnhancedHdModel>(
        enhanced_path(type, widths, zero_clusters, options.corner),
        characterization_fingerprint(options, sim_options_), [&] { return model; });
}

void ModelLibrary::clear() const
{
    for (const auto& entry : std::filesystem::directory_iterator{directory_}) {
        const std::string ext = entry.path().extension().string();
        if (ext == ".hdm" || ext == ".ehdm" || ext == ".corrupt") {
            std::filesystem::remove(entry.path());
        }
    }
}

} // namespace hdpm::core
