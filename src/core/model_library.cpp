#include "core/model_library.hpp"

#include <fstream>

#include "util/error.hpp"

namespace hdpm::core {

ModelLibrary::ModelLibrary(std::filesystem::path directory,
                           const gate::TechLibrary& library,
                           sim::EventSimOptions sim_options)
    : directory_(std::move(directory)), library_(&library), sim_options_(sim_options)
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        HDPM_FAIL("cannot create model library directory '", directory_.string(), "': ",
                  ec.message());
    }
}

std::string ModelLibrary::model_key(dp::ModuleType type,
                                    std::span<const int> widths) const
{
    std::string key = library_->name();
    key += '_';
    key += dp::module_type_id(type);
    key += '_';
    const std::vector<int> expanded = dp::expand_operand_widths(type, widths);
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        if (i > 0) {
            key += 'x';
        }
        key += std::to_string(expanded[i]);
    }
    return key;
}

std::filesystem::path ModelLibrary::basic_path(dp::ModuleType type,
                                               std::span<const int> widths) const
{
    return directory_ / (model_key(type, widths) + ".hdm");
}

std::filesystem::path ModelLibrary::enhanced_path(dp::ModuleType type,
                                                  std::span<const int> widths,
                                                  int zero_clusters) const
{
    return directory_ /
           (model_key(type, widths) + ".z" + std::to_string(zero_clusters) + ".ehdm");
}

bool ModelLibrary::contains(dp::ModuleType type, std::span<const int> widths) const
{
    return std::filesystem::exists(basic_path(type, widths));
}

template <typename Model, typename BuildFn>
Model ModelLibrary::load_or_build(const std::filesystem::path& path,
                                  BuildFn&& build) const
{
    const std::string key = path.string();
    std::promise<void> promise;
    for (;;) {
        std::shared_future<void> flight;
        {
            std::unique_lock<std::mutex> lock{mutex_};
            // The in-flight check must precede the existence check: a
            // leader creates the file before it is fully written, and the
            // flight entry is only erased once the contents are complete.
            const auto it = in_flight_.find(key);
            if (it != in_flight_.end()) {
                flight = it->second;
            } else if (std::filesystem::exists(path)) {
                lock.unlock(); // the file is complete: reading needs no lock
                std::ifstream in{path};
                if (!in) {
                    HDPM_FAIL("cannot read model file '", key, "'");
                }
                return Model::load(in);
            } else {
                // No file, no flight: this caller becomes the leader.
                in_flight_.emplace(key, promise.get_future().share());
                break;
            }
        }
        // Wait out the leader's characterization, then re-check the file.
        // get() rethrows a leader failure to every waiter.
        flight.get();
    }
    try {
        Model model = build();
        std::ofstream out{path};
        if (!out) {
            HDPM_FAIL("cannot write model file '", key, "'");
        }
        model.save(out);
        out.flush();
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            in_flight_.erase(key);
        }
        promise.set_value();
        return model;
    } catch (...) {
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            in_flight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

HdModel ModelLibrary::get_or_characterize(dp::ModuleType type,
                                          std::span<const int> widths,
                                          const CharacterizationOptions& options) const
{
    const std::filesystem::path path = basic_path(type, widths);
    return load_or_build<HdModel>(
        path, [&] {
            const dp::DatapathModule module = dp::make_module(type, widths);
            const Characterizer characterizer{*library_, sim_options_};
            return characterizer.characterize(module, options);
        });
}

EnhancedHdModel ModelLibrary::get_or_characterize_enhanced(
    dp::ModuleType type, std::span<const int> widths, int zero_clusters,
    const CharacterizationOptions& options) const
{
    const std::filesystem::path path = enhanced_path(type, widths, zero_clusters);
    return load_or_build<EnhancedHdModel>(
        path, [&] {
            const dp::DatapathModule module = dp::make_module(type, widths);
            const Characterizer characterizer{*library_, sim_options_};
            return characterizer.characterize_enhanced(module, zero_clusters, options);
        });
}

void ModelLibrary::clear() const
{
    for (const auto& entry : std::filesystem::directory_iterator{directory_}) {
        const std::string ext = entry.path().extension().string();
        if (ext == ".hdm" || ext == ".ehdm") {
            std::filesystem::remove(entry.path());
        }
    }
}

} // namespace hdpm::core
