#include "core/model_library.hpp"

#include <fstream>

#include "util/error.hpp"

namespace hdpm::core {

ModelLibrary::ModelLibrary(std::filesystem::path directory,
                           const gate::TechLibrary& library,
                           sim::EventSimOptions sim_options)
    : directory_(std::move(directory)), library_(&library), sim_options_(sim_options)
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        HDPM_FAIL("cannot create model library directory '", directory_.string(), "': ",
                  ec.message());
    }
}

std::string ModelLibrary::model_key(dp::ModuleType type,
                                    std::span<const int> widths) const
{
    std::string key = library_->name();
    key += '_';
    key += dp::module_type_id(type);
    key += '_';
    const std::vector<int> expanded = dp::expand_operand_widths(type, widths);
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        if (i > 0) {
            key += 'x';
        }
        key += std::to_string(expanded[i]);
    }
    return key;
}

std::filesystem::path ModelLibrary::basic_path(dp::ModuleType type,
                                               std::span<const int> widths) const
{
    return directory_ / (model_key(type, widths) + ".hdm");
}

std::filesystem::path ModelLibrary::enhanced_path(dp::ModuleType type,
                                                  std::span<const int> widths,
                                                  int zero_clusters) const
{
    return directory_ /
           (model_key(type, widths) + ".z" + std::to_string(zero_clusters) + ".ehdm");
}

bool ModelLibrary::contains(dp::ModuleType type, std::span<const int> widths) const
{
    return std::filesystem::exists(basic_path(type, widths));
}

HdModel ModelLibrary::get_or_characterize(dp::ModuleType type,
                                          std::span<const int> widths,
                                          const CharacterizationOptions& options) const
{
    const std::filesystem::path path = basic_path(type, widths);
    if (std::filesystem::exists(path)) {
        std::ifstream in{path};
        if (!in) {
            HDPM_FAIL("cannot read model file '", path.string(), "'");
        }
        return HdModel::load(in);
    }

    const dp::DatapathModule module = dp::make_module(type, widths);
    const Characterizer characterizer{*library_, sim_options_};
    const HdModel model = characterizer.characterize(module, options);

    std::ofstream out{path};
    if (!out) {
        HDPM_FAIL("cannot write model file '", path.string(), "'");
    }
    model.save(out);
    return model;
}

EnhancedHdModel ModelLibrary::get_or_characterize_enhanced(
    dp::ModuleType type, std::span<const int> widths, int zero_clusters,
    const CharacterizationOptions& options) const
{
    const std::filesystem::path path = enhanced_path(type, widths, zero_clusters);
    if (std::filesystem::exists(path)) {
        std::ifstream in{path};
        if (!in) {
            HDPM_FAIL("cannot read model file '", path.string(), "'");
        }
        return EnhancedHdModel::load(in);
    }

    const dp::DatapathModule module = dp::make_module(type, widths);
    const Characterizer characterizer{*library_, sim_options_};
    const EnhancedHdModel model =
        characterizer.characterize_enhanced(module, zero_clusters, options);

    std::ofstream out{path};
    if (!out) {
        HDPM_FAIL("cannot write model file '", path.string(), "'");
    }
    model.save(out);
    return model;
}

void ModelLibrary::clear() const
{
    for (const auto& entry : std::filesystem::directory_iterator{directory_}) {
        const std::string ext = entry.path().extension().string();
        if (ext == ".hdm" || ext == ".ehdm") {
            std::filesystem::remove(entry.path());
        }
    }
}

} // namespace hdpm::core
