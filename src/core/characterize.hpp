#pragma once

#include <cstdint>
#include <vector>

#include "core/enhanced_model.hpp"
#include "core/hd_model.hpp"
#include "dpgen/module.hpp"
#include "gatelib/techlib.hpp"
#include "sim/event_sim.hpp"

namespace hdpm::core {

/// How characterization stimuli are generated.
enum class StimulusMode {
    /// Consecutive uniform random vectors — the paper's characterization
    /// stream. Hd concentrates binomially around m/2, so extreme classes
    /// converge slowly.
    RandomChain,

    /// A chain whose per-transition Hamming distance cycles uniformly over
    /// 1..m (switching bit subsets uniform within each class). The
    /// conditional distribution within each class matches RandomChain, so
    /// coefficients are unbiased while every class is populated equally.
    /// Default for the basic model.
    StratifiedChain,

    /// Independent (settle, step) pairs stratified over both Hamming
    /// distance and stable-zero count; required to populate the enhanced
    /// model's (i, z) classes, whose extremes random streams never reach.
    StratifiedPairs,
};

/// Characterization options.
struct CharacterizationOptions {
    std::size_t max_transitions = 20000; ///< hard budget of measured transitions
    std::size_t min_transitions = 4000;  ///< measure at least this many
    std::size_t batch = 2000;            ///< convergence check cadence
    double tolerance = 0.01; ///< stop when max relative coefficient drift per batch < this
    std::uint64_t seed = 1;
    StimulusMode mode = StimulusMode::StratifiedChain;
};

/// One measured transition.
struct CharacterizationRecord {
    int hd = 0;          ///< Hamming distance of the input transition
    int stable_zeros = 0; ///< stable-zero bit count of the transition
    double charge_fc = 0.0; ///< reference cycle charge from the event simulator
    std::uint64_t toggle_mask = 0; ///< which input bits switched (u XOR v)
};

/// Runs reference power simulations on a module prototype and fits the
/// macro-model coefficients (paper section 4.1): p_i is the mean charge of
/// class E_i (eq. 4), ε_i its mean relative deviation (eq. 5).
/// Characterization stops when the coefficients have converged or the
/// transition budget is exhausted.
class Characterizer {
public:
    explicit Characterizer(const gate::TechLibrary& library = gate::TechLibrary::generic350(),
                           sim::EventSimOptions sim_options = {});

    /// Characterize the basic Hd-model of a module.
    [[nodiscard]] HdModel characterize(const dp::DatapathModule& module,
                                       const CharacterizationOptions& options = {}) const;

    /// Characterize the enhanced (Hd, stable-zeros) model; @p zero_clusters
    /// = 0 keeps one class per zero count. Options default to
    /// StratifiedPairs mode regardless of options.mode.
    [[nodiscard]] EnhancedHdModel characterize_enhanced(
        const dp::DatapathModule& module, int zero_clusters = 0,
        CharacterizationOptions options = {}) const;

    /// Raw measured transitions (for ablations and convergence studies).
    [[nodiscard]] std::vector<CharacterizationRecord> collect_records(
        const dp::DatapathModule& module, const CharacterizationOptions& options) const;

private:
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;
};

/// Build a basic HdModel from raw records (mean + deviation per class).
[[nodiscard]] HdModel fit_basic_model(int input_bits,
                                      std::span<const CharacterizationRecord> records);

/// Build an enhanced model (and its embedded basic fallback) from records.
[[nodiscard]] EnhancedHdModel fit_enhanced_model(
    int input_bits, int zero_clusters,
    std::span<const CharacterizationRecord> records);

} // namespace hdpm::core
