#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/enhanced_model.hpp"
#include "core/hd_model.hpp"
#include "dpgen/module.hpp"
#include "gatelib/techlib.hpp"
#include "sim/event_sim.hpp"
#include "util/fault.hpp"

namespace hdpm::core {

/// How characterization stimuli are generated.
enum class StimulusMode {
    /// Consecutive uniform random vectors — the paper's characterization
    /// stream. Hd concentrates binomially around m/2, so extreme classes
    /// converge slowly.
    RandomChain,

    /// A chain whose per-transition Hamming distance cycles uniformly over
    /// 1..m (switching bit subsets uniform within each class). The
    /// conditional distribution within each class matches RandomChain, so
    /// coefficients are unbiased while every class is populated equally.
    /// Default for the basic model.
    StratifiedChain,

    /// Independent (settle, step) pairs stratified over both Hamming
    /// distance and stable-zero count; required to populate the enhanced
    /// model's (i, z) classes, whose extremes random streams never reach.
    StratifiedPairs,
};

/// Which reference engine produces record charges.
enum class CharBackend {
    /// The timed event kernel: full glitch activity under inertial
    /// filtering. Exact — the reference physics and the differential
    /// oracle for every other backend.
    EventKernel,

    /// 64-lane word-parallel power emulation: each block of up to 64
    /// stimulus pairs settles zero-delay in sim::BatchedEvaluator, and the
    /// pair charge is the toggle-weighted sum of per-net edge charges. A
    /// zero-delay settle sees no glitches, so a calibration phase runs a
    /// small deterministic event-kernel subsample (same sharded seed
    /// scheme, disjoint shard ids) and fits per-cell glitch-correction
    /// factors plus a residual least-squares scale into the weights.
    /// Approximate but an order of magnitude faster — the screening /
    /// regression-volume path; see docs/simulator.md for the accuracy
    /// contract.
    PowerEmulation,
};

/// Human-readable backend name ("event-kernel" / "power-emulation").
[[nodiscard]] const char* char_backend_name(CharBackend backend) noexcept;

/// How StratifiedPairs records establish their pre-transition steady state
/// (the warm-up settle of u before the timed apply of v). Both modes
/// produce bit-identical records: a combinational netlist has a unique
/// zero-delay fixpoint, so settling u word-parallel and scattering the
/// result into the event simulator reaches exactly the post-initialize(u)
/// state. Chain modes never warm up and ignore this knob.
enum class WarmupMode {
    /// Settle warm-up vectors 64 at a time with sim::BatchedEvaluator and
    /// adopt each lane via EventSimulator::load_state. The default — one
    /// word-parallel pass replaces 64 O(cells) scalar settles.
    Batched,

    /// A full EventSimulator::initialize before every record. Retained as
    /// the differential-testing baseline for the batched fast path.
    PerRecord,
};

/// One stimulus-shard failure captured by a non-strict run. The shard
/// index plus the run's (seed, shard_size) locate the exact stimulus
/// stream, so a captured failure can be replayed in isolation by re-running
/// just that shard.
struct ShardFailure {
    std::size_t shard = 0; ///< stimulus shard index in the plan
    util::FaultKind kind = util::FaultKind::ShardFailed;
    std::string message; ///< the failure's what() text
};

/// Wall-clock and volume counters of one characterization run, filled when
/// CharacterizationOptions::stats points at an instance. Only counters of
/// work that contributed to the result are reported (shards simulated ahead
/// of a convergence stop and then discarded are not; shards replayed from a
/// checkpoint journal were simulated by the interrupted run, so they count
/// toward records/shards but not toward this run's simulation counters).
struct CharRunStats {
    double collect_wall_ms = 0.0; ///< record-collection (simulation) wall time
    double fit_wall_ms = 0.0;     ///< coefficient-fitting wall time
    std::uint64_t sim_transitions = 0; ///< net toggles simulated, incl. glitches
    std::uint64_t sim_events = 0; ///< scheduler events processed (queue pops)
    double events_per_sec = 0.0;  ///< sim_events over the collect wall time
    std::size_t max_queue_depth = 0; ///< peak pending events in any shard's queue
    std::size_t records = 0;      ///< measured transitions kept
    std::size_t shards = 0;       ///< stimulus shards merged into the result
    unsigned threads = 1;         ///< worker threads used
    std::uint64_t warmup_vectors = 0; ///< pairs-mode warm-up vectors settled
    std::uint64_t warmup_batches = 0; ///< 64-lane batched warm-up settle passes

    /// Backend that produced the records, plus its emulated-vs-event pass
    /// counters (all zero / EventKernel for a pure event-kernel run).
    CharBackend backend = CharBackend::EventKernel;
    std::uint64_t emulated_pairs = 0;   ///< records scored word-parallel this run
    std::uint64_t emulation_passes = 0; ///< 64-lane zero-delay settle passes
    std::uint64_t calibration_pairs = 0; ///< event-kernel pairs run for calibration
    double calibration_scale = 1.0; ///< fitted residual glitch scale (1 = none)

    /// Corners scored by a multi-corner sweep (0 = single-corner run), and
    /// the event-kernel transitions spent on the per-corner transfer
    /// calibration (event backend sweeps only; the emulation backend's
    /// per-corner glitch calibrations report through calibration_pairs).
    std::size_t corners = 0;
    std::uint64_t corner_calibration_pairs = 0;

    /// Shards that failed and were skipped (non-strict runs only; empty
    /// means the run completed clean).
    std::vector<ShardFailure> shard_failures;
    std::size_t shards_resumed = 0; ///< shards replayed from a checkpoint journal
    std::size_t checkpoints_published = 0; ///< journal publishes this run
    bool checkpoint_discarded = false; ///< a stale or corrupt journal was set aside
    /// A damaged journal's surviving whole-shard prefix was resumed (the
    /// torn tail was quarantined as .corrupt and re-simulated).
    bool checkpoint_salvaged = false;
};

/// Progress of a characterization run, reported once per merged shard.
struct CharProgress {
    std::size_t shards_merged = 0;  ///< shards merged so far
    std::size_t shards_planned = 0; ///< upper bound (budget / shard size)
    std::size_t records = 0;        ///< records merged so far
    std::size_t max_records = 0;    ///< the transition budget
};

/// Progress callback. Always invoked on the thread that called into the
/// Characterizer (never from a worker), so it may touch non-thread-safe
/// state such as std::cout.
using ProgressFn = std::function<void(const CharProgress&)>;

/// Characterization options.
struct CharacterizationOptions {
    std::size_t max_transitions = 20000; ///< hard budget of measured transitions
    std::size_t min_transitions = 4000;  ///< measure at least this many
    std::size_t batch = 2000;            ///< convergence check cadence
    double tolerance = 0.01; ///< stop when max relative coefficient drift per batch < this
    std::uint64_t seed = 1;

    /// Stimulus mode. Unset picks the entry point's natural default —
    /// StratifiedChain for basic characterization and collect_records,
    /// StratifiedPairs for the enhanced model. An explicitly set mode is
    /// always respected.
    std::optional<StimulusMode> mode;

    /// Reference engine for record charges. Unlike threads/warmup — and
    /// like shard_size — the backend is part of the measurement plan:
    /// emulated charges approximate the event kernel's, so the choice is
    /// fingerprinted into stored models and checkpoint journals.
    CharBackend backend = CharBackend::EventKernel;

    /// PowerEmulation only: event-kernel transitions simulated for the
    /// glitch-correction calibration fit (0 disables correction — raw
    /// zero-delay charge, which underestimates glitch-heavy modules).
    /// Part of the measurement plan, fingerprinted. Calibration shards are
    /// seeded `seed ^ splitmix64(kCalibrationShardBase + i)` with ids
    /// disjoint from measurement shards, merged in shard order — so the
    /// fitted correction, like the records, is bit-identical for any
    /// thread count and recomputed identically on a checkpoint resume.
    std::size_t calibration_pairs = 512;

    /// Worker threads for sharded stimulus collection (0 = one per
    /// hardware thread, the default). Results are bit-identical for every
    /// thread count, including 1: the stimulus plan is split into
    /// fixed-size, independently seeded shards and merged in shard order,
    /// so the thread count only changes how shards are scheduled — which
    /// is why characterization can default to all cores.
    unsigned threads = 0;

    /// Transitions per stimulus shard (0 = batch). Unlike threads, the
    /// shard size is part of the stimulus plan: changing it changes the
    /// generated stream (and therefore the fitted coefficients).
    std::size_t shard_size = 0;

    /// Pairs-mode warm-up strategy. Like threads — and unlike shard_size —
    /// this is purely an execution choice: records are bit-identical for
    /// either value (see WarmupMode).
    WarmupMode warmup = WarmupMode::Batched;

    /// Checkpoint journal path (empty = no checkpointing). When set, the
    /// merged record prefix is published crash-safely (sibling .tmp +
    /// atomic rename, stamped with the run's options fingerprint and the
    /// module identity) every checkpoint_every merged shards. A later run
    /// with the same stimulus plan resumes from the journal and produces
    /// bit-identical records; the journal is deleted once the run
    /// completes. A journal from a different plan or module is discarded;
    /// a corrupt one is quarantined with a ".corrupt" suffix. Like threads
    /// and warmup, this knob is execution-only: it never changes the
    /// records and is excluded from the options fingerprint.
    std::filesystem::path checkpoint;

    /// Merged shards between checkpoint publishes (must be >= 1).
    std::size_t checkpoint_every = 1;

    /// Operating corner the reference library is derived at
    /// (gate::TechLibrary::at) before any simulation. Unset = the
    /// library's native corner — bit-identical to pre-corner behaviour.
    /// Like the backend, the corner is part of the measurement plan:
    /// fingerprinted into stored models and checkpoint journals.
    std::optional<gate::Corner> corner;

    /// Multi-corner sweep list consumed by the *_corners entry points: one
    /// stimulus sweep scores every listed corner from shared per-net
    /// toggle activity (docs/corners.md), returning result vectors
    /// index-aligned with this list. Ignored by the single-corner entry
    /// points; mutually exclusive with `corner`.
    std::vector<gate::Corner> corners;

    /// When true, the first failing shard aborts the whole run (the
    /// historical behaviour). When false — the default — a shard failure
    /// is captured in CharRunStats::shard_failures with its fault kind and
    /// the sibling shards continue, so one poisoned stimulus region
    /// degrades coverage instead of losing the run. A run in which *no*
    /// shard succeeds still throws the first failure.
    bool strict_faults = false;

    ProgressFn progress;           ///< per-merged-shard progress callback
    CharRunStats* stats = nullptr; ///< filled with run counters when non-null
};

/// One measured transition.
struct CharacterizationRecord {
    int hd = 0;          ///< Hamming distance of the input transition
    int stable_zeros = 0; ///< stable-zero bit count of the transition
    double charge_fc = 0.0; ///< reference cycle charge from the selected backend
    std::uint64_t toggle_mask = 0; ///< which input bits switched (u XOR v)
};

/// Runs reference power simulations on a module prototype and fits the
/// macro-model coefficients (paper section 4.1): p_i is the mean charge of
/// class E_i (eq. 4), ε_i its mean relative deviation (eq. 5).
/// Characterization stops when the coefficients have converged or the
/// transition budget is exhausted.
class Characterizer {
public:
    explicit Characterizer(const gate::TechLibrary& library = gate::TechLibrary::generic350(),
                           sim::EventSimOptions sim_options = {});

    /// Characterize the basic Hd-model of a module.
    [[nodiscard]] HdModel characterize(const dp::DatapathModule& module,
                                       const CharacterizationOptions& options = {}) const;

    /// Characterize the enhanced (Hd, stable-zeros) model; @p zero_clusters
    /// = 0 keeps one class per zero count. When options.mode is unset this
    /// defaults to StratifiedPairs (the only mode that populates every
    /// (i, z) class); an explicitly set mode is respected as-is.
    [[nodiscard]] EnhancedHdModel characterize_enhanced(
        const dp::DatapathModule& module, int zero_clusters = 0,
        CharacterizationOptions options = {}) const;

    /// Raw measured transitions (for ablations and convergence studies).
    ///
    /// The stimulus plan is split into fixed-size shards, each seeded
    /// `seed ^ splitmix64(shard)` and simulated independently (its own
    /// EventSimulator over one shared immutable SimContext), then merged
    /// in shard order; convergence is evaluated over the merged stream at
    /// batch boundaries. The returned records are therefore bit-identical
    /// for any options.threads value.
    [[nodiscard]] std::vector<CharacterizationRecord> collect_records(
        const dp::DatapathModule& module, const CharacterizationOptions& options) const;

    /// Multi-corner single-sweep record collection — the amortization path
    /// (docs/corners.md). Runs the stimulus sweep *once* and scores every
    /// corner in options.corners from shared per-net toggle activity:
    ///
    ///  - PowerEmulation: zero-delay toggles are exactly corner-invariant,
    ///    so each shard settles once and K weighted dot products score the
    ///    K corners. Each corner keeps its own event-kernel glitch
    ///    calibration (run at that corner's derived library), so every
    ///    corner's records are bit-identical to an independent
    ///    single-corner run at that corner.
    ///  - EventKernel: corners[0] is simulated exactly (bit-identical to a
    ///    single-corner run at corners[0]); the remaining corners are
    ///    scored from its per-cycle toggle vectors through per-corner
    ///    transfer weights calibrated on a deterministic event-kernel
    ///    subsample at each corner (approximate, within the calibrated
    ///    tolerance).
    ///
    /// Element k of the result aligns with options.corners[k]. Convergence
    /// is tracked per corner (a corner's record stream stops exactly where
    /// its independent run would); the sweep runs until every corner has
    /// converged or the budget is exhausted. Checkpointing appends ".c<k>"
    /// per corner to options.checkpoint; resume is bit-identical.
    [[nodiscard]] std::vector<std::vector<CharacterizationRecord>>
    collect_records_corners(const dp::DatapathModule& module,
                            const CharacterizationOptions& options) const;

    /// Fit one basic model per corner from a single sweep (see
    /// collect_records_corners).
    [[nodiscard]] std::vector<HdModel> characterize_corners(
        const dp::DatapathModule& module, const CharacterizationOptions& options) const;

    /// Fit one enhanced model per corner from a single sweep.
    [[nodiscard]] std::vector<EnhancedHdModel> characterize_corners_enhanced(
        const dp::DatapathModule& module, int zero_clusters,
        CharacterizationOptions options) const;

    /// The reference-simulation physics this characterizer runs under (used
    /// e.g. to fingerprint checkpoint journals).
    [[nodiscard]] const sim::EventSimOptions& sim_options() const noexcept
    {
        return sim_options_;
    }

private:
    const gate::TechLibrary* library_;
    sim::EventSimOptions sim_options_;
};

/// Runs single stimulus shards of a characterization plan — the unit of
/// distribution. A ShardRunner owns everything a shard simulation needs
/// (the compiled SimContext, the options, and — for the power-emulation
/// backend — the calibrated weight vector, computed once at construction)
/// so shard @p i of the plan can be simulated in any process, on any host,
/// and produce the identical record block: the stream is seeded
/// `seed ^ splitmix64(i)` and nothing about it depends on which shards ran
/// before or elsewhere. This is exactly the per-shard work
/// Characterizer::collect_records schedules onto its thread pool, exposed
/// so a fleet worker can run a leased shard range out-of-process.
class ShardRunner {
public:
    /// @p module (its netlist) and @p library must outlive the runner, as
    /// for every simulator built on SimContext.
    ShardRunner(const dp::DatapathModule& module, CharacterizationOptions options,
                const gate::TechLibrary& library = gate::TechLibrary::generic350(),
                sim::EventSimOptions sim_options = {});
    ~ShardRunner();
    ShardRunner(const ShardRunner&) = delete;
    ShardRunner& operator=(const ShardRunner&) = delete;

    /// Shard geometry of the plan (identical to collect_records').
    [[nodiscard]] std::size_t num_shards() const noexcept;
    [[nodiscard]] std::size_t shard_size() const noexcept;
    [[nodiscard]] int input_bits() const noexcept;

    /// The plan's options fingerprint (characterization_fingerprint) and
    /// the module's checkpoint-journal identity key.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
    [[nodiscard]] const std::string& module_key() const noexcept;

    /// Mid-shard progress callback: invoked between stimulus batches
    /// *inside* a shard (roughly every 64 simulated transitions), so a
    /// fleet worker can heartbeat its lease while a large shard is still
    /// simulating — which is what lets the lease TTL shrink below one
    /// shard's wall time.
    using TickFn = std::function<void()>;

    /// Simulate shard @p shard of the plan and return its record block.
    /// Throws the shard's failure (FaultError etc.) — the caller owns the
    /// degrade/abort decision. @p tick, when set, is invoked between
    /// batches inside the shard (see TickFn); it must not throw.
    [[nodiscard]] std::vector<CharacterizationRecord> run(
        std::size_t shard, const TickFn& tick = {}) const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Replays collect_records' merge-and-convergence loop over shard record
/// blocks delivered strictly in plan order. The merged stream — including
/// the exact record the run stops at — is a pure function of the blocks,
/// so a coordinator merging journaled blocks from any number of worker
/// processes reproduces a single-process run bit for bit. Blocks merged
/// after convergence are ignored, exactly as collect_records discards
/// shards simulated ahead of a stop.
class ShardMerger {
public:
    ShardMerger(int input_bits, const CharacterizationOptions& options);
    ~ShardMerger();
    ShardMerger(const ShardMerger&) = delete;
    ShardMerger& operator=(const ShardMerger&) = delete;

    /// Merge the next shard's record block (plan order). Returns false once
    /// the run has converged (further blocks are ignored).
    bool merge(std::span<const CharacterizationRecord> block);

    [[nodiscard]] bool converged() const noexcept;
    [[nodiscard]] std::size_t shards_merged() const noexcept;
    [[nodiscard]] const std::vector<CharacterizationRecord>& records() const noexcept;
    [[nodiscard]] std::vector<CharacterizationRecord> take_records();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// The checkpoint/fleet journal identity key of a module: netlist name plus
/// operand widths as one whitespace-free token (e.g. "csa_multiplier_16x16").
[[nodiscard]] std::string module_journal_key(const dp::DatapathModule& module);

/// Build a basic HdModel from raw records (mean + deviation per class).
[[nodiscard]] HdModel fit_basic_model(int input_bits,
                                      std::span<const CharacterizationRecord> records);

/// Build an enhanced model (and its embedded basic fallback) from records.
[[nodiscard]] EnhancedHdModel fit_enhanced_model(
    int input_bits, int zero_clusters,
    std::span<const CharacterizationRecord> records);

} // namespace hdpm::core
