#include "dpgen/module.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "dpgen/arith.hpp"
#include "util/error.hpp"

namespace hdpm::dp {

using netlist::Bus;
using netlist::Netlist;
using netlist::NetlistBuilder;
using util::BitVec;

namespace {

constexpr std::array<ModuleType, 15> kAllTypes = {
    ModuleType::RippleAdder,   ModuleType::ClaAdder,
    ModuleType::AbsVal,        ModuleType::CsaMultiplier,
    ModuleType::BoothWallaceMultiplier,
    ModuleType::RippleSubtractor, ModuleType::Incrementer,
    ModuleType::Comparator,    ModuleType::Mac,
    ModuleType::CarrySelectAdder, ModuleType::CarrySkipAdder,
    ModuleType::BarrelShifter, ModuleType::MinMax,
    ModuleType::SaturatingAdder, ModuleType::ParityTree,
};

constexpr std::array<ModuleType, 5> kPaperTypes = {
    ModuleType::RippleAdder, ModuleType::ClaAdder, ModuleType::AbsVal,
    ModuleType::CsaMultiplier, ModuleType::BoothWallaceMultiplier,
};

struct TypeInfo {
    const char* id;
    const char* display;
    int num_operands;
};

const TypeInfo& type_info(ModuleType type)
{
    static const std::array<TypeInfo, 15> kInfo = {{
        {"ripple_adder", "ripple adder", 2},
        {"cla_adder", "cla-adder", 2},
        {"absval", "absval", 1},
        {"csa_multiplier", "csa-multiplier", 2},
        {"booth_wallace_mult", "booth-cod. wallace-tree mult.", 2},
        {"ripple_subtractor", "ripple subtractor", 2},
        {"incrementer", "incrementer", 1},
        {"comparator", "comparator", 2},
        {"mac", "multiply-accumulate", 3},
        {"carry_select_adder", "carry-select adder", 2},
        {"carry_skip_adder", "carry-skip adder", 2},
        {"barrel_shifter", "barrel shifter", 2},
        {"min_max", "min/max unit", 2},
        {"saturating_adder", "saturating adder", 2},
        {"parity_tree", "parity tree", 1},
    }};
    return kInfo[static_cast<std::size_t>(type)];
}

int ceil_log2(int n)
{
    int bits = 0;
    while ((1 << bits) < n) {
        ++bits;
    }
    return bits;
}

std::uint64_t width_mask(int w)
{
    return w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
}

/// Sign-extend the low @p w bits of @p pattern to 64 bits.
std::uint64_t sign_extend(std::uint64_t pattern, int w)
{
    if (w < 64 && ((pattern >> (w - 1)) & 1U) != 0) {
        return pattern | ~width_mask(w);
    }
    return pattern & width_mask(w);
}

} // namespace

std::span<const ModuleType> all_module_types() noexcept
{
    return kAllTypes;
}

std::span<const ModuleType> paper_module_types() noexcept
{
    return kPaperTypes;
}

std::string module_type_id(ModuleType type)
{
    return type_info(type).id;
}

std::string module_type_display(ModuleType type)
{
    return type_info(type).display;
}

ModuleType module_type_from_id(const std::string& id)
{
    for (const ModuleType type : kAllTypes) {
        if (id == type_info(type).id) {
            return type;
        }
    }
    throw util::PreconditionError("unknown module id: " + id);
}

int module_num_operands(ModuleType type) noexcept
{
    return type_info(type).num_operands;
}

DatapathModule::DatapathModule(ModuleType type, std::vector<int> operand_widths,
                               Netlist netlist)
    : type_(type), operand_widths_(std::move(operand_widths)), netlist_(std::move(netlist))
{
    total_input_bits_ = 0;
    for (const int w : operand_widths_) {
        total_input_bits_ += w;
    }
    HDPM_ASSERT(total_input_bits_ ==
                    static_cast<int>(netlist_.primary_inputs().size()),
                "operand widths disagree with netlist inputs");
}

BitVec DatapathModule::encode(std::span<const std::int64_t> operands) const
{
    HDPM_REQUIRE(operands.size() == operand_widths_.size(), "module ", display_name(),
                 " takes ", operand_widths_.size(), " operands, got ", operands.size());
    BitVec packed{0};
    for (std::size_t i = 0; i < operands.size(); ++i) {
        const int w = operand_widths_[i];
        const std::int64_t lo = w >= 64 ? INT64_MIN : -(std::int64_t{1} << (w - 1));
        const std::int64_t hi =
            w >= 64 ? INT64_MAX : static_cast<std::int64_t>(width_mask(w));
        HDPM_REQUIRE(operands[i] >= lo && operands[i] <= hi, "operand ", i, " value ",
                     operands[i], " does not fit ", w, " bits");
        const BitVec field{w, static_cast<std::uint64_t>(operands[i])};
        packed = packed.concat_high(field);
    }
    return packed;
}

std::string DatapathModule::display_name() const
{
    std::string name = module_type_display(type_);
    name += ' ';
    for (std::size_t i = 0; i < operand_widths_.size(); ++i) {
        if (i > 0) {
            name += 'x';
        }
        name += std::to_string(operand_widths_[i]);
    }
    return name;
}

std::vector<int> expand_operand_widths(ModuleType type, std::span<const int> widths)
{
    const int ops = module_num_operands(type);
    std::vector<int> w;
    w.reserve(static_cast<std::size_t>(ops));
    w.assign(widths.begin(), widths.end());
    HDPM_REQUIRE(!w.empty(), "no widths given");
    for (const int width : w) {
        HDPM_REQUIRE(width >= 1 && width <= 32, "operand width ", width, " out of range");
    }
    if (type == ModuleType::Mac) {
        if (w.size() == 1) {
            const int square = w[0];
            w.push_back(square);
        }
        HDPM_REQUIRE(w.size() == 2, "mac takes {w1, w0} or a single square width");
        const int acc_width = w[0] + w[1]; // accumulate operand spans the product
        w.push_back(acc_width);
    } else if (type == ModuleType::BarrelShifter) {
        HDPM_REQUIRE(w.size() == 1, "barrel shifter takes the data width only");
        HDPM_REQUIRE(w[0] >= 2, "barrel shifter needs at least 2 data bits");
        w.push_back(ceil_log2(w[0]));
    } else if (ops == 2 && w.size() == 1) {
        const int square = w[0];
        w.push_back(square);
    }
    HDPM_REQUIRE(static_cast<int>(w.size()) == ops, module_type_id(type), " takes ", ops,
                 " widths, got ", w.size());
    return w;
}

DatapathModule make_module(ModuleType type, std::span<const int> widths)
{
    std::vector<int> w = expand_operand_widths(type, widths);

    NetlistBuilder b{module_type_id(type)};
    switch (type) {
    case ModuleType::RippleAdder: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(ripple_add(b, a, bb), "s");
        break;
    }
    case ModuleType::ClaAdder: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(cla_add(b, a, bb), "s");
        break;
    }
    case ModuleType::AbsVal: {
        const Bus x = b.input_bus("x", w[0]);
        b.output_bus(absolute_value(b, x), "y");
        break;
    }
    case ModuleType::CsaMultiplier: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(csa_multiply(b, a, bb), "p");
        break;
    }
    case ModuleType::BoothWallaceMultiplier: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(booth_wallace_multiply(b, a, bb), "p");
        break;
    }
    case ModuleType::RippleSubtractor: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(ripple_sub(b, a, bb), "d");
        break;
    }
    case ModuleType::Incrementer: {
        const Bus x = b.input_bus("x", w[0]);
        b.output_bus(increment(b, x), "y");
        break;
    }
    case ModuleType::Comparator: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        const CompareResult r = compare_unsigned(b, a, bb);
        b.output(r.eq, "eq");
        b.output(r.lt, "lt");
        b.output(r.gt, "gt");
        break;
    }
    case ModuleType::Mac: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        const Bus c = b.input_bus("c", w[2]);
        const Bus product = csa_multiply(b, a, bb);
        b.output_bus(ripple_add(b, product, c), "y");
        break;
    }
    case ModuleType::CarrySelectAdder: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(carry_select_add(b, a, bb), "s");
        break;
    }
    case ModuleType::CarrySkipAdder: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(carry_skip_add(b, a, bb), "s");
        break;
    }
    case ModuleType::BarrelShifter: {
        const Bus x = b.input_bus("x", w[0]);
        const Bus shift = b.input_bus("s", w[1]);
        b.output_bus(barrel_shift_left(b, x, shift), "y");
        break;
    }
    case ModuleType::MinMax: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        const MinMaxResult r = min_max_unsigned(b, a, bb);
        b.output_bus(r.min, "min");
        b.output_bus(r.max, "max");
        break;
    }
    case ModuleType::SaturatingAdder: {
        const Bus a = b.input_bus("a", w[0]);
        const Bus bb = b.input_bus("b", w[1]);
        b.output_bus(saturating_add(b, a, bb), "s");
        break;
    }
    case ModuleType::ParityTree: {
        const Bus x = b.input_bus("x", w[0]);
        b.output(parity_tree(b, x), "p");
        break;
    }
    }

    Netlist netlist = b.take();
    netlist.set_name(module_type_id(type));
    return DatapathModule{type, std::move(w), std::move(netlist)};
}

DatapathModule make_module(ModuleType type, int width)
{
    const std::array<int, 1> w = {width};
    return make_module(type, w);
}

std::uint64_t golden_output(ModuleType type, std::span<const int> widths,
                            std::span<const std::int64_t> operands)
{
    const std::vector<int> w = expand_operand_widths(type, widths);
    HDPM_REQUIRE(operands.size() == w.size(), "operand count mismatch");
    auto u = [&](std::size_t i) {
        return static_cast<std::uint64_t>(operands[i]) & width_mask(w[i]);
    };

    switch (type) {
    case ModuleType::RippleAdder:
    case ModuleType::ClaAdder:
        return (u(0) + u(1)) & width_mask(w[0] + 1);
    case ModuleType::AbsVal: {
        const auto x = static_cast<std::int64_t>(sign_extend(u(0), w[0]));
        const auto mag = static_cast<std::uint64_t>(x < 0 ? -x : x);
        return mag & width_mask(w[0]);
    }
    case ModuleType::CsaMultiplier:
        return (u(0) * u(1)) & width_mask(w[0] + w[1]);
    case ModuleType::BoothWallaceMultiplier:
        // Signed product mod 2^(w1+w0) equals the wrapped product of the
        // sign-extended patterns.
        return (sign_extend(u(0), w[0]) * sign_extend(u(1), w[1])) &
               width_mask(w[0] + w[1]);
    case ModuleType::RippleSubtractor:
        return (u(0) + (~u(1) & width_mask(w[1])) + 1) & width_mask(w[0] + 1);
    case ModuleType::Incrementer:
        return (u(0) + 1) & width_mask(w[0] + 1);
    case ModuleType::Comparator: {
        const std::uint64_t a = u(0);
        const std::uint64_t bb = u(1);
        std::uint64_t out = 0;
        if (a == bb) {
            out |= 1U;
        }
        if (a < bb) {
            out |= 2U;
        }
        if (a > bb) {
            out |= 4U;
        }
        return out;
    }
    case ModuleType::Mac:
        return (u(0) * u(1) + u(2)) & width_mask(w[0] + w[1] + 1);
    case ModuleType::CarrySelectAdder:
    case ModuleType::CarrySkipAdder:
        return (u(0) + u(1)) & width_mask(w[0] + 1);
    case ModuleType::BarrelShifter: {
        const std::uint64_t shift = u(1);
        if (shift >= static_cast<std::uint64_t>(w[0])) {
            return 0; // everything shifted out (zero fill)
        }
        return (u(0) << shift) & width_mask(w[0]);
    }
    case ModuleType::MinMax: {
        const std::uint64_t lo = std::min(u(0), u(1));
        const std::uint64_t hi = std::max(u(0), u(1));
        return lo | (hi << w[0]); // min in the low bits, max above
    }
    case ModuleType::SaturatingAdder: {
        const auto a = static_cast<std::int64_t>(sign_extend(u(0), w[0]));
        const auto bb = static_cast<std::int64_t>(sign_extend(u(1), w[1]));
        const std::int64_t lo = -(std::int64_t{1} << (w[0] - 1));
        const std::int64_t hi = (std::int64_t{1} << (w[0] - 1)) - 1;
        const std::int64_t sum = std::clamp(a + bb, lo, hi);
        return static_cast<std::uint64_t>(sum) & width_mask(w[0]);
    }
    case ModuleType::ParityTree:
        return static_cast<std::uint64_t>(std::popcount(u(0)) & 1);
    }
    HDPM_FAIL("unreachable module type");
}

namespace {

std::vector<double> eval_linear(std::span<const int> widths)
{
    return {static_cast<double>(widths[0]), 1.0};
}

std::vector<double> eval_quadratic(std::span<const int> widths)
{
    const double m1 = static_cast<double>(widths[0]);
    const double m0 = static_cast<double>(widths.size() > 1 ? widths[1] : widths[0]);
    return {m1 * m0, m1, 1.0};
}

std::vector<double> eval_log_linear(std::span<const int> widths)
{
    const double m = static_cast<double>(widths[0]);
    const double stages = static_cast<double>(ceil_log2(widths[0]));
    return {m * stages, m, 1.0};
}

const ComplexityBasis kLinearBasis{{"m", "1"}, &eval_linear};
const ComplexityBasis kQuadraticBasis{{"m1*m0", "m1", "1"}, &eval_quadratic};
const ComplexityBasis kLogLinearBasis{{"m*log2(m)", "m", "1"}, &eval_log_linear};

} // namespace

const ComplexityBasis& complexity_basis(ModuleType type)
{
    switch (type) {
    case ModuleType::CsaMultiplier:
    case ModuleType::BoothWallaceMultiplier:
    case ModuleType::Mac:
        return kQuadraticBasis;
    case ModuleType::BarrelShifter:
        return kLogLinearBasis;
    case ModuleType::RippleAdder:
    case ModuleType::ClaAdder:
    case ModuleType::AbsVal:
    case ModuleType::RippleSubtractor:
    case ModuleType::Incrementer:
    case ModuleType::Comparator:
    case ModuleType::CarrySelectAdder:
    case ModuleType::CarrySkipAdder:
    case ModuleType::MinMax:
    case ModuleType::SaturatingAdder:
    case ModuleType::ParityTree:
        return kLinearBasis;
    }
    HDPM_FAIL("unreachable module type");
}

} // namespace hdpm::dp
