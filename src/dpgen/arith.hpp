#pragma once

#include <vector>

#include "netlist/builder.hpp"

namespace hdpm::dp {

using netlist::Bus;
using netlist::NetId;
using netlist::NetlistBuilder;

/// Bit-matrix of partial sums: columns[p] holds the nets that still have to
/// be added at bit position p. Used by the carry-save reduction helpers.
using Columns = std::vector<std::vector<NetId>>;

/// Ripple-carry addition of two equal-width buses; returns w+1 bits
/// (sum LSB-first, carry-out last). @p cin is optional (kInvalidId = 0).
[[nodiscard]] Bus ripple_add(NetlistBuilder& b, const Bus& a, const Bus& bb,
                             NetId cin = netlist::kInvalidId);

/// Carry-lookahead addition (4-bit lookahead blocks, block carries rippled),
/// the structure of a DesignWare-style cla adder; returns w+1 bits.
[[nodiscard]] Bus cla_add(NetlistBuilder& b, const Bus& a, const Bus& bb,
                          NetId cin = netlist::kInvalidId);

/// Two's-complement absolute value of a signed bus (w bits; the most
/// negative value wraps onto itself, as in hardware).
[[nodiscard]] Bus absolute_value(NetlistBuilder& b, const Bus& x);

/// a - b with ripple borrow; returns w bits of difference plus a final
/// carry-out bit (1 = no borrow).
[[nodiscard]] Bus ripple_sub(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// a + 1; returns w+1 bits.
[[nodiscard]] Bus increment(NetlistBuilder& b, const Bus& a);

/// Unsigned comparison; returns {eq, lt, gt} nets.
struct CompareResult {
    NetId eq;
    NetId lt;
    NetId gt;
};
[[nodiscard]] CompareResult compare_unsigned(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Carry-select addition: 4-bit blocks computed twice (carry-in 0 and 1)
/// with the real block carry selecting sums and carry-out through muxes;
/// returns w+1 bits.
[[nodiscard]] Bus carry_select_add(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Carry-skip addition: 4-bit ripple blocks with a block-propagate AND
/// that lets the incoming carry skip a fully-propagating block; returns
/// w+1 bits.
[[nodiscard]] Bus carry_skip_add(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Logarithmic barrel shifter (logical left shift, zero fill): stage k
/// shifts by 2^k when shift-amount bit k is set. Returns w bits.
[[nodiscard]] Bus barrel_shift_left(NetlistBuilder& b, const Bus& x, const Bus& shift);

/// Unsigned min/max unit; returns {min bus, max bus} of width w each.
struct MinMaxResult {
    Bus min;
    Bus max;
};
[[nodiscard]] MinMaxResult min_max_unsigned(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Signed saturating addition: w-bit result clamped to
/// [-2^(w-1), 2^(w-1)-1] on overflow.
[[nodiscard]] Bus saturating_add(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Parity (XOR reduction) of a bus, as a balanced tree; returns one net.
[[nodiscard]] NetId parity_tree(NetlistBuilder& b, const Bus& x);

/// Unsigned carry-save *array* multiplier: partial-product rows are
/// accumulated one after another through carry-save adder rows and finished
/// with a ripple carry-propagate adder — the linear-array structure of the
/// paper's csa-multiplier (fig. 3). Returns wa+wb product bits.
[[nodiscard]] Bus csa_multiply(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Signed (two's complement) radix-4 Booth-recoded multiplier with
/// Wallace-tree reduction and a CLA final adder — the paper's
/// "booth-cod. wallace-tree mult.". Returns wa+wb product bits.
[[nodiscard]] Bus booth_wallace_multiply(NetlistBuilder& b, const Bus& a, const Bus& bb);

/// Reduce a column matrix with full/half adders until every column holds at
/// most two bits (Wallace reduction). The matrix is modified in place.
void wallace_reduce(NetlistBuilder& b, Columns& columns);

/// Sum a column matrix that has at most two bits per column with a
/// carry-propagate chain; returns one bit per column (plus a final carry
/// bit if it is generated). @p width limits the result (extra carries
/// beyond the last column are dropped, i.e. arithmetic is mod 2^width).
[[nodiscard]] Bus carry_propagate_sum(NetlistBuilder& b, const Columns& columns,
                                      std::size_t width);

} // namespace hdpm::dp
