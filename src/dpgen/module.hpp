#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace hdpm::dp {

/// The datapath component families provided by the library.
///
/// The first five are the module types evaluated in the paper (table 1);
/// the remaining ones are additional components built on the same substrate
/// and used by the examples and extension experiments.
enum class ModuleType {
    RippleAdder,            ///< w+w ripple-carry adder ("ripple adder")
    ClaAdder,               ///< w+w carry-lookahead adder ("cla-adder")
    AbsVal,                 ///< w-bit two's complement absolute value ("absval")
    CsaMultiplier,          ///< w1×w0 carry-save array multiplier ("csa-multiplier")
    BoothWallaceMultiplier, ///< w1×w0 Booth-coded Wallace-tree mult.
    RippleSubtractor,       ///< w−w subtractor with borrow
    Incrementer,            ///< w-bit +1
    Comparator,             ///< unsigned eq/lt/gt comparator
    Mac,                    ///< w1×w0 multiply + (w1+w0)-bit accumulate
    CarrySelectAdder,       ///< w+w carry-select adder (4-bit blocks)
    CarrySkipAdder,         ///< w+w carry-skip adder (4-bit blocks)
    BarrelShifter,          ///< w-bit logical left shifter, ceil(log2 w) shift bits
    MinMax,                 ///< unsigned min/max unit
    SaturatingAdder,        ///< w+w signed adder with saturation
    ParityTree,             ///< w-bit XOR-reduction parity
};

/// All module types, in declaration order (for sweeps).
[[nodiscard]] std::span<const ModuleType> all_module_types() noexcept;

/// The five module types evaluated in the paper's table 1.
[[nodiscard]] std::span<const ModuleType> paper_module_types() noexcept;

/// Short identifier ("ripple_adder", ...), usable in file names.
[[nodiscard]] std::string module_type_id(ModuleType type);

/// Paper-style display name ("ripple adder", "csa-multiplier", ...).
[[nodiscard]] std::string module_type_display(ModuleType type);

/// Parse a module id back to its type.
[[nodiscard]] ModuleType module_type_from_id(const std::string& id);

/// Number of operands the module type takes.
[[nodiscard]] int module_num_operands(ModuleType type) noexcept;

/// Expand a user-facing width list into one width per operand: a single
/// width for a two-operand module means square (w, w); Mac appends its
/// (w1+w0)-bit accumulate operand; BarrelShifter appends its
/// ceil(log2 w)-bit shift-amount operand. Validates counts and ranges.
[[nodiscard]] std::vector<int> expand_operand_widths(ModuleType type,
                                                     std::span<const int> widths);

/// A generated datapath component: netlist plus operand metadata.
///
/// The Hd macro-model operates on the concatenated primary input vector:
/// operand 0 occupies the low bits, operand 1 the next bits, and so on
/// (each operand LSB-first). encode() produces such vectors from integers.
class DatapathModule {
public:
    DatapathModule(ModuleType type, std::vector<int> operand_widths,
                   netlist::Netlist netlist);

    [[nodiscard]] ModuleType type() const noexcept { return type_; }
    [[nodiscard]] const std::vector<int>& operand_widths() const noexcept
    {
        return operand_widths_;
    }
    [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return netlist_; }

    /// Total number of primary input bits m — the length of the vectors the
    /// Hd model classifies (the paper's "m input bits").
    [[nodiscard]] int total_input_bits() const noexcept { return total_input_bits_; }

    /// Pack operand values (two's complement per operand) into one input
    /// vector. Each value must fit its operand width when interpreted as
    /// either a signed or an unsigned pattern.
    [[nodiscard]] util::BitVec encode(std::span<const std::int64_t> operands) const;

    /// Display name like "csa-multiplier 8x8" / "ripple adder 12".
    [[nodiscard]] std::string display_name() const;

private:
    ModuleType type_;
    std::vector<int> operand_widths_;
    netlist::Netlist netlist_;
    int total_input_bits_;
};

/// Build a module of the given type. @p widths must provide one width per
/// operand, except that multiplier-like 2-operand modules also accept a
/// single width (meaning square w×w), and Mac takes {w1, w0} with the
/// accumulate operand implicitly w1+w0 wide.
[[nodiscard]] DatapathModule make_module(ModuleType type, std::span<const int> widths);

/// Convenience overload for square/uniform widths.
[[nodiscard]] DatapathModule make_module(ModuleType type, int width);

/// Golden functional model: the integer the module's output bus must show
/// (packed LSB-first, as an unsigned pattern) for the given operand values.
/// Used by the test suite to validate every generator against arithmetic.
[[nodiscard]] std::uint64_t golden_output(ModuleType type, std::span<const int> widths,
                                          std::span<const std::int64_t> operands);

/// The complexity basis of a module family (section 5 of the paper):
/// the terms M(widths) the coefficients p_i are regressed against.
/// RippleAdder-style components use {m, 1}; array multipliers use
/// {m1·m0, m1, 1} (paper eq. 6–8).
struct ComplexityBasis {
    std::vector<std::string> term_names;

    /// Evaluate the basis terms for a module's operand widths.
    std::vector<double> (*eval)(std::span<const int> widths);

    [[nodiscard]] std::size_t size() const noexcept { return term_names.size(); }
};

/// Complexity basis for a module type.
[[nodiscard]] const ComplexityBasis& complexity_basis(ModuleType type);

} // namespace hdpm::dp
