#include "dpgen/arith.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hdpm::dp {

using netlist::kInvalidId;

namespace {

/// Lookahead carry c_k = g_{k-1} + p_{k-1}g_{k-2} + ... + (p_{k-1}..p_0)c0
/// built as a two-level and/or structure from per-bit propagate/generate.
NetId lookahead_carry(NetlistBuilder& b, const Bus& p, const Bus& g, NetId c0, int k)
{
    Bus terms;
    for (int j = k - 1; j >= 0; --j) {
        Bus factors;
        for (int t = k - 1; t > j; --t) {
            factors.push_back(p[static_cast<std::size_t>(t)]);
        }
        factors.push_back(g[static_cast<std::size_t>(j)]);
        terms.push_back(b.and_tree(factors));
    }
    {
        Bus factors;
        for (int t = k - 1; t >= 0; --t) {
            factors.push_back(p[static_cast<std::size_t>(t)]);
        }
        factors.push_back(c0);
        terms.push_back(b.and_tree(factors));
    }
    return b.or_tree(terms);
}

} // namespace

Bus ripple_add(NetlistBuilder& b, const Bus& a, const Bus& bb, NetId cin)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "ripple_add: width mismatch");
    Bus out;
    out.reserve(a.size() + 1);
    NetId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (carry == kInvalidId) {
            const auto bit = b.half_adder(a[i], bb[i]);
            out.push_back(bit.sum);
            carry = bit.carry;
        } else {
            const auto bit = b.full_adder(a[i], bb[i], carry);
            out.push_back(bit.sum);
            carry = bit.carry;
        }
    }
    out.push_back(carry);
    return out;
}

Bus cla_add(NetlistBuilder& b, const Bus& a, const Bus& bb, NetId cin)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "cla_add: width mismatch");
    constexpr std::size_t kBlock = 4;

    const std::size_t w = a.size();
    Bus p(w);
    Bus g(w);
    for (std::size_t i = 0; i < w; ++i) {
        p[i] = b.xor2(a[i], bb[i]);
        g[i] = b.and2(a[i], bb[i]);
    }

    Bus out;
    out.reserve(w + 1);
    NetId carry = cin == kInvalidId ? b.const0() : cin;
    for (std::size_t base = 0; base < w; base += kBlock) {
        const std::size_t n = std::min(kBlock, w - base);
        const Bus bp{p.begin() + static_cast<std::ptrdiff_t>(base),
                     p.begin() + static_cast<std::ptrdiff_t>(base + n)};
        const Bus bg{g.begin() + static_cast<std::ptrdiff_t>(base),
                     g.begin() + static_cast<std::ptrdiff_t>(base + n)};
        // Sum bit k uses the lookahead carry into position k.
        out.push_back(b.xor2(bp[0], carry));
        for (std::size_t k = 1; k < n; ++k) {
            const NetId ck = lookahead_carry(b, bp, bg, carry, static_cast<int>(k));
            out.push_back(b.xor2(bp[k], ck));
        }
        carry = lookahead_carry(b, bp, bg, carry, static_cast<int>(n));
    }
    out.push_back(carry);
    return out;
}

Bus absolute_value(NetlistBuilder& b, const Bus& x)
{
    HDPM_REQUIRE(!x.empty(), "absolute_value: empty bus");
    const NetId sign = x.back();
    // Conditional one's complement, then conditionally add one: ripple
    // increment with carry-in = sign.
    Bus out;
    out.reserve(x.size());
    NetId carry = sign;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const NetId t = b.xor2(x[i], sign);
        out.push_back(b.xor2(t, carry));
        if (i + 1 < x.size()) {
            carry = b.and2(t, carry);
        }
    }
    return out;
}

Bus ripple_sub(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "ripple_sub: width mismatch");
    Bus nb;
    nb.reserve(bb.size());
    for (const NetId bit : bb) {
        nb.push_back(b.inv(bit));
    }
    return ripple_add(b, a, nb, b.const1());
}

Bus increment(NetlistBuilder& b, const Bus& a)
{
    HDPM_REQUIRE(!a.empty(), "increment: empty bus");
    Bus out;
    out.reserve(a.size() + 1);
    NetId carry = b.const1();
    for (const NetId bit : a) {
        const auto ha = b.half_adder(bit, carry);
        out.push_back(ha.sum);
        carry = ha.carry;
    }
    out.push_back(carry);
    return out;
}

CompareResult compare_unsigned(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "compare_unsigned: width mismatch");
    const std::size_t w = a.size();

    Bus bit_eq(w);
    for (std::size_t i = 0; i < w; ++i) {
        bit_eq[i] = b.xnor2(a[i], bb[i]);
    }

    // lt = OR_i (¬a_i · b_i · all bits above i equal), scanning from MSB.
    Bus lt_terms;
    NetId prefix_eq = kInvalidId; // equality of all bits above the current one
    for (std::size_t ri = w; ri-- > 0;) {
        const NetId a_lt_b = b.and2(b.inv(a[ri]), bb[ri]);
        lt_terms.push_back(prefix_eq == kInvalidId ? a_lt_b : b.and2(a_lt_b, prefix_eq));
        prefix_eq = prefix_eq == kInvalidId ? bit_eq[ri] : b.and2(prefix_eq, bit_eq[ri]);
    }

    CompareResult r;
    r.eq = prefix_eq;
    r.lt = b.or_tree(lt_terms);
    r.gt = b.nor2(r.lt, r.eq);
    return r;
}

Bus carry_select_add(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "carry_select_add: width mismatch");
    constexpr std::size_t kBlock = 4;
    const std::size_t w = a.size();

    Bus out;
    out.reserve(w + 1);
    NetId carry = kInvalidId;
    for (std::size_t base = 0; base < w; base += kBlock) {
        const std::size_t n = std::min(kBlock, w - base);
        const Bus block_a{a.begin() + static_cast<std::ptrdiff_t>(base),
                          a.begin() + static_cast<std::ptrdiff_t>(base + n)};
        const Bus block_b{bb.begin() + static_cast<std::ptrdiff_t>(base),
                          bb.begin() + static_cast<std::ptrdiff_t>(base + n)};
        if (base == 0) {
            // First block: a plain ripple block (carry-in is 0).
            Bus sum = ripple_add(b, block_a, block_b);
            carry = sum.back();
            sum.pop_back();
            out.insert(out.end(), sum.begin(), sum.end());
            continue;
        }
        // Speculative blocks: compute with carry-in 0 and carry-in 1, then
        // select with the true carry.
        Bus sum0 = ripple_add(b, block_a, block_b, b.const0());
        Bus sum1 = ripple_add(b, block_a, block_b, b.const1());
        const NetId carry0 = sum0.back();
        const NetId carry1 = sum1.back();
        sum0.pop_back();
        sum1.pop_back();
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(b.mux2(sum0[i], sum1[i], carry));
        }
        carry = b.mux2(carry0, carry1, carry);
    }
    out.push_back(carry);
    return out;
}

Bus carry_skip_add(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "carry_skip_add: width mismatch");
    constexpr std::size_t kBlock = 4;
    const std::size_t w = a.size();

    Bus out;
    out.reserve(w + 1);
    NetId carry = b.const0();
    for (std::size_t base = 0; base < w; base += kBlock) {
        const std::size_t n = std::min(kBlock, w - base);
        // Ripple through the block while collecting block propagate.
        Bus propagates;
        NetId ripple_carry = carry;
        for (std::size_t i = 0; i < n; ++i) {
            const NetId ai = a[base + i];
            const NetId bi = bb[base + i];
            propagates.push_back(b.xor2(ai, bi));
            const auto fa = b.full_adder(ai, bi, ripple_carry);
            out.push_back(fa.sum);
            ripple_carry = fa.carry;
        }
        // If every bit propagates, the incoming carry skips the block.
        const NetId block_propagate = b.and_tree(propagates);
        carry = b.mux2(ripple_carry, carry, block_propagate);
    }
    out.push_back(carry);
    return out;
}

Bus barrel_shift_left(NetlistBuilder& b, const Bus& x, const Bus& shift)
{
    HDPM_REQUIRE(!x.empty() && !shift.empty(), "barrel_shift_left: empty operand");
    Bus current = x;
    for (std::size_t stage = 0; stage < shift.size(); ++stage) {
        const std::size_t distance = std::size_t{1} << stage;
        Bus next(current.size());
        for (std::size_t i = 0; i < current.size(); ++i) {
            const NetId unshifted = current[i];
            const NetId shifted =
                i >= distance ? current[i - distance] : b.const0();
            next[i] = b.mux2(unshifted, shifted, shift[stage]);
        }
        current = std::move(next);
    }
    return current;
}

MinMaxResult min_max_unsigned(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "min_max_unsigned: width mismatch");
    const CompareResult cmp = compare_unsigned(b, a, bb);
    MinMaxResult result;
    result.min.reserve(a.size());
    result.max.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // cmp.lt = (a < b): min = lt ? a : b, max = lt ? b : a.
        result.min.push_back(b.mux2(bb[i], a[i], cmp.lt));
        result.max.push_back(b.mux2(a[i], bb[i], cmp.lt));
    }
    return result;
}

Bus saturating_add(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && a.size() == bb.size(), "saturating_add: width mismatch");
    const std::size_t w = a.size();
    Bus sum = ripple_add(b, a, bb);
    sum.pop_back(); // the two's complement sum ignores the carry-out

    // Overflow iff both operands share a sign that the sum does not.
    const NetId sign_a = a.back();
    const NetId sign_b = bb.back();
    const NetId sign_s = sum.back();
    const NetId same_sign = b.xnor2(sign_a, sign_b);
    const NetId flipped = b.xor2(sign_a, sign_s);
    const NetId overflow = b.and2(same_sign, flipped);

    // Saturation value: sign_a ? MIN (10..0) : MAX (01..1).
    Bus out;
    out.reserve(w);
    const NetId not_sign_a = b.inv(sign_a);
    for (std::size_t i = 0; i < w; ++i) {
        const NetId sat_bit = (i == w - 1) ? sign_a : not_sign_a;
        out.push_back(b.mux2(sum[i], sat_bit, overflow));
    }
    return out;
}

NetId parity_tree(NetlistBuilder& b, const Bus& x)
{
    HDPM_REQUIRE(!x.empty(), "parity_tree: empty bus");
    Bus level = x;
    while (level.size() > 1) {
        Bus next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(b.xor2(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        level = std::move(next);
    }
    return level.front();
}

void wallace_reduce(NetlistBuilder& b, Columns& columns)
{
    const std::size_t width = columns.size();
    for (;;) {
        std::size_t max_height = 0;
        for (const auto& col : columns) {
            max_height = std::max(max_height, col.size());
        }
        if (max_height <= 2) {
            return;
        }
        Columns next(width);
        for (std::size_t pos = 0; pos < width; ++pos) {
            const auto& col = columns[pos];
            std::size_t i = 0;
            while (col.size() - i >= 3) {
                const auto fa = b.full_adder(col[i], col[i + 1], col[i + 2]);
                next[pos].push_back(fa.sum);
                if (pos + 1 < width) {
                    next[pos + 1].push_back(fa.carry); // beyond width: mod 2^width
                }
                i += 3;
            }
            if (col.size() - i == 2) {
                const auto ha = b.half_adder(col[i], col[i + 1]);
                next[pos].push_back(ha.sum);
                if (pos + 1 < width) {
                    next[pos + 1].push_back(ha.carry);
                }
                i += 2;
            }
            if (col.size() - i == 1) {
                next[pos].push_back(col[i]);
            }
        }
        columns = std::move(next);
    }
}

Bus carry_propagate_sum(NetlistBuilder& b, const Columns& columns, std::size_t width)
{
    Bus out;
    out.reserve(width);
    NetId carry = kInvalidId;
    for (std::size_t pos = 0; pos < width; ++pos) {
        Bus bits = pos < columns.size() ? Bus{columns[pos]} : Bus{};
        HDPM_REQUIRE(bits.size() <= 2, "column ", pos, " not reduced (", bits.size(),
                     " bits)");
        if (carry != kInvalidId) {
            bits.push_back(carry);
        }
        switch (bits.size()) {
        case 0:
            out.push_back(b.const0());
            carry = kInvalidId;
            break;
        case 1:
            out.push_back(bits[0]);
            carry = kInvalidId;
            break;
        case 2: {
            const auto ha = b.half_adder(bits[0], bits[1]);
            out.push_back(ha.sum);
            carry = ha.carry;
            break;
        }
        default: {
            const auto fa = b.full_adder(bits[0], bits[1], bits[2]);
            out.push_back(fa.sum);
            carry = fa.carry;
            break;
        }
        }
    }
    return out;
}

Bus csa_multiply(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && !bb.empty(), "csa_multiply: empty operand");
    const std::size_t wa = a.size();
    const std::size_t wb = bb.size();
    const std::size_t width = wa + wb;

    auto pp = [&](std::size_t r, std::size_t j) { return b.and2(a[r], bb[j]); };

    // Row 0 seeds the running carry-save sum.
    std::vector<NetId> sum(width, kInvalidId);
    std::vector<NetId> carry(width, kInvalidId);
    for (std::size_t j = 0; j < wb; ++j) {
        sum[j] = pp(0, j);
    }

    // Accumulate each further row through a carry-save adder row.
    for (std::size_t r = 1; r < wa; ++r) {
        std::vector<NetId> row(width, kInvalidId);
        for (std::size_t j = 0; j < wb; ++j) {
            row[r + j] = pp(r, j);
        }
        std::vector<NetId> new_sum(width, kInvalidId);
        std::vector<NetId> new_carry(width, kInvalidId);
        for (std::size_t pos = 0; pos < width; ++pos) {
            Bus bits;
            for (const NetId n : {sum[pos], carry[pos], row[pos]}) {
                if (n != kInvalidId) {
                    bits.push_back(n);
                }
            }
            switch (bits.size()) {
            case 0:
                break;
            case 1:
                new_sum[pos] = bits[0];
                break;
            case 2: {
                const auto ha = b.half_adder(bits[0], bits[1]);
                new_sum[pos] = ha.sum;
                if (pos + 1 < width) {
                    new_carry[pos + 1] = ha.carry;
                }
                break;
            }
            default: {
                const auto fa = b.full_adder(bits[0], bits[1], bits[2]);
                new_sum[pos] = fa.sum;
                if (pos + 1 < width) {
                    new_carry[pos + 1] = fa.carry;
                }
                break;
            }
            }
        }
        sum = std::move(new_sum);
        carry = std::move(new_carry);
    }

    // Final carry-propagate addition of the sum and carry vectors.
    Columns columns(width);
    for (std::size_t pos = 0; pos < width; ++pos) {
        if (sum[pos] != kInvalidId) {
            columns[pos].push_back(sum[pos]);
        }
        if (carry[pos] != kInvalidId) {
            columns[pos].push_back(carry[pos]);
        }
    }
    return carry_propagate_sum(b, columns, width);
}

Bus booth_wallace_multiply(NetlistBuilder& b, const Bus& a, const Bus& bb)
{
    HDPM_REQUIRE(!a.empty() && !bb.empty(), "booth_wallace_multiply: empty operand");
    const int wa = static_cast<int>(a.size());
    const int wb = static_cast<int>(bb.size());
    const int width = wa + wb;

    // Sign-extended operand accessors (two's complement).
    auto aext = [&](int j) -> NetId {
        if (j < 0) {
            return b.const0();
        }
        return a[static_cast<std::size_t>(std::min(j, wa - 1))];
    };
    auto bext = [&](int j) -> NetId {
        if (j < 0) {
            return b.const0();
        }
        return bb[static_cast<std::size_t>(std::min(j, wb - 1))];
    };

    const int num_digits = (wb + 1) / 2;
    Columns columns(static_cast<std::size_t>(width));

    for (int k = 0; k < num_digits; ++k) {
        const NetId b_hi = bext(2 * k + 1);
        const NetId b_mid = bext(2 * k);
        const NetId b_lo = bext(2 * k - 1);

        // Radix-4 Booth digit d = -2·b_hi + b_mid + b_lo ∈ {-2,-1,0,1,2}.
        const NetId one = b.xor2(b_mid, b_lo);              // |d| = 1
        const NetId two = b.and2(b.xor2(b_hi, b_mid), b.inv(one)); // |d| = 2
        const NetId neg = b.and2(b_hi, b.inv(b.and2(b_mid, b_lo))); // d < 0

        // Partial product row: (±1·A or ±2·A) << 2k, one's complemented for
        // negative digits; the +1 correction enters the matrix at column 2k.
        for (int pos = 2 * k; pos < width; ++pos) {
            const int j = pos - 2 * k;
            const NetId pick1 = b.and2(aext(j), one);
            const NetId pick2 = b.and2(aext(j - 1), two);
            const NetId raw = b.or2(pick1, pick2);
            columns[static_cast<std::size_t>(pos)].push_back(b.xor2(raw, neg));
        }
        columns[static_cast<std::size_t>(2 * k)].push_back(neg);
    }

    wallace_reduce(b, columns);

    // Final fast (carry-lookahead) addition of the two remaining rows.
    Bus row_a;
    Bus row_b;
    row_a.reserve(static_cast<std::size_t>(width));
    row_b.reserve(static_cast<std::size_t>(width));
    for (std::size_t pos = 0; pos < static_cast<std::size_t>(width); ++pos) {
        const auto& col = columns[pos];
        row_a.push_back(!col.empty() ? col[0] : b.const0());
        row_b.push_back(col.size() > 1 ? col[1] : b.const0());
    }
    Bus sum = cla_add(b, row_a, row_b);
    sum.resize(static_cast<std::size_t>(width)); // product is mod 2^width
    return sum;
}

} // namespace hdpm::dp
