#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "streams/packed_trace.hpp"
#include "streams/trace_file.hpp"

namespace hdpm::serve {

/// Registry of the traces a server currently holds, keyed by the trace id
/// clients reference in Estimate requests. Two ingestion paths:
///
///  - register_trace: an owning PackedTrace (wire-transferred samples,
///    paid for once at registration);
///  - open_file: an mmap'd trace file — the store keeps the MappedTrace
///    alive next to its zero-copy view, so repeated queries against a
///    million-sample recording never copy the words.
///
/// Entries are shared_ptr'd: a request holds its trace alive for the
/// duration of an estimate even if a concurrent CloseTrace drops it from
/// the registry, so eviction can never invalidate an in-flight kernel.
/// Thread-safe.
class TraceStore {
public:
    /// Adopt @p trace; returns its id (the PackedTrace identity, which the
    /// histogram cache also keys on).
    std::uint64_t register_trace(streams::PackedTrace trace);

    /// Map @p path and register the view; returns the new trace id.
    /// Throws FaultError{IoError/ModelFileCorrupt} as MappedTrace does.
    std::uint64_t open_file(const std::filesystem::path& path);

    /// The trace for @p id, or nullptr if unknown/closed.
    [[nodiscard]] std::shared_ptr<const streams::PackedTrace> get(
        std::uint64_t id) const;

    /// Drop @p id; true if it was present.
    bool close(std::uint64_t id);

    [[nodiscard]] std::size_t count() const;

    /// Total payload bytes held (owned words + mapped file bytes).
    [[nodiscard]] std::uint64_t bytes() const;

    /// Traces ever registered (monotonic counter, for stats).
    [[nodiscard]] std::uint64_t registered() const;

private:
    struct Entry {
        std::shared_ptr<const streams::PackedTrace> trace;
        std::shared_ptr<streams::MappedTrace> mapping; ///< null for owned
        std::uint64_t bytes = 0;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, Entry> traces_;
    std::uint64_t bytes_ = 0;
    std::uint64_t registered_ = 0;
};

} // namespace hdpm::serve
