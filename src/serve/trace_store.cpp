#include "serve/trace_store.hpp"

namespace hdpm::serve {

std::uint64_t TraceStore::register_trace(streams::PackedTrace trace)
{
    Entry entry;
    entry.bytes = trace.words().size() * sizeof(std::uint64_t);
    auto shared = std::make_shared<const streams::PackedTrace>(std::move(trace));
    const std::uint64_t id = shared->id();
    entry.trace = std::move(shared);

    const std::lock_guard<std::mutex> lock{mutex_};
    bytes_ += entry.bytes;
    ++registered_;
    traces_[id] = std::move(entry);
    return id;
}

std::uint64_t TraceStore::open_file(const std::filesystem::path& path)
{
    auto mapping = std::make_shared<streams::MappedTrace>(path);
    Entry entry;
    entry.bytes = mapping->mapped_bytes();
    // The view is copied into the shared entry; it stays valid because the
    // mapping rides along in the same entry.
    entry.trace = std::shared_ptr<const streams::PackedTrace>(
        mapping, &mapping->trace());
    entry.mapping = mapping;
    const std::uint64_t id = entry.trace->id();

    const std::lock_guard<std::mutex> lock{mutex_};
    bytes_ += entry.bytes;
    ++registered_;
    traces_[id] = std::move(entry);
    return id;
}

std::shared_ptr<const streams::PackedTrace> TraceStore::get(std::uint64_t id) const
{
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = traces_.find(id);
    return it == traces_.end() ? nullptr : it->second.trace;
}

bool TraceStore::close(std::uint64_t id)
{
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = traces_.find(id);
    if (it == traces_.end()) {
        return false;
    }
    bytes_ -= it->second.bytes;
    traces_.erase(it);
    return true;
}

std::size_t TraceStore::count() const
{
    const std::lock_guard<std::mutex> lock{mutex_};
    return traces_.size();
}

std::uint64_t TraceStore::bytes() const
{
    const std::lock_guard<std::mutex> lock{mutex_};
    return bytes_;
}

std::uint64_t TraceStore::registered() const
{
    const std::lock_guard<std::mutex> lock{mutex_};
    return registered_;
}

} // namespace hdpm::serve
