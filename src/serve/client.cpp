#include "serve/client.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace hdpm::serve {

namespace {

[[noreturn]] void io_fail(const std::string& what)
{
    util::FaultContext context;
    context.component = "serve::ServeClient";
    context.detail = what + ": " + std::strerror(errno);
    throw util::FaultError{util::FaultKind::IoError, std::move(context)};
}

void apply_timeout(int fd, double seconds)
{
    if (seconds <= 0.0) {
        return;
    }
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// connect() bounded by a deadline: the socket goes non-blocking for the
/// connect itself, poll() waits for writability, SO_ERROR yields the real
/// outcome, and blocking mode is restored before returning. A plain
/// blocking connect can hang for minutes (kernel SYN retries) against a
/// dead peer; a serving client needs its failure within its own deadline.
/// seconds <= 0 degenerates to the blocking call. Closes @p fd and throws
/// on failure.
void connect_or_fail(int fd, const sockaddr* addr, socklen_t len,
                     const std::string& where, double seconds)
{
    if (seconds <= 0.0) {
        if (::connect(fd, addr, len) != 0) {
            ::close(fd);
            io_fail("connect " + where);
        }
        return;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, addr, len) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            ::close(fd);
            io_fail("connect " + where);
        }
        pollfd pfd{fd, POLLOUT, 0};
        const int timeout_ms =
            static_cast<int>(std::min(seconds * 1000.0, 2.0e9 /* < INT_MAX */));
        int ready = 0;
        do {
            ready = ::poll(&pfd, 1, timeout_ms);
        } while (ready < 0 && errno == EINTR);
        if (ready == 0) {
            ::close(fd);
            errno = ETIMEDOUT;
            io_fail("connect " + where);
        }
        if (ready < 0) {
            ::close(fd);
            io_fail("poll(connect " + where + ")");
        }
        int soerr = 0;
        socklen_t soerr_len = sizeof(soerr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len);
        if (soerr != 0) {
            ::close(fd);
            errno = soerr;
            io_fail("connect " + where);
        }
    }
    ::fcntl(fd, F_SETFL, flags);
}

/// Run @p attempt_connect under @p policy, sleeping the jittered backoff
/// between tries; throws FaultError{RetriesExhausted} when the budget is
/// spent, with the attempt count and last failure in the detail.
template <typename Fn>
ServeClient retry_connect(const RetryPolicy& policy, const std::string& where,
                          Fn&& attempt_connect)
{
    const unsigned attempts = std::max(1U, policy.max_attempts);
    double waited_ms = 0.0;
    unsigned made = 0;
    std::string last_error = "no attempt made";
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        try {
            ++made;
            return attempt_connect();
        } catch (const util::FaultError& error) {
            if (error.kind() != util::FaultKind::IoError) {
                throw; // not a connectivity failure — don't mask it
            }
            last_error = error.context().detail;
        }
        if (attempt == attempts) {
            break;
        }
        const double delay = policy.delay_ms(attempt);
        if (waited_ms + delay > policy.budget_ms) {
            break; // time budget spent before the attempt budget
        }
        waited_ms += delay;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>{delay});
    }
    util::FaultContext context;
    context.component = "serve::ServeClient";
    context.detail = "connect " + where + " failed after " + std::to_string(made) +
                     " attempt(s): " + last_error;
    throw util::FaultError{util::FaultKind::RetriesExhausted, std::move(context)};
}

} // namespace

double RetryPolicy::delay_ms(unsigned attempt) const noexcept
{
    const double uncapped =
        base_delay_ms * std::pow(2.0, static_cast<double>(attempt - 1));
    const double capped = std::min(uncapped, max_delay_ms);
    // splitmix64 over (seed, attempt): deterministic per-client jitter.
    std::uint64_t z = jitter_seed + 0x9e3779b97f4a7c15ULL * (attempt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;
    return capped * (0.5 + 0.5 * unit);
}

ServeClient ServeClient::connect_unix(const std::string& path, double timeout_seconds)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        io_fail("socket(AF_UNIX)");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    HDPM_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "unix socket path too long: ", path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connect_or_fail(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr), path,
                    timeout_seconds);
    apply_timeout(fd, timeout_seconds);
    return ServeClient{fd};
}

ServeClient ServeClient::connect_tcp(std::uint16_t port, double timeout_seconds)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        io_fail("socket(AF_INET)");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connect_or_fail(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                    "127.0.0.1:" + std::to_string(port), timeout_seconds);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    apply_timeout(fd, timeout_seconds);
    return ServeClient{fd};
}

ServeClient ServeClient::connect_unix_retry(const std::string& path,
                                            const RetryPolicy& policy,
                                            double timeout_seconds)
{
    return retry_connect(policy, path,
                         [&] { return connect_unix(path, timeout_seconds); });
}

ServeClient ServeClient::connect_tcp_retry(std::uint16_t port,
                                           const RetryPolicy& policy,
                                           double timeout_seconds)
{
    return retry_connect(policy, "127.0.0.1:" + std::to_string(port),
                         [&] { return connect_tcp(port, timeout_seconds); });
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), out_(std::move(other.out_))
{
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0) {
            ::close(fd_);
        }
        fd_ = std::exchange(other.fd_, -1);
        out_ = std::move(other.out_);
    }
    return *this;
}

std::vector<std::uint8_t> ServeClient::read_ok_payload()
{
    std::optional<std::vector<std::uint8_t>> frame = read_frame(fd_);
    if (!frame.has_value()) {
        io_fail("server closed the connection");
    }
    WireReader reader{*frame};
    const std::uint8_t status = reader.u8();
    if (status != static_cast<std::uint8_t>(StatusCode::Ok)) {
        throw ServerError{status, reader.str()};
    }
    // Return the payload after the status byte.
    return std::vector<std::uint8_t>(frame->begin() + 1, frame->end());
}

std::vector<std::uint8_t> ServeClient::round_trip(
    const std::vector<std::uint8_t>& payload)
{
    try {
        write_frame(fd_, payload);
    } catch (const util::FaultError&) {
        // The server may have shed or faulted this connection and closed
        // it before our write landed (EPIPE) — its parting status frame
        // is still sitting in the receive buffer. Surface that structured
        // error instead of the bare send failure when one is pending.
        try {
            (void)read_ok_payload();
        } catch (const ServerError&) {
            throw;
        } catch (...) {
            // fall through to rethrow the send failure
        }
        throw;
    }
    return read_ok_payload();
}

void ServeClient::ping()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::Ping));
    (void)round_trip(writer.bytes());
}

std::uint64_t ServeClient::register_trace(const streams::PackedTrace& trace)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::RegisterTrace));
    writer.u32(static_cast<std::uint32_t>(trace.operand_widths().size()));
    for (const int width : trace.operand_widths()) {
        writer.i32(width);
    }
    writer.u64(trace.size());
    writer.words(trace.words());
    const std::vector<std::uint8_t> payload = round_trip(writer.bytes());
    WireReader reader{payload};
    const std::uint64_t id = reader.u64();
    reader.expect_end();
    return id;
}

std::uint64_t ServeClient::open_trace_file(const std::string& path)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::OpenTraceFile));
    writer.str(path);
    const std::vector<std::uint8_t> payload = round_trip(writer.bytes());
    WireReader reader{payload};
    const std::uint64_t id = reader.u64();
    reader.expect_end();
    return id;
}

EstimateReply ServeClient::estimate(const EstimateRequest& request)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::Estimate));
    encode_estimate_request(writer, request);
    const std::vector<std::uint8_t> payload = round_trip(writer.bytes());
    WireReader reader{payload};
    EstimateReply reply = decode_estimate_reply(reader);
    reader.expect_end();
    return reply;
}

ServerStatsReply ServeClient::stats()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::Stats));
    const std::vector<std::uint8_t> payload = round_trip(writer.bytes());
    WireReader reader{payload};
    ServerStatsReply reply = decode_server_stats(reader);
    reader.expect_end();
    return reply;
}

bool ServeClient::close_trace(std::uint64_t trace_id)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::CloseTrace));
    writer.u64(trace_id);
    const std::vector<std::uint8_t> payload = round_trip(writer.bytes());
    WireReader reader{payload};
    const bool found = reader.u8() != 0;
    reader.expect_end();
    return found;
}

void ServeClient::enqueue_estimate(const EstimateRequest& request)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::Estimate));
    encode_estimate_request(writer, request);
    append_frame(out_, writer.bytes());
}

void ServeClient::enqueue_ping()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MessageType::Ping));
    append_frame(out_, writer.bytes());
}

void ServeClient::flush()
{
    if (!out_.empty()) {
        send_all(fd_, out_);
    }
}

EstimateReply ServeClient::read_estimate_reply()
{
    const std::vector<std::uint8_t> payload = read_ok_payload();
    WireReader reader{payload};
    EstimateReply reply = decode_estimate_reply(reader);
    reader.expect_end();
    return reply;
}

void ServeClient::read_ping_reply()
{
    (void)read_ok_payload();
}

} // namespace hdpm::serve
