#pragma once

#include <atomic>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/model_library.hpp"

namespace hdpm::serve {

/// A model the cache serves: either family, immutable once loaded.
using ServedModel = std::variant<core::HdModel, core::EnhancedHdModel>;

/// Sharded, capacity-bounded front over a core::ModelLibrary.
///
/// The library already resolves cold misses with single-flight
/// characterize-on-miss semantics, but it parses a model file on *every*
/// lookup; this cache keeps the deserialized models hot in memory. It is
/// sharded by key hash so a cold lookup — which may run a multi-second
/// characterization under the library's flight — only ever holds its own
/// shard's lock, and even that only for the map insert: concurrent
/// requests for *other* models on the same shard proceed, and concurrent
/// requests for the *same* model block on the leader's shared_future
/// rather than re-characterizing (single-flight at this layer too).
///
/// Eviction is LRU per shard with a per-shard entry capacity; in-flight
/// entries are never evicted. A leader failure propagates to every waiter
/// of that flight and the key is released for retry.
class ShardedModelCache {
public:
    ShardedModelCache(const core::ModelLibrary& library,
                      core::CharacterizationOptions char_options,
                      std::size_t shards = 8, std::size_t capacity_per_shard = 64);

    /// The model for (type, widths, kind, corner), loading or
    /// characterizing on miss. @p zero_clusters selects the enhanced
    /// variant when @p enhanced is true. @p corner, when set, overrides the
    /// cache's configured characterization corner for this entry; the
    /// corner is part of the cache key (via ModelLibrary::model_key), so
    /// two corners of the same module can never alias one cached model.
    [[nodiscard]] std::shared_ptr<const ServedModel> get(
        dp::ModuleType type, std::span<const int> widths, bool enhanced,
        int zero_clusters,
        const std::optional<gate::Corner>& corner = std::nullopt);

    [[nodiscard]] std::uint64_t hits() const noexcept
    {
        return hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t misses() const noexcept
    {
        return misses_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t evictions() const noexcept
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

    /// Shard index a key hashes to (exposed for tests).
    [[nodiscard]] std::size_t shard_for(const std::string& key) const noexcept;

private:
    struct Shard {
        std::mutex mutex;
        std::unordered_map<std::string,
                           std::shared_future<std::shared_ptr<const ServedModel>>>
            entries;
        std::list<std::string> lru; ///< most recently used first
    };

    const core::ModelLibrary* library_;
    core::CharacterizationOptions char_options_;
    std::size_t capacity_per_shard_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace hdpm::serve
