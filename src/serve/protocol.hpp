#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gatelib/techlib.hpp"
#include "util/fault.hpp"

namespace hdpm::serve {

/// hdpowerd wire protocol: length-prefixed binary frames over a stream
/// socket (TCP or Unix domain). Every frame is
///
///   uint32 length (little-endian, payload bytes) | payload
///
/// and every payload starts with a one-byte message type (requests) or
/// status code (responses). Integers are little-endian; doubles are IEEE
/// 754 bit patterns transported as uint64. Requests on one connection are
/// answered in order, so clients may pipeline arbitrarily many frames
/// before reading responses — the serving engine and the load harness both
/// rely on that to amortize syscalls.
///
/// The maximum frame length is a server option (kDefaultMaxFrame unless
/// overridden); an oversized prefix is a protocol error, which bounds the
/// memory a malicious or corrupted client can make the daemon allocate.

inline constexpr std::uint32_t kDefaultMaxFrame = 256U << 20;

/// Request message types.
enum class MessageType : std::uint8_t {
    Ping = 1,          ///< no body; response: empty Ok
    RegisterTrace = 2, ///< inline packed samples -> trace id
    OpenTraceFile = 3, ///< server-side path -> mmap'd trace id
    Estimate = 4,      ///< (module, widths, kind) x trace id -> estimate
    Stats = 5,         ///< server-wide counters snapshot
    CloseTrace = 6,    ///< drop a registered trace id
};

/// Response status codes. Ok is 0; serving-layer rejections have small
/// codes; structured runtime faults are transported as
/// kFaultBase + FaultKind so the client can rethrow the taxonomy kind.
enum class StatusCode : std::uint8_t {
    Ok = 0,
    Overloaded = 1,   ///< bounded queue full — shed, retry later
    BadRequest = 2,   ///< malformed frame or unknown message type
    UnknownTrace = 3, ///< trace id not registered (or already closed)
    UnknownModule = 4,///< module id/width outside the served families
    InternalError = 5,///< unexpected non-taxonomy exception
};

inline constexpr std::uint8_t kFaultBase = 32;

/// Wire code for a structured fault kind.
[[nodiscard]] constexpr std::uint8_t fault_status(util::FaultKind kind) noexcept
{
    return static_cast<std::uint8_t>(kFaultBase + static_cast<std::uint8_t>(kind));
}

/// Human-readable name of a wire status byte (including fault codes).
[[nodiscard]] std::string status_name(std::uint8_t status);

/// Which model family an Estimate request evaluates.
enum class ModelKind : std::uint8_t {
    Basic = 0,    ///< HdModel (characterize-on-miss via the model library)
    Enhanced = 1, ///< EnhancedHdModel with `zero_clusters` clusters
};

/// Body of an Estimate request. The corner block is trailing-optional on
/// the wire: a frame may simply end after the widths (the encoding every
/// pre-corner client emits), in which case the server evaluates at its
/// configured default corner. When present it is has_corner(u8=1) +
/// vdd(f64) + temp(f64) + load_class(u8).
struct EstimateRequest {
    std::uint64_t trace_id = 0;
    std::uint8_t module_type = 0; ///< dp::ModuleType underlying value
    std::vector<int> widths;
    ModelKind kind = ModelKind::Basic;
    int zero_clusters = 0;
    std::optional<gate::Corner> corner; ///< operating corner (absent = default)
};

/// Body of an Ok Estimate response: the estimate plus a slice of the
/// serving-side EstimateRunStats, so every reply documents whether its
/// histogram was freshly built, coalesced onto a concurrent build of the
/// same trace, or served from the shared cache.
enum class HistogramSource : std::uint8_t {
    Cached = 0,    ///< shared-cache hit
    Built = 1,     ///< this request built the histogram
    Coalesced = 2, ///< waited on a concurrent request's build
    Bypassed = 3,  ///< model kind does not use histograms
};

struct EstimateReply {
    double estimate_fc = 0.0;      ///< average charge per cycle [fC]
    std::uint64_t cycles = 0;      ///< transitions evaluated
    HistogramSource source = HistogramSource::Cached;
    /// Cumulative server counters at reply time (monotonic, steady-clock
    /// timed on the server): (model, trace) evaluations served, histogram
    /// classification passes actually run, and shared-cache hits. Under
    /// batched same-trace load histograms_built stays far below models.
    std::uint64_t server_models = 0;
    std::uint64_t server_histograms_built = 0;
    std::uint64_t server_cache_hits = 0;
};

/// Body of a Stats response (all counters cumulative since server start).
struct ServerStatsReply {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_shed = 0;
    std::uint64_t connections_idle_closed = 0;
    std::uint64_t requests = 0;
    std::uint64_t estimates = 0;
    std::uint64_t errors = 0;
    std::uint64_t models_served = 0;
    std::uint64_t histograms_built = 0;
    std::uint64_t histogram_cache_hits = 0;
    std::uint64_t histogram_coalesced = 0;
    std::uint64_t model_cache_hits = 0;
    std::uint64_t model_cache_misses = 0;
    std::uint64_t traces_registered = 0;
    std::uint64_t trace_bytes = 0;
    double serve_seconds = 0.0; ///< steady-clock time inside estimate calls
};

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v);
    void str(std::string_view s); ///< u32 length + raw bytes
    void words(std::span<const std::uint64_t> w); ///< raw, no length prefix

    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept
    {
        return bytes_;
    }
    [[nodiscard]] std::vector<std::uint8_t> take() noexcept
    {
        return std::move(bytes_);
    }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian payload reader. Any out-of-bounds read
/// throws util::FaultError{ProtocolError} — a truncated or garbled frame
/// can never read past its buffer or be silently misparsed.
class WireReader {
public:
    explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    [[nodiscard]] double f64();
    [[nodiscard]] std::string str();
    /// The next @p count uint64 words, copied out of the payload.
    [[nodiscard]] std::vector<std::uint64_t> words(std::size_t count);

    [[nodiscard]] std::size_t remaining() const noexcept
    {
        return bytes_.size() - offset_;
    }
    /// Throws ProtocolError unless the whole payload was consumed.
    void expect_end() const;

private:
    void need(std::size_t n) const;

    std::span<const std::uint8_t> bytes_;
    std::size_t offset_ = 0;
};

// ---------------------------------------------------------------------------
// Frame I/O on blocking sockets
// ---------------------------------------------------------------------------

/// Read one length-prefixed frame from @p fd. Returns nullopt on clean EOF
/// at a frame boundary; throws FaultError{ProtocolError} for a torn frame
/// or an oversized length, FaultError{IoError} for socket errors.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_frame(
    int fd, std::uint32_t max_frame = kDefaultMaxFrame);

/// Write one frame (length prefix + payload) to @p fd, handling partial
/// writes. Throws FaultError{IoError} on failure.
void write_frame(int fd, std::span<const std::uint8_t> payload);

/// Append a length-prefixed frame to a user-space output buffer (the
/// batched-write path: many responses, one send).
void append_frame(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> payload);

/// Send the whole buffer (MSG_NOSIGNAL, partial-write safe) and clear it.
void send_all(int fd, std::vector<std::uint8_t>& buffer);

// ---------------------------------------------------------------------------
// Message encoding helpers shared by server and client
// ---------------------------------------------------------------------------

void encode_estimate_request(WireWriter& w, const EstimateRequest& request);
[[nodiscard]] EstimateRequest decode_estimate_request(WireReader& r);

void encode_estimate_reply(WireWriter& w, const EstimateReply& reply);
[[nodiscard]] EstimateReply decode_estimate_reply(WireReader& r);

void encode_server_stats(WireWriter& w, const ServerStatsReply& stats);
[[nodiscard]] ServerStatsReply decode_server_stats(WireReader& r);

/// An error response: status byte + diagnostic string.
[[nodiscard]] std::vector<std::uint8_t> encode_error(std::uint8_t status,
                                                     std::string_view message);

} // namespace hdpm::serve
