#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "dpgen/module.hpp"
#include "util/error.hpp"

namespace hdpm::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void io_fail(const std::string& what)
{
    util::FaultContext context;
    context.component = "serve::Server";
    context.detail = what + ": " + std::strerror(errno);
    throw util::FaultError{util::FaultKind::IoError, std::move(context)};
}

void close_quietly(int fd) noexcept
{
    if (fd >= 0) {
        ::close(fd);
    }
}

/// Flush threshold for the batched response buffer: large enough to
/// amortize send syscalls under deep pipelining, small enough to bound the
/// per-connection memory a slow reader can pin.
constexpr std::size_t kFlushBytes = std::size_t{1} << 20;

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), library_(options_.models_dir),
      models_(std::make_unique<ShardedModelCache>(library_, options_.char_options,
                                                  options_.model_shards,
                                                  options_.model_cache_per_shard)),
      broker_(options_.histogram_cache_entries, options_.histogram_cache_bytes)
{
}

Server::~Server()
{
    if (running_.load()) {
        stop();
    }
}

void Server::start()
{
    HDPM_REQUIRE(!running_.load(), "server already started");
    HDPM_REQUIRE(!options_.unix_path.empty() || options_.tcp,
                 "no listen endpoint configured (unix_path or tcp)");

    if (!options_.unix_path.empty()) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            io_fail("socket(AF_UNIX)");
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        HDPM_REQUIRE(options_.unix_path.size() < sizeof(addr.sun_path),
                     "unix socket path too long: ", options_.unix_path);
        std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(options_.unix_path.c_str()); // stale socket from a killed run
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
            ::listen(fd, SOMAXCONN) != 0) {
            close_quietly(fd);
            io_fail("bind/listen " + options_.unix_path);
        }
        listeners_.push_back({fd, "unix:" + options_.unix_path});
    }

    if (options_.tcp) {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            io_fail("socket(AF_INET)");
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(options_.tcp_port);
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
            ::listen(fd, SOMAXCONN) != 0) {
            close_quietly(fd);
            io_fail("bind/listen 127.0.0.1:" + std::to_string(options_.tcp_port));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
            close_quietly(fd);
            io_fail("getsockname");
        }
        bound_tcp_port_ = ntohs(bound.sin_port);
        listeners_.push_back({fd, "tcp:127.0.0.1:" + std::to_string(bound_tcp_port_)});
    }

    if (::pipe2(wake_pipe_, O_CLOEXEC) != 0) {
        close_listeners();
        io_fail("pipe2");
    }

    const unsigned workers = options_.workers != 0
                                 ? options_.workers
                                 : std::max(1U, std::thread::hardware_concurrency());
    running_.store(true);
    engines_.reserve(workers);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        engines_.push_back(std::make_unique<core::EstimationEngine>(options_.kernel));
    }
    for (unsigned i = 0; i < workers; ++i) {
        core::EstimationEngine* engine = engines_[i].get();
        workers_.emplace_back([this, engine] { worker_loop(*engine); });
    }
    acceptor_ = std::thread([this] { acceptor_loop(); });
}

void Server::close_listeners()
{
    for (Listener& listener : listeners_) {
        close_quietly(listener.fd);
        listener.fd = -1;
        // Remove the filesystem entry so a restart can re-bind and so a
        // client connecting after shutdown gets ECONNREFUSED/ENOENT
        // instead of a hang on a dead socket.
        if (listener.description.starts_with("unix:")) {
            ::unlink(listener.description.c_str() + 5);
        }
    }
}

void Server::acceptor_loop()
{
    std::vector<pollfd> fds;
    fds.reserve(listeners_.size() + 1);
    for (const Listener& listener : listeners_) {
        fds.push_back({listener.fd, POLLIN, 0});
    }
    fds.push_back({wake_pipe_[0], POLLIN, 0});

    while (true) {
        const int ready = ::poll(fds.data(), fds.size(), -1);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if ((fds.back().revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            break; // drain/stop woke us
        }
        for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
            if ((fds[i].revents & POLLIN) == 0) {
                continue;
            }
            const int conn = ::accept4(fds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (conn < 0) {
                continue; // transient (ECONNABORTED, EMFILE, ...); keep serving
            }
            counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
            bool shed = false;
            {
                // Overload test: shed unless a worker is free to take the
                // connection now or the bounded waiting queue has room.
                // accept_queue == 0 therefore means "never queue": with
                // every worker busy the connection is refused immediately.
                const std::lock_guard<std::mutex> lock{queue_mutex_};
                if (closed_ || (idle_workers_ == 0 &&
                                pending_.size() >= options_.accept_queue)) {
                    shed = true;
                } else {
                    pending_.push_back(conn);
                }
            }
            if (shed) {
                shed_connection(conn);
            } else {
                queue_cv_.notify_one();
            }
        }
    }
}

void Server::shed_connection(int fd)
{
    counters_.connections_shed.fetch_add(1, std::memory_order_relaxed);
    try {
        write_frame(fd, encode_error(static_cast<std::uint8_t>(StatusCode::Overloaded),
                                     "server overloaded: bounded accept queue is "
                                     "full, back off and retry"));
    } catch (...) {
        // The client vanished mid-shed; the close below is all that's left.
    }
    close_quietly(fd);
}

void Server::worker_loop(core::EstimationEngine& engine)
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock{queue_mutex_};
            ++idle_workers_;
            queue_cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
            --idle_workers_;
            if (pending_.empty() || (closed_ && abandon_queue_)) {
                return; // closed_ && empty, or stop() abandoning the queue
            }
            fd = pending_.front();
            pending_.pop_front();
        }
        {
            const std::lock_guard<std::mutex> lock{active_mutex_};
            active_fds_.insert(fd);
            if (force_cut_.load()) {
                ::shutdown(fd, SHUT_RDWR); // drain deadline already passed
            } else if (draining_.load()) {
                ::shutdown(fd, SHUT_RD); // joined after the drain cut — unblock
            }
        }
        try {
            serve_connection(fd, engine);
        } catch (...) {
            // Torn frame or socket error: the error response (if any) was
            // already queued by handle_request; nothing else to salvage.
        }
        {
            const std::lock_guard<std::mutex> lock{active_mutex_};
            active_fds_.erase(fd);
        }
        close_quietly(fd);
    }
}

void Server::serve_connection(int fd, core::EstimationEngine& engine)
{
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t parsed = 0; // bytes of `in` already consumed
    std::array<std::uint8_t, 64 * 1024> chunk;
    Clock::time_point last_frame = Clock::now();

    while (true) {
        if (options_.idle_timeout_ms > 0) {
            // Idle deadline, measured since the last complete frame: a
            // slow-loris peer dripping single bytes keeps recv() lively but
            // never completes a request, so waiting for mere readability
            // would pin this worker forever. Wait only for the remaining
            // idle budget, then give the connection back.
            const auto idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                     Clock::now() - last_frame)
                                     .count();
            const long long remaining =
                static_cast<long long>(options_.idle_timeout_ms) - idle_ms;
            if (remaining <= 0) {
                counters_.connections_idle_closed.fetch_add(1,
                                                            std::memory_order_relaxed);
                break;
            }
            pollfd pfd{fd, POLLIN, 0};
            const int ready = ::poll(
                &pfd, 1, static_cast<int>(std::min<long long>(remaining, 1 << 30)));
            if (ready < 0) {
                if (errno == EINTR) {
                    continue;
                }
                break;
            }
            if (ready == 0) {
                counters_.connections_idle_closed.fetch_add(1,
                                                            std::memory_order_relaxed);
                break;
            }
        }
        const ssize_t got = ::recv(fd, chunk.data(), chunk.size(), 0);
        if (got < 0) {
            if (errno == EINTR) {
                continue;
            }
            break; // reset/timeout: nothing further to answer
        }
        if (got == 0) {
            // Clean EOF (client done, or our drain cut the read side).
            // A partial frame left in the buffer is simply abandoned —
            // there is no complete request inside it to answer.
            break;
        }
        in.insert(in.end(), chunk.data(), chunk.data() + got);

        // Handle every complete frame buffered so far, batching the
        // responses into one write. Responses stay in request order, which
        // is what lets clients pipeline blindly.
        bool close_after_flush = false;
        while (in.size() - parsed >= 4) {
            // Little-endian prefix, decoded byte-by-byte exactly like
            // read_frame — correct regardless of host byte order.
            std::uint32_t length = 0;
            for (int b = 3; b >= 0; --b) {
                length = (length << 8) | in[parsed + static_cast<std::size_t>(b)];
            }
            if (length > options_.max_frame) {
                append_frame(out, encode_error(
                                      static_cast<std::uint8_t>(StatusCode::BadRequest),
                                      "frame length " + std::to_string(length) +
                                          " exceeds the server's max_frame"));
                close_after_flush = true; // byte stream is unrecoverable
                break;
            }
            if (in.size() - parsed - 4 < length) {
                break; // frame not complete yet
            }
            counters_.requests.fetch_add(1, std::memory_order_relaxed);
            const std::span<const std::uint8_t> payload{in.data() + parsed + 4, length};
            append_frame(out, handle_request(payload, engine));
            parsed += 4 + std::size_t{length};
            last_frame = Clock::now();
            if (out.size() >= kFlushBytes) {
                send_all(fd, out);
            }
        }
        if (parsed == in.size()) {
            in.clear();
            parsed = 0;
        } else if (parsed > chunk.size()) {
            in.erase(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(parsed));
            parsed = 0;
        }
        if (!out.empty()) {
            send_all(fd, out);
        }
        if (close_after_flush) {
            break;
        }
    }
    if (!out.empty()) {
        try {
            send_all(fd, out);
        } catch (...) {
            // Peer is gone; responses are undeliverable.
        }
    }
}

std::vector<std::uint8_t> Server::handle_request(std::span<const std::uint8_t> payload,
                                                 core::EstimationEngine& engine)
{
    try {
        WireReader reader{payload};
        const auto type = static_cast<MessageType>(reader.u8());
        switch (type) {
        case MessageType::Ping: {
            reader.expect_end();
            WireWriter writer;
            writer.u8(static_cast<std::uint8_t>(StatusCode::Ok));
            return writer.take();
        }
        case MessageType::RegisterTrace: {
            const std::uint32_t operands = reader.u32();
            // Each width occupies 4 payload bytes; bound the count against
            // the bytes actually present before reserving, so a tiny hostile
            // frame can't force a multi-gigabyte transient allocation.
            HDPM_REQUIRE(operands <= reader.remaining() / 4,
                         "operand count ", operands,
                         " exceeds the widths present in the payload");
            std::vector<int> widths;
            widths.reserve(operands);
            for (std::uint32_t i = 0; i < operands; ++i) {
                widths.push_back(reader.i32());
            }
            const std::uint64_t samples = reader.u64();
            const std::size_t word_count = reader.remaining() / 8;
            std::vector<std::uint64_t> words = reader.words(word_count);
            reader.expect_end();
            const std::uint64_t id = traces_.register_trace(
                streams::PackedTrace::from_packed_words(std::move(words), widths,
                                                        samples));
            WireWriter writer;
            writer.u8(static_cast<std::uint8_t>(StatusCode::Ok));
            writer.u64(id);
            return writer.take();
        }
        case MessageType::OpenTraceFile: {
            const std::string path = reader.str();
            reader.expect_end();
            const std::uint64_t id = traces_.open_file(path);
            WireWriter writer;
            writer.u8(static_cast<std::uint8_t>(StatusCode::Ok));
            writer.u64(id);
            return writer.take();
        }
        case MessageType::Estimate:
            return handle_estimate(reader, engine);
        case MessageType::Stats: {
            reader.expect_end();
            WireWriter writer;
            writer.u8(static_cast<std::uint8_t>(StatusCode::Ok));
            encode_server_stats(writer, stats_snapshot());
            return writer.take();
        }
        case MessageType::CloseTrace: {
            const std::uint64_t id = reader.u64();
            reader.expect_end();
            broker_.invalidate(id);
            const bool found = traces_.close(id);
            WireWriter writer;
            writer.u8(static_cast<std::uint8_t>(StatusCode::Ok));
            writer.u8(found ? 1 : 0);
            return writer.take();
        }
        }
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::BadRequest),
                            "unknown message type " +
                                std::to_string(static_cast<unsigned>(type)));
    } catch (const util::FaultError& fault) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(fault_status(fault.kind()), fault.what());
    } catch (const util::PreconditionError& error) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::BadRequest),
                            error.what());
    } catch (const std::exception& error) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::InternalError),
                            error.what());
    }
}

std::vector<std::uint8_t> Server::handle_estimate(WireReader& reader,
                                                  core::EstimationEngine& engine)
{
    const EstimateRequest request = decode_estimate_request(reader);
    reader.expect_end();

    const std::shared_ptr<const streams::PackedTrace> trace =
        traces_.get(request.trace_id);
    if (trace == nullptr) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::UnknownTrace),
                            "trace id " + std::to_string(request.trace_id) +
                                " is not registered (or already closed)");
    }
    if (request.module_type >= dp::all_module_types().size()) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::UnknownModule),
                            "module type " + std::to_string(request.module_type) +
                                " is outside the served families");
    }
    const auto type = static_cast<dp::ModuleType>(request.module_type);

    std::vector<int> widths;
    try {
        widths = dp::expand_operand_widths(type, request.widths);
    } catch (const util::PreconditionError& error) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::UnknownModule),
                            error.what());
    }

    // A wire corner is untrusted input: reject non-physical values here
    // with a diagnostic instead of letting them reach the scaling physics
    // (same bounds parse_corner enforces on the CLI).
    if (request.corner.has_value() &&
        (!std::isfinite(request.corner->vdd_v) || request.corner->vdd_v <= 0.0 ||
         request.corner->vdd_v > 20.0 || !std::isfinite(request.corner->temp_c) ||
         request.corner->temp_c < -100.0 || request.corner->temp_c > 300.0)) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return encode_error(static_cast<std::uint8_t>(StatusCode::BadRequest),
                            "corner outside the supported range "
                            "(vdd in (0, 20] V, temp in [-100, 300] C)");
    }

    const Clock::time_point start = Clock::now();
    const std::shared_ptr<const ServedModel> model =
        models_->get(type, widths, request.kind == ModelKind::Enhanced,
                     request.zero_clusters, request.corner);

    EstimateReply reply;
    BrokerOutcome outcome = BrokerOutcome::Hit;
    if (request.kind == ModelKind::Enhanced) {
        const auto histogram = broker_.hd_class(*trace, engine.options(), &outcome);
        reply.estimate_fc =
            std::get<core::EnhancedHdModel>(*model).estimate_from_histogram(*histogram);
        reply.cycles = histogram->pairs;
    } else {
        const auto histogram = broker_.hd(*trace, engine.options(), &outcome);
        reply.estimate_fc =
            std::get<core::HdModel>(*model).estimate_from_histogram(*histogram);
        reply.cycles = histogram->pairs;
    }
    switch (outcome) {
    case BrokerOutcome::Hit:
        reply.source = HistogramSource::Cached;
        break;
    case BrokerOutcome::Built:
        reply.source = HistogramSource::Built;
        break;
    case BrokerOutcome::Coalesced:
        reply.source = HistogramSource::Coalesced;
        break;
    }

    counters_.estimates.fetch_add(1, std::memory_order_relaxed);
    counters_.serve_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
                .count()),
        std::memory_order_relaxed);

    reply.server_models = counters_.estimates.load(std::memory_order_relaxed);
    reply.server_histograms_built = broker_.built();
    reply.server_cache_hits = broker_.hits();

    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(StatusCode::Ok));
    encode_estimate_reply(writer, reply);
    return writer.take();
}

ServerStatsReply Server::stats_snapshot() const
{
    ServerStatsReply stats;
    stats.connections_accepted = counters_.connections_accepted.load();
    stats.connections_shed = counters_.connections_shed.load();
    stats.connections_idle_closed = counters_.connections_idle_closed.load();
    stats.requests = counters_.requests.load();
    stats.estimates = counters_.estimates.load();
    stats.errors = counters_.errors.load();
    stats.models_served = counters_.estimates.load();
    stats.histograms_built = broker_.built();
    stats.histogram_cache_hits = broker_.hits();
    stats.histogram_coalesced = broker_.coalesced();
    stats.model_cache_hits = models_->hits();
    stats.model_cache_misses = models_->misses();
    stats.traces_registered = traces_.registered();
    stats.trace_bytes = traces_.bytes();
    stats.serve_seconds =
        static_cast<double>(counters_.serve_nanos.load()) * 1e-9;
    return stats;
}

void Server::drain()
{
    if (!running_.exchange(false)) {
        return;
    }
    // 1. Stop the intake: no new connections, acceptor exits.
    {
        const std::lock_guard<std::mutex> lock{queue_mutex_};
        closed_ = true;
    }
    [[maybe_unused]] const ssize_t wrote = ::write(wake_pipe_[1], "x", 1);
    acceptor_.join();
    close_listeners();

    // 2. Cut the read side of every connection being served (and of every
    //    queued one a worker picks up from here on — see worker_loop).
    //    Blocked recv() calls return EOF; workers answer the requests they
    //    have already buffered, flush, and close. Clients see ordered
    //    responses followed by EOF — never a hang, never a silent drop.
    {
        const std::lock_guard<std::mutex> lock{active_mutex_};
        draining_.store(true);
        for (const int fd : active_fds_) {
            ::shutdown(fd, SHUT_RD);
        }
    }
    {
        const std::lock_guard<std::mutex> lock{queue_mutex_};
        for (const int fd : pending_) {
            ::shutdown(fd, SHUT_RD);
        }
    }
    queue_cv_.notify_all();

    // 3. Deadline: SHUT_RD does not wake a worker blocked in send() to a
    //    peer that stopped reading, so a single slow/dead client could
    //    otherwise stall the drain forever. Give in-flight connections
    //    drain_timeout_ms to finish, then cut their write sides too —
    //    blocked sends fail with EPIPE and the workers exit.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
    while (Clock::now() < deadline) {
        bool idle = false;
        {
            const std::scoped_lock lock{queue_mutex_, active_mutex_};
            idle = pending_.empty() && active_fds_.empty();
        }
        if (idle) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
    force_cut_.store(true); // workers fully cut any fd picked up from here on
    {
        const std::scoped_lock lock{queue_mutex_, active_mutex_};
        for (const int fd : active_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
        for (const int fd : pending_) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    join_all();
}

void Server::stop()
{
    if (!running_.exchange(false)) {
        return;
    }
    {
        const std::lock_guard<std::mutex> lock{queue_mutex_};
        closed_ = true;
        abandon_queue_ = true;
    }
    [[maybe_unused]] const ssize_t wrote = ::write(wake_pipe_[1], "x", 1);
    acceptor_.join();
    close_listeners();
    {
        const std::lock_guard<std::mutex> lock{active_mutex_};
        draining_.store(true);
        for (const int fd : active_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    queue_cv_.notify_all();
    join_all();
    // Connections still queued were never served; close them unserved.
    for (const int fd : pending_) {
        close_quietly(fd);
    }
    pending_.clear();
}

void Server::join_all()
{
    for (std::thread& worker : workers_) {
        worker.join();
    }
    workers_.clear();
    engines_.clear();
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
}

} // namespace hdpm::serve
