#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/estimation_engine.hpp"
#include "core/model_library.hpp"
#include "serve/histogram_broker.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/trace_store.hpp"

namespace hdpm::serve {

/// Configuration of an hdpowerd serving process.
struct ServerOptions {
    /// Unix-domain socket path; empty = don't listen on a Unix socket.
    std::string unix_path;
    /// Listen on 127.0.0.1 TCP when true; tcp_port 0 = ephemeral (read the
    /// bound port back with Server::tcp_port()).
    bool tcp = false;
    std::uint16_t tcp_port = 0;

    /// Serving worker threads (each owns an EstimationEngine); 0 = one
    /// per hardware thread.
    unsigned workers = 0;

    /// Accepted connections waiting for a free worker beyond the workers
    /// already serving. A connection arriving with the queue full is shed:
    /// it receives a structured Overloaded response and is closed — the
    /// daemon never queues unboundedly and never drops silently.
    std::size_t accept_queue = 64;

    /// Kernel configuration of the per-worker engines. Defaults to a
    /// single-threaded kernel: parallelism comes from the worker pool, so
    /// the kernels should not oversubscribe the host.
    streams::KernelOptions kernel{.threads = 1};

    /// Shared histogram cache bounds (the request batcher's store).
    std::size_t histogram_cache_entries = 64;
    std::size_t histogram_cache_bytes = std::size_t{256} << 20;

    /// Sharded model cache: shard count and per-shard entry capacity.
    std::size_t model_shards = 8;
    std::size_t model_cache_per_shard = 64;

    /// Directory of the backing core::ModelLibrary.
    std::string models_dir = "hdpowerd_models";

    /// Characterization options applied on model-cache misses.
    core::CharacterizationOptions char_options;

    /// Largest accepted request frame.
    std::uint32_t max_frame = kDefaultMaxFrame;

    /// Idle-connection deadline, measured since the last *complete* frame
    /// (not the last byte, so a slow-loris drip of one byte per second
    /// cannot hold a worker forever). A connection that goes this long
    /// without completing a request is closed and counted in
    /// connections_idle_closed. 0 disables the deadline.
    std::size_t idle_timeout_ms = 0;

    /// drain() grace period. shutdown(SHUT_RD) unblocks workers stuck in
    /// recv(), but a worker blocked in send() to a peer that stopped
    /// reading is not woken by a read-side cut; after this deadline drain()
    /// cuts the write sides too (SHUT_RDWR) so blocked sends fail and the
    /// drain is guaranteed to complete instead of hanging on one dead
    /// client.
    std::size_t drain_timeout_ms = 5000;
};

/// Live counters of a running server (all monotonic; timing on
/// std::chrono::steady_clock so wall-clock adjustments can never corrupt
/// latency accounting).
struct ServerCounters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_shed{0};
    std::atomic<std::uint64_t> connections_idle_closed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> estimates{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> serve_nanos{0}; ///< steady-clock ns in estimates
};

/// The hdpowerd serving core: a listening acceptor thread, a bounded
/// connection queue, and a pool of worker threads, each with its own
/// core::EstimationEngine, sharing the TraceStore, the ShardedModelCache,
/// and the HistogramBroker (request coalescing). Estimates are
/// bit-identical to calling EstimationEngine directly: the same kernels
/// produce the same integer histograms and the same
/// estimate_from_histogram reduction.
///
/// Lifecycle: construct -> start() -> [serve] -> drain() or stop().
/// drain() stops accepting, lets every queued and in-progress request
/// finish, flushes responses, closes connections, and joins the threads —
/// the clean-SIGTERM path. stop() additionally abandons queued
/// connections (they are closed unserved) — the fast path for tests.
class Server {
public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen, and spawn the acceptor and workers. Throws
    /// FaultError{IoError} if no listen endpoint could be bound.
    void start();

    /// Stop accepting, serve out queued + in-flight requests, join.
    void drain();

    /// Stop accepting, close queued connections unserved, join.
    void stop();

    [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

    /// The TCP port actually bound (after start(); 0 when TCP is off).
    [[nodiscard]] std::uint16_t tcp_port() const noexcept { return bound_tcp_port_; }

    [[nodiscard]] TraceStore& traces() noexcept { return traces_; }
    [[nodiscard]] HistogramBroker& broker() noexcept { return broker_; }
    [[nodiscard]] ShardedModelCache& models() noexcept { return *models_; }
    [[nodiscard]] const ServerCounters& counters() const noexcept { return counters_; }

    /// Snapshot of every counter in wire form.
    [[nodiscard]] ServerStatsReply stats_snapshot() const;

private:
    struct Listener {
        int fd = -1;
        std::string description;
    };

    void acceptor_loop();
    void worker_loop(core::EstimationEngine& engine);
    void serve_connection(int fd, core::EstimationEngine& engine);
    /// Handle one decoded request; returns the response payload.
    std::vector<std::uint8_t> handle_request(std::span<const std::uint8_t> payload,
                                             core::EstimationEngine& engine);
    std::vector<std::uint8_t> handle_estimate(WireReader& reader,
                                              core::EstimationEngine& engine);
    void shed_connection(int fd);
    void close_listeners();
    void join_all();

    ServerOptions options_;
    core::ModelLibrary library_;
    std::unique_ptr<ShardedModelCache> models_;
    TraceStore traces_;
    HistogramBroker broker_;
    ServerCounters counters_;

    std::vector<Listener> listeners_;
    std::uint16_t bound_tcp_port_ = 0;
    int wake_pipe_[2] = {-1, -1}; ///< self-pipe to interrupt the acceptor

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<int> pending_;       ///< accepted fds awaiting a worker
    std::size_t idle_workers_ = 0;  ///< workers blocked waiting for an fd
    bool closed_ = false;           ///< no more pushes; workers drain then exit
    bool abandon_queue_ = false;

    std::mutex active_mutex_;
    std::unordered_set<int> active_fds_; ///< connections being served

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<core::EstimationEngine>> engines_;
    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> force_cut_{false}; ///< drain deadline passed: SHUT_RDWR
};

} // namespace hdpm::serve
