#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "streams/packed_trace.hpp"

namespace hdpm::serve {

/// A server error response surfaced to client code: the wire status byte
/// (see StatusCode / fault_status) plus the server's diagnostic.
class ServerError : public util::RuntimeError {
public:
    ServerError(std::uint8_t status, const std::string& message)
        : util::RuntimeError(status_name(status) + ": " + message), status_(status)
    {
    }

    [[nodiscard]] std::uint8_t status() const noexcept { return status_; }
    [[nodiscard]] bool overloaded() const noexcept
    {
        return status_ == static_cast<std::uint8_t>(StatusCode::Overloaded);
    }

private:
    std::uint8_t status_;
};

/// Blocking hdpowerd client on one connection. Request methods
/// (ping/estimate/...) are strict request-response; the enqueue_*/flush/
/// read_* half exposes the same messages in pipelined form — queue many
/// frames, send them in one write, then read the in-order responses — which
/// is how the load harness reaches millions of queries per second.
///
/// Not thread-safe: one ServeClient per connection per thread.
class ServeClient {
public:
    /// Connect to a Unix-domain socket path.
    [[nodiscard]] static ServeClient connect_unix(const std::string& path,
                                                  double timeout_seconds = 30.0);

    /// Connect to 127.0.0.1:port.
    [[nodiscard]] static ServeClient connect_tcp(std::uint16_t port,
                                                 double timeout_seconds = 30.0);

    ~ServeClient();
    ServeClient(ServeClient&& other) noexcept;
    ServeClient& operator=(ServeClient&& other) noexcept;
    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    // --- strict request/response -------------------------------------------

    void ping();

    /// Ship @p trace inline; returns the server-side trace id.
    std::uint64_t register_trace(const streams::PackedTrace& trace);

    /// Ask the server to mmap a trace file (server-side path).
    std::uint64_t open_trace_file(const std::string& path);

    [[nodiscard]] EstimateReply estimate(const EstimateRequest& request);

    [[nodiscard]] ServerStatsReply stats();

    /// Returns true if the id was registered.
    bool close_trace(std::uint64_t trace_id);

    // --- pipelined form -----------------------------------------------------

    /// Queue an Estimate frame without sending (pair with flush +
    /// read_estimate_reply, one reply per queued frame, in order).
    void enqueue_estimate(const EstimateRequest& request);
    void enqueue_ping();

    /// Send every queued frame in one batched write.
    void flush();

    [[nodiscard]] EstimateReply read_estimate_reply();
    void read_ping_reply();

    /// Queued-but-unsent bytes (for harness pacing).
    [[nodiscard]] std::size_t pending_bytes() const noexcept { return out_.size(); }

    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    explicit ServeClient(int fd) : fd_(fd) {}

    /// Send one frame and read one response payload.
    [[nodiscard]] std::vector<std::uint8_t> round_trip(
        const std::vector<std::uint8_t>& payload);

    /// Read one response payload; throws ServerError on a non-Ok status
    /// and FaultError{IoError} if the server closed the connection.
    [[nodiscard]] std::vector<std::uint8_t> read_ok_payload();

    int fd_ = -1;
    std::vector<std::uint8_t> out_; ///< queued frames (pipelined form)
};

} // namespace hdpm::serve
