#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "streams/packed_trace.hpp"

namespace hdpm::serve {

/// A server error response surfaced to client code: the wire status byte
/// (see StatusCode / fault_status) plus the server's diagnostic.
class ServerError : public util::RuntimeError {
public:
    ServerError(std::uint8_t status, const std::string& message)
        : util::RuntimeError(status_name(status) + ": " + message), status_(status)
    {
    }

    [[nodiscard]] std::uint8_t status() const noexcept { return status_; }
    [[nodiscard]] bool overloaded() const noexcept
    {
        return status_ == static_cast<std::uint8_t>(StatusCode::Overloaded);
    }

private:
    std::uint8_t status_;
};

/// Bounded exponential-backoff schedule for reconnect loops. The wait
/// before retry k (1-based) is base_delay_ms * 2^(k-1), capped at
/// max_delay_ms, scaled by a deterministic jitter in [0.5, 1.0] derived
/// from (jitter_seed, k) — so a fleet of clients with distinct seeds
/// spreads its retries instead of stampeding, and a test with a fixed
/// seed sees the exact same schedule every run. The loop stops after
/// max_attempts tries or once the waits would exceed budget_ms in total,
/// whichever comes first.
struct RetryPolicy {
    unsigned max_attempts = 1;   ///< total connection attempts (1 = no retry)
    double base_delay_ms = 50.0; ///< backoff before the first retry
    double max_delay_ms = 2000.0; ///< per-wait cap
    double budget_ms = 15000.0;   ///< total wait budget across all retries
    std::uint64_t jitter_seed = 1;

    /// The jittered wait (ms) before 1-based retry @p attempt.
    [[nodiscard]] double delay_ms(unsigned attempt) const noexcept;
};

/// Blocking hdpowerd client on one connection. Request methods
/// (ping/estimate/...) are strict request-response; the enqueue_*/flush/
/// read_* half exposes the same messages in pipelined form — queue many
/// frames, send them in one write, then read the in-order responses — which
/// is how the load harness reaches millions of queries per second.
///
/// Not thread-safe: one ServeClient per connection per thread.
class ServeClient {
public:
    /// Connect to a Unix-domain socket path. @p timeout_seconds bounds the
    /// connect itself (non-blocking connect + poll) as well as every later
    /// send/recv on the connection; <= 0 disables both deadlines.
    [[nodiscard]] static ServeClient connect_unix(const std::string& path,
                                                  double timeout_seconds = 30.0);

    /// Connect to 127.0.0.1:port (same deadline semantics as connect_unix).
    [[nodiscard]] static ServeClient connect_tcp(std::uint16_t port,
                                                 double timeout_seconds = 30.0);

    /// connect_unix under a RetryPolicy: refused/timed-out connects are
    /// retried with jittered exponential backoff. Throws
    /// FaultError{RetriesExhausted} — detail carries the attempt count and
    /// the last failure — once the policy's attempt or time budget is
    /// spent.
    [[nodiscard]] static ServeClient connect_unix_retry(
        const std::string& path, const RetryPolicy& policy,
        double timeout_seconds = 30.0);

    /// connect_tcp under a RetryPolicy (see connect_unix_retry).
    [[nodiscard]] static ServeClient connect_tcp_retry(
        std::uint16_t port, const RetryPolicy& policy,
        double timeout_seconds = 30.0);

    ~ServeClient();
    ServeClient(ServeClient&& other) noexcept;
    ServeClient& operator=(ServeClient&& other) noexcept;
    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    // --- strict request/response -------------------------------------------

    void ping();

    /// Ship @p trace inline; returns the server-side trace id.
    std::uint64_t register_trace(const streams::PackedTrace& trace);

    /// Ask the server to mmap a trace file (server-side path).
    std::uint64_t open_trace_file(const std::string& path);

    [[nodiscard]] EstimateReply estimate(const EstimateRequest& request);

    [[nodiscard]] ServerStatsReply stats();

    /// Returns true if the id was registered.
    bool close_trace(std::uint64_t trace_id);

    // --- pipelined form -----------------------------------------------------

    /// Queue an Estimate frame without sending (pair with flush +
    /// read_estimate_reply, one reply per queued frame, in order).
    void enqueue_estimate(const EstimateRequest& request);
    void enqueue_ping();

    /// Send every queued frame in one batched write.
    void flush();

    [[nodiscard]] EstimateReply read_estimate_reply();
    void read_ping_reply();

    /// Queued-but-unsent bytes (for harness pacing).
    [[nodiscard]] std::size_t pending_bytes() const noexcept { return out_.size(); }

    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    explicit ServeClient(int fd) : fd_(fd) {}

    /// Send one frame and read one response payload.
    [[nodiscard]] std::vector<std::uint8_t> round_trip(
        const std::vector<std::uint8_t>& payload);

    /// Read one response payload; throws ServerError on a non-Ok status
    /// and FaultError{IoError} if the server closed the connection.
    [[nodiscard]] std::vector<std::uint8_t> read_ok_payload();

    int fd_ = -1;
    std::vector<std::uint8_t> out_; ///< queued frames (pipelined form)
};

} // namespace hdpm::serve
