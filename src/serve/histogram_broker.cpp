#include "serve/histogram_broker.hpp"

#include <algorithm>

namespace hdpm::serve {

HistogramBroker::HistogramBroker(std::size_t cache_entries, std::size_t cache_bytes)
    : cache_entries_(std::max<std::size_t>(cache_entries, 1)),
      cache_bytes_(cache_bytes)
{
}

std::size_t HistogramBroker::cache_bytes_used() const
{
    const std::lock_guard<std::mutex> lock{mutex_};
    return bytes_used_;
}

void HistogramBroker::evict_to_budget_locked()
{
    // Only ready entries live in lru_ (leaders append on completion), so
    // eviction can never detach waiters from an in-flight build. Keep at
    // least the most recently used ready entry.
    while (lru_.size() > 1 &&
           (lru_.size() > cache_entries_ || bytes_used_ > cache_bytes_)) {
        const Key victim = lru_.back();
        lru_.pop_back();
        const auto it = entries_.find(victim);
        if (it != entries_.end()) {
            bytes_used_ -= it->second.get().bytes;
            entries_.erase(it);
        }
    }
}

template <typename Histogram, typename BuildFn>
std::shared_ptr<const Histogram> HistogramBroker::acquire(const Key& key,
                                                          BuildFn&& build,
                                                          BrokerOutcome* outcome)
{
    std::shared_future<Stored> flight;
    std::promise<Stored> promise;
    bool leader = false;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            flight = it->second;
            const bool ready = flight.wait_for(std::chrono::seconds{0}) ==
                               std::future_status::ready;
            if (ready) {
                lru_.remove(key);
                lru_.push_front(key);
                hits_.fetch_add(1, std::memory_order_relaxed);
                if (outcome != nullptr) {
                    *outcome = BrokerOutcome::Hit;
                }
            } else {
                coalesced_.fetch_add(1, std::memory_order_relaxed);
                if (outcome != nullptr) {
                    *outcome = BrokerOutcome::Coalesced;
                }
            }
        } else {
            leader = true;
            flight = promise.get_future().share();
            entries_.emplace(key, flight);
        }
    }

    if (!leader) {
        const Stored stored = flight.get(); // rethrows a leader failure
        return std::static_pointer_cast<const Histogram>(stored.histogram);
    }

    try {
        auto histogram = std::make_shared<const Histogram>(build());
        Stored stored;
        stored.bytes = histogram->counts.size() * sizeof(std::uint64_t);
        stored.histogram = histogram;
        built_.fetch_add(1, std::memory_order_relaxed);
        if (outcome != nullptr) {
            *outcome = BrokerOutcome::Built;
        }
        {
            // Publish readiness and LRU membership atomically: finders
            // check readiness under this mutex, so they can never observe
            // a ready entry that is not yet in lru_ (which would let them
            // push a duplicate LRU key).
            const std::lock_guard<std::mutex> lock{mutex_};
            promise.set_value(stored);
            bytes_used_ += stored.bytes;
            lru_.push_front(key);
            evict_to_budget_locked();
        }
        return histogram;
    } catch (...) {
        promise.set_exception(std::current_exception());
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            entries_.erase(key);
        }
        throw;
    }
}

std::shared_ptr<const streams::HdHistogram> HistogramBroker::hd(
    const streams::PackedTrace& trace, const streams::KernelOptions& options,
    BrokerOutcome* outcome)
{
    const Key key{trace.id(), trace.width(), Kind::Hd};
    return acquire<streams::HdHistogram>(
        key, [&] { return streams::hd_histogram(trace, options); }, outcome);
}

std::shared_ptr<const streams::HdClassHistogram> HistogramBroker::hd_class(
    const streams::PackedTrace& trace, const streams::KernelOptions& options,
    BrokerOutcome* outcome)
{
    const Key key{trace.id(), trace.width(), Kind::Classes};
    return acquire<streams::HdClassHistogram>(
        key, [&] { return streams::hd_class_histogram(trace, options); }, outcome);
}

void HistogramBroker::invalidate(std::uint64_t trace_id)
{
    const std::lock_guard<std::mutex> lock{mutex_};
    for (auto it = entries_.begin(); it != entries_.end();) {
        const bool ready = it->second.wait_for(std::chrono::seconds{0}) ==
                           std::future_status::ready;
        // An in-flight build of a just-closed trace finishes on the
        // leader's borrowed shared_ptr; its entry is left to age out.
        if (it->first.id == trace_id && ready) {
            bytes_used_ -= it->second.get().bytes;
            lru_.remove(it->first);
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace hdpm::serve
