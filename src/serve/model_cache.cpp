#include "serve/model_cache.hpp"

#include <algorithm>

namespace hdpm::serve {

namespace {

std::size_t key_hash(const std::string& key) noexcept
{
    // FNV-1a over the key string; stable across runs (unlike
    // std::hash<std::string>, which libstdc++ seeds per-process for
    // some configurations), so shard assignment is reproducible.
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
    for (const char c : key) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x0000'0100'0000'01b3ULL;
    }
    return static_cast<std::size_t>(hash);
}

} // namespace

ShardedModelCache::ShardedModelCache(const core::ModelLibrary& library,
                                     core::CharacterizationOptions char_options,
                                     std::size_t shards,
                                     std::size_t capacity_per_shard)
    : library_(&library), char_options_(std::move(char_options)),
      capacity_per_shard_(std::max<std::size_t>(capacity_per_shard, 1))
{
    shards_.reserve(std::max<std::size_t>(shards, 1));
    for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i) {
        shards_.push_back(std::make_unique<Shard>());
    }
}

std::size_t ShardedModelCache::shard_for(const std::string& key) const noexcept
{
    return key_hash(key) % shards_.size();
}

std::shared_ptr<const ServedModel> ShardedModelCache::get(
    dp::ModuleType type, std::span<const int> widths, bool enhanced,
    int zero_clusters, const std::optional<gate::Corner>& corner)
{
    // The request corner overrides the configured default; either way the
    // effective corner lands in both the cache key and the
    // characterization options, so corner-qualified entries can never
    // alias the native-corner model (or each other).
    const std::optional<gate::Corner>& effective =
        corner.has_value() ? corner : char_options_.corner;
    std::string key = library_->model_key(type, widths, effective);
    if (enhanced) {
        key += ".z" + std::to_string(zero_clusters);
    }
    Shard& shard = *shards_[shard_for(key)];

    std::shared_future<std::shared_ptr<const ServedModel>> flight;
    std::promise<std::shared_ptr<const ServedModel>> promise;
    bool leader = false;
    {
        const std::lock_guard<std::mutex> lock{shard.mutex};
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            flight = it->second;
            shard.lru.remove(key);
            shard.lru.push_front(key);
        } else {
            leader = true;
            flight = promise.get_future().share();
            shard.entries.emplace(key, flight);
            shard.lru.push_front(key);
            // Evict cold *completed* entries beyond capacity. In-flight
            // entries are skipped: evicting one would detach its waiters
            // from the single-flight and re-run the characterization.
            auto victim = shard.lru.end();
            while (shard.entries.size() > capacity_per_shard_ &&
                   victim != shard.lru.begin()) {
                --victim;
                const auto entry = shard.entries.find(*victim);
                if (entry != shard.entries.end() &&
                    entry->second.wait_for(std::chrono::seconds{0}) ==
                        std::future_status::ready) {
                    shard.entries.erase(entry);
                    victim = shard.lru.erase(victim);
                    evictions_.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
    }

    if (!leader) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return flight.get(); // rethrows a leader failure
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    try {
        core::CharacterizationOptions options = char_options_;
        options.corner = effective;
        std::shared_ptr<const ServedModel> model;
        if (enhanced) {
            model = std::make_shared<const ServedModel>(
                library_->get_or_characterize_enhanced(type, widths, zero_clusters,
                                                       options));
        } else {
            model = std::make_shared<const ServedModel>(
                library_->get_or_characterize(type, widths, options));
        }
        promise.set_value(model);
        return model;
    } catch (...) {
        // Propagate to waiters, then release the key so a later request
        // can retry (e.g. after a transient I/O failure).
        promise.set_exception(std::current_exception());
        {
            const std::lock_guard<std::mutex> lock{shard.mutex};
            shard.entries.erase(key);
            shard.lru.remove(key);
        }
        throw;
    }
}

} // namespace hdpm::serve
