#include "serve/protocol.hpp"

#include <bit>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace hdpm::serve {

namespace {

[[noreturn]] void protocol_fault(std::string detail)
{
    util::FaultContext context;
    context.component = "serve::protocol";
    context.detail = std::move(detail);
    throw util::FaultError{util::FaultKind::ProtocolError, std::move(context)};
}

[[noreturn]] void io_fault(std::string detail)
{
    util::FaultContext context;
    context.component = "serve::socket";
    context.detail = std::move(detail);
    throw util::FaultError{util::FaultKind::IoError, std::move(context)};
}

/// recv() the exact byte count; true on success, false on EOF before the
/// first byte. EOF mid-buffer or a socket error throws.
bool recv_exact(int fd, std::uint8_t* data, std::size_t size, bool eof_ok)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, data + got, size - got, 0);
        if (n == 0) {
            if (got == 0 && eof_ok) {
                return false;
            }
            protocol_fault("connection closed inside a frame");
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            io_fault(std::string{"recv failed: "} + std::strerror(errno));
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::string status_name(std::uint8_t status)
{
    switch (static_cast<StatusCode>(status)) {
    case StatusCode::Ok:
        return "Ok";
    case StatusCode::Overloaded:
        return "Overloaded";
    case StatusCode::BadRequest:
        return "BadRequest";
    case StatusCode::UnknownTrace:
        return "UnknownTrace";
    case StatusCode::UnknownModule:
        return "UnknownModule";
    case StatusCode::InternalError:
        return "InternalError";
    default:
        break;
    }
    if (status >= kFaultBase) {
        return util::fault_kind_name(
            static_cast<util::FaultKind>(status - kFaultBase));
    }
    return "Unknown(" + std::to_string(status) + ")";
}

void WireWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
}

void WireWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
}

void WireWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void WireWriter::str(std::string_view s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void WireWriter::words(std::span<const std::uint64_t> w)
{
    const std::size_t old = bytes_.size();
    bytes_.resize(old + w.size() * sizeof(std::uint64_t));
    // Little-endian targets only (matched by the trace-file format).
    std::memcpy(bytes_.data() + old, w.data(), w.size() * sizeof(std::uint64_t));
}

void WireReader::need(std::size_t n) const
{
    if (bytes_.size() - offset_ < n) {
        protocol_fault("truncated payload: need " + std::to_string(n) +
                       " byte(s), have " + std::to_string(bytes_.size() - offset_));
    }
}

std::uint8_t WireReader::u8()
{
    need(1);
    return bytes_[offset_++];
}

std::uint32_t WireReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | bytes_[offset_ + static_cast<std::size_t>(i)];
    }
    offset_ += 4;
    return v;
}

std::uint64_t WireReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | bytes_[offset_ + static_cast<std::size_t>(i)];
    }
    offset_ += 8;
    return v;
}

double WireReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string WireReader::str()
{
    const std::uint32_t size = u32();
    need(size);
    std::string s{reinterpret_cast<const char*>(bytes_.data() + offset_), size};
    offset_ += size;
    return s;
}

std::vector<std::uint64_t> WireReader::words(std::size_t count)
{
    need(count * sizeof(std::uint64_t));
    std::vector<std::uint64_t> w(count);
    std::memcpy(w.data(), bytes_.data() + offset_, count * sizeof(std::uint64_t));
    offset_ += count * sizeof(std::uint64_t);
    return w;
}

void WireReader::expect_end() const
{
    if (offset_ != bytes_.size()) {
        protocol_fault(std::to_string(bytes_.size() - offset_) +
                       " trailing byte(s) after the message body");
    }
}

std::optional<std::vector<std::uint8_t>> read_frame(int fd, std::uint32_t max_frame)
{
    std::uint8_t prefix[4];
    if (!recv_exact(fd, prefix, sizeof prefix, /*eof_ok=*/true)) {
        return std::nullopt;
    }
    std::uint32_t length = 0;
    for (int i = 3; i >= 0; --i) {
        length = (length << 8) | prefix[i];
    }
    if (length == 0 || length > max_frame) {
        protocol_fault("frame length " + std::to_string(length) +
                       " outside (0, " + std::to_string(max_frame) + "]");
    }
    std::vector<std::uint8_t> payload(length);
    recv_exact(fd, payload.data(), payload.size(), /*eof_ok=*/false);
    return payload;
}

void write_frame(int fd, std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> buffer;
    append_frame(buffer, payload);
    send_all(fd, buffer);
}

void append_frame(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> payload)
{
    const auto length = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>((length >> (8 * i)) & 0xff));
    }
    out.insert(out.end(), payload.begin(), payload.end());
}

void send_all(int fd, std::vector<std::uint8_t>& buffer)
{
    std::size_t sent = 0;
    while (sent < buffer.size()) {
        const ssize_t n =
            ::send(fd, buffer.data() + sent, buffer.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            io_fault(std::string{"send failed: "} + std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    buffer.clear();
}

void encode_estimate_request(WireWriter& w, const EstimateRequest& request)
{
    // The caller writes the leading type byte (symmetric with decode).
    w.u64(request.trace_id);
    w.u8(request.module_type);
    w.u8(static_cast<std::uint8_t>(request.kind));
    w.i32(request.zero_clusters);
    // The count travels as one byte; reject out-of-range requests here
    // instead of silently truncating (256 would even wrap to 0, which the
    // decoder rejects on the far side with a confusing error).
    if (request.widths.empty() || request.widths.size() > 255) {
        protocol_fault("estimate request has " +
                       std::to_string(request.widths.size()) +
                       " operand widths; the wire format allows 1..255");
    }
    w.u8(static_cast<std::uint8_t>(request.widths.size()));
    for (const int width : request.widths) {
        w.i32(width);
    }
    // Trailing-optional corner block: pre-corner decoders never see it
    // (they stop at the widths), and pre-corner encoders simply end the
    // frame here — the decoder treats an exhausted payload as "no corner".
    if (request.corner.has_value()) {
        w.u8(1);
        w.f64(request.corner->vdd_v);
        w.f64(request.corner->temp_c);
        w.u8(static_cast<std::uint8_t>(request.corner->load_class));
    }
}

EstimateRequest decode_estimate_request(WireReader& r)
{
    // The leading type byte was consumed by the dispatcher.
    EstimateRequest request;
    request.trace_id = r.u64();
    request.module_type = r.u8();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(ModelKind::Enhanced)) {
        protocol_fault("unknown model kind " + std::to_string(kind));
    }
    request.kind = static_cast<ModelKind>(kind);
    request.zero_clusters = r.i32();
    const std::uint8_t n = r.u8();
    if (n == 0) {
        protocol_fault("estimate request without operand widths");
    }
    request.widths.resize(n);
    for (std::uint8_t i = 0; i < n; ++i) {
        request.widths[i] = r.i32();
    }
    if (r.remaining() > 0) {
        const std::uint8_t has_corner = r.u8();
        if (has_corner > 1) {
            protocol_fault("bad corner flag " + std::to_string(has_corner));
        }
        if (has_corner == 1) {
            gate::Corner corner;
            corner.vdd_v = r.f64();
            corner.temp_c = r.f64();
            const std::uint8_t load = r.u8();
            if (load > static_cast<std::uint8_t>(gate::LoadClass::Heavy)) {
                protocol_fault("unknown load class " + std::to_string(load));
            }
            corner.load_class = static_cast<gate::LoadClass>(load);
            request.corner = corner;
        }
    }
    return request;
}

void encode_estimate_reply(WireWriter& w, const EstimateReply& reply)
{
    // The caller writes the leading status byte (symmetric with decode).
    w.f64(reply.estimate_fc);
    w.u64(reply.cycles);
    w.u8(static_cast<std::uint8_t>(reply.source));
    w.u64(reply.server_models);
    w.u64(reply.server_histograms_built);
    w.u64(reply.server_cache_hits);
}

EstimateReply decode_estimate_reply(WireReader& r)
{
    // The leading status byte was consumed by the caller.
    EstimateReply reply;
    reply.estimate_fc = r.f64();
    reply.cycles = r.u64();
    reply.source = static_cast<HistogramSource>(r.u8());
    reply.server_models = r.u64();
    reply.server_histograms_built = r.u64();
    reply.server_cache_hits = r.u64();
    return reply;
}

void encode_server_stats(WireWriter& w, const ServerStatsReply& stats)
{
    // The caller writes the leading status byte (symmetric with decode).
    w.u64(stats.connections_accepted);
    w.u64(stats.connections_shed);
    w.u64(stats.connections_idle_closed);
    w.u64(stats.requests);
    w.u64(stats.estimates);
    w.u64(stats.errors);
    w.u64(stats.models_served);
    w.u64(stats.histograms_built);
    w.u64(stats.histogram_cache_hits);
    w.u64(stats.histogram_coalesced);
    w.u64(stats.model_cache_hits);
    w.u64(stats.model_cache_misses);
    w.u64(stats.traces_registered);
    w.u64(stats.trace_bytes);
    w.f64(stats.serve_seconds);
}

ServerStatsReply decode_server_stats(WireReader& r)
{
    ServerStatsReply stats;
    stats.connections_accepted = r.u64();
    stats.connections_shed = r.u64();
    stats.connections_idle_closed = r.u64();
    stats.requests = r.u64();
    stats.estimates = r.u64();
    stats.errors = r.u64();
    stats.models_served = r.u64();
    stats.histograms_built = r.u64();
    stats.histogram_cache_hits = r.u64();
    stats.histogram_coalesced = r.u64();
    stats.model_cache_hits = r.u64();
    stats.model_cache_misses = r.u64();
    stats.traces_registered = r.u64();
    stats.trace_bytes = r.u64();
    stats.serve_seconds = r.f64();
    return stats;
}

std::vector<std::uint8_t> encode_error(std::uint8_t status, std::string_view message)
{
    WireWriter w;
    w.u8(status);
    w.str(message);
    return w.take();
}

} // namespace hdpm::serve
