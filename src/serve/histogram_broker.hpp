#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "streams/kernels.hpp"
#include "streams/packed_trace.hpp"

namespace hdpm::serve {

/// How a histogram request was satisfied (mirrored into EstimateReply).
enum class BrokerOutcome : std::uint8_t {
    Hit = 0,       ///< served from the shared cache
    Built = 1,     ///< this caller ran the classification pass
    Coalesced = 2, ///< waited on a concurrent caller's pass
};

/// The serving fleet's request batcher and shared histogram cache.
///
/// Classification — one pass over a potentially million-sample trace — is
/// the dominant cost of a cold estimate; everything after it is a dot
/// product. When many queries against the same trace arrive concurrently
/// (the common fan-out shape: N models scored on one recorded stream),
/// the broker coalesces them with single-flight semantics: the first
/// caller becomes the leader and runs the kernel pass, every concurrent
/// caller of the same (trace id, width, kind) blocks on the leader's
/// shared_future and is handed the identical histogram. `built()` counts
/// kernel passes actually run; under batched same-trace load it stays far
/// below the number of estimates served.
///
/// The cache behind the flights is LRU with a byte budget shared across
/// both histogram kinds, like EstimationEngine's per-thread cache but
/// process-wide and thread-safe. In-flight entries are never evicted.
/// Histograms are integer counts, bit-identical for every kernel
/// configuration, so entries never key on the KernelOptions used to build
/// them.
class HistogramBroker {
public:
    explicit HistogramBroker(std::size_t cache_entries = 64,
                             std::size_t cache_bytes = std::size_t{256} << 20);

    /// The Hd histogram of @p trace, building at most once concurrently.
    /// @p outcome (optional) reports how this call was served.
    [[nodiscard]] std::shared_ptr<const streams::HdHistogram> hd(
        const streams::PackedTrace& trace, const streams::KernelOptions& options,
        BrokerOutcome* outcome = nullptr);

    /// The (Hd, stable-zero) class histogram, likewise.
    [[nodiscard]] std::shared_ptr<const streams::HdClassHistogram> hd_class(
        const streams::PackedTrace& trace, const streams::KernelOptions& options,
        BrokerOutcome* outcome = nullptr);

    /// Drop every cached histogram of @p trace_id (e.g. on CloseTrace).
    void invalidate(std::uint64_t trace_id);

    [[nodiscard]] std::uint64_t built() const noexcept
    {
        return built_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t hits() const noexcept
    {
        return hits_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t coalesced() const noexcept
    {
        return coalesced_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t cache_bytes_used() const;

private:
    /// One histogram flavor; Kind disambiguates the cache key.
    enum class Kind : std::uint8_t { Hd = 0, Classes = 1 };

    struct Key {
        std::uint64_t id = 0;
        int width = 0;
        Kind kind = Kind::Hd;

        friend bool operator==(const Key&, const Key&) = default;
    };

    struct KeyHash {
        [[nodiscard]] std::size_t operator()(const Key& key) const noexcept
        {
            std::uint64_t x = key.id ^
                              (static_cast<std::uint64_t>(key.width) * 2 +
                               static_cast<std::uint64_t>(key.kind)) *
                                  0x9e3779b97f4a7c15ULL;
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ULL;
            x ^= x >> 27;
            return static_cast<std::size_t>(x);
        }
    };

    /// A type-erased ready histogram plus its byte charge.
    struct Stored {
        std::shared_ptr<const void> histogram;
        std::size_t bytes = 0;
    };

    template <typename Histogram, typename BuildFn>
    std::shared_ptr<const Histogram> acquire(const Key& key, BuildFn&& build,
                                             BrokerOutcome* outcome);

    void evict_to_budget_locked();

    mutable std::mutex mutex_;
    std::size_t cache_entries_;
    std::size_t cache_bytes_;
    std::size_t bytes_used_ = 0;
    std::unordered_map<Key, std::shared_future<Stored>, KeyHash> entries_;
    std::list<Key> lru_; ///< most recently used first; ready entries only
    std::atomic<std::uint64_t> built_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> coalesced_{0};
};

} // namespace hdpm::serve
