/// Extension experiment (not a paper table): the paper claims the Hd-model
/// "can be applied to a wide variety of typical datapath components" — this
/// bench quantifies that claim over the full component zoo of this library
/// (15 module families), reporting basic-model estimation errors for data
/// types I, III and V at an 8-bit operand width.
///
/// Expected shape: every component shows small type-I errors (the model is
/// exact for its characterization statistics), moderate type-III errors,
/// and the counter remains the hardest stream — the table 1 story holds
/// beyond the five module types the paper evaluated.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hdpm;

int main(int argc, char** argv)
{
    const bench::Config config = bench::parse_config(argc, argv);

    std::cout << "Extended component sweep: basic Hd-model average-charge errors [%]\n"
              << "(operand width 8, " << config.eval_patterns << " patterns per type)\n";

    util::TextTable table;
    table.set_header({"module", "m", "cells", "ε (I)", "ε (III)", "ε (V)", "ε_a (I)",
                      "deviation ε̄"});
    table.set_alignment({util::Align::Left});

    double worst_type1 = 0.0;
    for (const dp::ModuleType type : dp::all_module_types()) {
        const dp::DatapathModule module = dp::make_module(type, 8);
        const core::HdModel model = bench::characterize_module(
            module, config, 0xE0 + static_cast<std::uint64_t>(type));

        double avg_err[3] = {};
        double cycle_err_type1 = 0.0;
        int column = 0;
        for (const streams::DataType data_type :
             {streams::DataType::Random, streams::DataType::Speech,
              streams::DataType::Counter}) {
            const core::AccuracyReport report =
                bench::evaluate_model(model, module, data_type, config);
            avg_err[column] = std::abs(report.avg_error_pct);
            if (data_type == streams::DataType::Random) {
                cycle_err_type1 = report.avg_abs_cycle_error_pct;
            }
            ++column;
        }
        worst_type1 = std::max(worst_type1, avg_err[0]);

        table.add_row({module.display_name(), std::to_string(module.total_input_bits()),
                       std::to_string(module.netlist().num_cells()),
                       bench::num(avg_err[0], 1), bench::num(avg_err[1], 1),
                       bench::num(avg_err[2], 1), bench::num(cycle_err_type1, 1),
                       bench::num(100.0 * model.average_deviation(), 1) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nShape check — every component estimates its characterization-like\n"
                 "stream (type I) to within a few percent: "
              << (worst_type1 < 8.0 ? "yes" : "NO") << " (worst "
              << bench::num(worst_type1, 1) << "%)\n";
    std::cout << "The Hd-model generalizes across structures (ripple chains,\n"
                 "lookahead/select/skip carries, arrays, trees, shifters, muxes)\n"
                 "without any per-family tuning — the paper's flexibility claim.\n";

    // ------------------------------------------------------------------
    // Number-representation study (extension along ref [10]): the Hd-model
    // + analytic distribution predict the switching saved by sign-magnitude
    // encoding of correlated data — a typical low-power optimization the
    // paper's introduction motivates, evaluated here without any
    // simulation in the decision loop.
    util::print_section(std::cout,
                        "number-format study: two's complement vs sign-magnitude "
                        "(16-bit word)");
    // Concrete energy on a 16-bit, 200 fF/line bus (e.g. a memory bus).
    const core::BusPowerModel bus{16, 200.0, 3.3};
    util::TextTable formats;
    formats.set_header({"stream", "rho", "Hd 2C (extr)", "Hd 2C (model)",
                        "Hd SM (extr)", "Hd SM (model)", "SM saving",
                        "bus 2C [fC]", "bus SM [fC]"});
    formats.set_alignment({util::Align::Left});
    for (const auto& [label, type, attenuation] :
         {std::tuple{"random", streams::DataType::Random, 1},
          std::tuple{"music", streams::DataType::Music, 1},
          std::tuple{"speech", streams::DataType::Speech, 1},
          std::tuple{"speech/32 (quiet)", streams::DataType::Speech, 32},
          std::tuple{"video", streams::DataType::Video, 1}}) {
        auto values = streams::generate_stream(type, 16, 6000, config.seed);
        for (std::int64_t& v : values) {
            v /= attenuation; // headroom: the word is wider than the signal
        }
        const streams::WordStats word_stats = streams::measure_word_stats(values, 16);

        const auto patterns_2c = streams::to_patterns(values, 16);
        const auto patterns_sm =
            streams::to_patterns(values, 16, streams::NumberFormat::SignMagnitude);
        const double extr_2c = streams::extract_average_hd(patterns_2c);
        const double extr_sm = streams::extract_average_hd(patterns_sm);
        const double model_2c = stats::analytic_average_hd(word_stats);
        const double model_sm = stats::analytic_average_hd(
            word_stats, streams::NumberFormat::SignMagnitude);

        formats.add_row(
            {label, bench::num(word_stats.rho, 2), bench::num(extr_2c, 2),
             bench::num(model_2c, 2), bench::num(extr_sm, 2), bench::num(model_sm, 2),
             bench::num(100.0 * (1.0 - extr_sm / extr_2c), 1) + "%",
             bench::num(bus.estimate_from_stats(word_stats,
                                                streams::NumberFormat::TwosComplement),
                        0),
             bench::num(bus.estimate_from_stats(word_stats,
                                                streams::NumberFormat::SignMagnitude),
                        0)});
    }
    formats.print(std::cout);
    std::cout << "(sign-magnitude pays off only for strongly correlated signals —\n"
                 " exactly what the analytic model predicts without simulation)\n";
    return 0;
}
