#pragma once

#include <cstdint>
#include <string>

#include "core/hdpower.hpp"

/// Shared plumbing of the paper-reproduction bench binaries.
///
/// Every binary accepts:
///   --patterns N   evaluation stream length          (default 2000)
///   --budget N     characterization transition budget (default 12000)
///   --seed N       master seed                        (default 2026)
/// so the experiments can be re-run at paper scale (5000–10000 patterns)
/// or quickly smoke-tested.
namespace hdpm::bench {

struct Config {
    std::size_t eval_patterns = 2000;
    std::size_t char_budget = 12000;
    std::uint64_t seed = 2026;
    std::string csv_dir; ///< when set (--csv DIR), benches export their series
};

/// Parse the common CLI flags; unknown flags abort with a usage message.
[[nodiscard]] Config parse_config(int argc, char** argv);

/// Standard characterization options derived from a config.
[[nodiscard]] core::CharacterizationOptions char_options(const Config& config,
                                                         std::uint64_t salt);

/// Characterize a module's basic model with the standard options.
[[nodiscard]] core::HdModel characterize_module(const dp::DatapathModule& module,
                                                const Config& config, std::uint64_t salt);

/// Run the reference power simulation for a stream.
[[nodiscard]] sim::StreamPowerResult run_reference(const dp::DatapathModule& module,
                                                   std::span<const util::BitVec> patterns);

/// Evaluate a basic model against the reference on a data type: returns
/// the paper's (ε_a, ε) pair.
[[nodiscard]] core::AccuracyReport evaluate_model(const core::HdModel& model,
                                                  const dp::DatapathModule& module,
                                                  streams::DataType type,
                                                  const Config& config);

/// Characterize one prototype per width (operand width list) of a module
/// family — the paper's "complete set of prototypes" for section 5.
[[nodiscard]] std::vector<core::PrototypeModel> characterize_prototypes(
    dp::ModuleType type, std::span<const int> widths, const Config& config);

/// Thin a prototype set by keeping every @p stride-th element starting at
/// the first (stride 1 = ALL, 2 = SEC, 3 = THI in the paper's naming).
[[nodiscard]] std::vector<core::PrototypeModel> thin_prototypes(
    std::span<const core::PrototypeModel> prototypes, std::size_t stride);

/// Export a data series to <csv_dir>/<name>.csv when --csv was given
/// (no-op otherwise); returns true if a file was written.
bool maybe_write_csv(const Config& config, const std::string& name,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows);

/// Round to the nearest integer percent, paper-table style.
[[nodiscard]] std::string pct(double value);

/// Format a fixed-point number.
[[nodiscard]] std::string num(double value, int precision = 2);

} // namespace hdpm::bench
