/// Baseline comparison (deliverable beyond the paper's tables): the paper
/// positions the Hd-model between exact 4^m transition models (intractable)
/// and cruder macro-models. This bench pits four estimators with comparable
/// parameter budgets against the reference simulation:
///
///   constant      1 parameter    Q = mean charge (activity-blind)
///   Hd-model      m parameters   Q = p_Hd                (the paper)
///   bitwise       m+1 parameters Q = b0 + Σ w_i·τ_i      (position-based
///                                regression, Bogliolo/Macii-style)
///   enhanced Hd   (m²+m)/2       Q = p_{Hd, zeros}       (paper §3)
///
/// Expected shape: the Hd-model beats the constant everywhere and the
/// bitwise baseline on count-driven behaviour (random data, glitchy
/// multipliers), while the bitwise model wins where *position* carries the
/// information (counter streams); the enhanced model combines both signals
/// and wins overall — which is exactly the paper's motivation for it.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hdpm;

int main(int argc, char** argv)
{
    const bench::Config config = bench::parse_config(argc, argv);

    std::cout << "Baseline comparison: cycle ε_a / |avg ε| in % against the reference\n"
                 "simulation (operand width 8).\n";

    const dp::ModuleType module_types[] = {dp::ModuleType::RippleAdder,
                                           dp::ModuleType::CsaMultiplier};
    const streams::DataType data_types[] = {streams::DataType::Random,
                                            streams::DataType::Speech,
                                            streams::DataType::Counter};

    for (const dp::ModuleType type : module_types) {
        const dp::DatapathModule module = dp::make_module(type, 8);
        const int m = module.total_input_bits();
        util::print_section(std::cout, module.display_name());

        // One record set feeds every model (same characterization budget).
        const core::Characterizer characterizer;
        const auto records = characterizer.collect_records(
            module, bench::char_options(config, 0xBA5E + static_cast<std::uint64_t>(type)));
        const core::HdModel hd_model = core::fit_basic_model(m, records);
        const core::BitwiseLinearModel bitwise =
            core::BitwiseLinearModel::fit(m, records);

        core::CharacterizationOptions enhanced_options =
            bench::char_options(config, 0xE4A + static_cast<std::uint64_t>(type));
        enhanced_options.max_transitions = config.char_budget * 3;
        enhanced_options.min_transitions = config.char_budget * 2;
        const core::EnhancedHdModel enhanced =
            characterizer.characterize_enhanced(module, 0, enhanced_options);

        double mean_charge = 0.0;
        for (const auto& rec : records) {
            mean_charge += rec.charge_fc;
        }
        mean_charge /= static_cast<double>(records.size());

        util::TextTable table;
        table.set_header({"data", "constant", "Hd-model", "bitwise", "enhanced Hd"});
        table.set_alignment({util::Align::Left});
        for (const streams::DataType data_type : data_types) {
            const auto patterns = core::make_module_stream(
                module, data_type, config.eval_patterns,
                config.seed * 31 + static_cast<std::uint64_t>(data_type));
            const auto reference = bench::run_reference(module, patterns);

            auto score = [&](const std::vector<double>& estimate) {
                const core::AccuracyReport report =
                    core::compare_cycles(estimate, reference.cycle_charge_fc);
                return bench::pct(report.avg_abs_cycle_error_pct) + " / " +
                       bench::pct(std::abs(report.avg_error_pct));
            };

            const std::vector<double> constant(reference.cycle_charge_fc.size(),
                                               mean_charge);
            table.add_row({streams::data_type_label(data_type), score(constant),
                           score(hd_model.estimate_cycles(patterns)),
                           score(bitwise.estimate_cycles(patterns)),
                           score(enhanced.estimate_cycles(patterns))});
        }
        table.print(std::cout);
        std::cout << "parameters: constant 1, Hd " << m << ", bitwise " << m + 1
                  << ", enhanced " << enhanced.num_coefficients() << '\n';

        // Probabilistic zero-delay analysis (section 6's "probabilistic
        // simulation" pointer): pattern-free, but glitch-blind — the gap to
        // the reference is the module's glitch share.
        sim::ProbabilisticAnalyzer probabilistic{module.netlist(),
                                                 gate::TechLibrary::generic350()};
        probabilistic.propagate_uniform();
        const auto random_patterns = core::make_module_stream(
            module, streams::DataType::Random, config.eval_patterns,
            config.seed * 31);
        const double reference_avg =
            bench::run_reference(module, random_patterns).mean_charge_fc();
        std::cout << "probabilistic zero-delay estimate (type I): "
                  << bench::num(probabilistic.average_charge_fc(), 1) << " fC vs "
                  << bench::num(reference_avg, 1)
                  << " fC reference -> glitch+timing share ~"
                  << bench::pct(100.0 *
                                (1.0 - probabilistic.average_charge_fc() / reference_avg))
                  << "%\n";
    }

    std::cout << "\nReading: cells are 'cycle ε_a / |avg ε|'. The Hd-model dominates\n"
                 "the budget-equivalent baselines on random data; the bitwise model\n"
                 "catches position effects (counter); the enhanced model subsumes\n"
                 "both — the paper's accuracy/complexity trade-off in numbers.\n";
    return 0;
}
