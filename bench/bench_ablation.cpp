/// Ablation studies of the design choices DESIGN.md calls out:
///
///  A. Zero-count clustering of the enhanced model (section 3: "cluster
///     event classes within a certain range of the number of zeros"):
///     coefficient count vs accuracy on the counter stream.
///  B. Characterization budget: coefficient convergence vs the number of
///     measured transitions (section 4.1: "finished after the coefficient
///     values have converged").
///  C. Glitch modelling in the reference simulator: transport delays vs
///     inertial filtering vs zero-delay (no glitches) — how much of the
///     coefficient curve's super-linearity comes from glitch propagation.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hdpm;

namespace {

void ablation_zero_clustering(const bench::Config& config)
{
    util::print_section(std::cout,
                        "A. enhanced-model zero clustering (csa-multiplier 6x6, counter)");
    const dp::DatapathModule module = dp::make_module(dp::ModuleType::CsaMultiplier, 6);
    const core::Characterizer characterizer;

    core::CharacterizationOptions options = bench::char_options(config, 81);
    options.max_transitions = config.char_budget * 2;
    options.min_transitions = config.char_budget;

    const auto patterns = core::make_module_stream(module, streams::DataType::Counter,
                                                   config.eval_patterns, config.seed + 4);
    const auto reference = bench::run_reference(module, patterns);

    util::TextTable table;
    table.set_header({"zero clusters", "coefficients", "avg err [%]", "cycle err [%]"});
    for (const int clusters : {1, 2, 4, 8, 0}) {
        const core::EnhancedHdModel model =
            characterizer.characterize_enhanced(module, clusters, options);
        const auto est = model.estimate_cycles(patterns);
        const core::AccuracyReport report =
            core::compare_cycles(est, reference.cycle_charge_fc);
        table.add_row({clusters == 0 ? "full (m-i+1)" : std::to_string(clusters),
                       std::to_string(model.num_coefficients()),
                       bench::num(std::abs(report.avg_error_pct), 1),
                       bench::num(report.avg_abs_cycle_error_pct, 1)});
    }
    table.print(std::cout);
    std::cout << "(1 cluster = basic model granularity; accuracy should improve as\n"
                 " clusters are refined, at the cost of more coefficients)\n";
}

void ablation_characterization_budget(const bench::Config& config)
{
    util::print_section(std::cout,
                        "B. characterization budget vs accuracy (ripple adder 8)");
    const dp::DatapathModule module = dp::make_module(dp::ModuleType::RippleAdder, 8);
    const core::Characterizer characterizer;

    // Ground truth: a very large characterization run.
    core::CharacterizationOptions reference_options = bench::char_options(config, 82);
    reference_options.max_transitions = 60000;
    reference_options.min_transitions = 60000;
    reference_options.tolerance = 0.0;
    const core::HdModel truth = characterizer.characterize(module, reference_options);

    const auto patterns = core::make_module_stream(module, streams::DataType::Random,
                                                   config.eval_patterns, config.seed + 5);
    const auto reference = bench::run_reference(module, patterns);

    util::TextTable table;
    table.set_header({"transitions", "max coeff drift vs truth [%]", "avg err [%]"});
    for (const std::size_t budget : {500UL, 1000UL, 2000UL, 4000UL, 8000UL, 16000UL}) {
        core::CharacterizationOptions options = bench::char_options(config, 83);
        options.max_transitions = budget;
        options.min_transitions = budget;
        options.tolerance = 0.0;
        const core::HdModel model = characterizer.characterize(module, options);
        double worst = 0.0;
        for (int i = 1; i <= model.input_bits(); ++i) {
            worst = std::max(worst, std::abs(model.coefficient(i) - truth.coefficient(i)) /
                                        truth.coefficient(i));
        }
        const double est = model.estimate_average(patterns);
        const double err =
            std::abs(est - reference.mean_charge_fc()) / reference.mean_charge_fc();
        table.add_row({std::to_string(budget), bench::num(100.0 * worst, 2),
                       bench::num(100.0 * err, 2)});
    }
    table.print(std::cout);
    std::cout << "(coefficients converge ~1/sqrt(n); a few thousand transitions are\n"
                 " enough, matching the paper's 'characterization can be finished after\n"
                 " the coefficient values have converged')\n";
}

void ablation_glitch_model(const bench::Config& config)
{
    util::print_section(std::cout,
                        "C. glitch modelling in the reference simulator (csa-mult 6x6)");
    const dp::DatapathModule module = dp::make_module(dp::ModuleType::CsaMultiplier, 6);
    const int m = module.total_input_bits();

    util::TextTable table;
    table.set_header({"delay model", "p_1 [fC]", "p_m/2 [fC]", "p_m [fC]",
                      "curvature p_m/p_(m/2)", "mean Q (random) [fC]"});
    table.set_alignment({util::Align::Left});

    for (const auto& [name, window] :
         {std::pair<const char*, std::int64_t>{"transport (all glitches)", 0},
          std::pair<const char*, std::int64_t>{"inertial 60 ps", 60},
          std::pair<const char*, std::int64_t>{"inertial 100 ps (default)", 100},
          std::pair<const char*, std::int64_t>{"inertial 250 ps", 250},
          std::pair<const char*, std::int64_t>{"inertial 5000 ps (~zero-delay)", 5000}}) {
        sim::EventSimOptions sim_options;
        sim_options.inertial_window_ps = window;
        const core::Characterizer characterizer{gate::TechLibrary::generic350(),
                                                sim_options};
        const core::HdModel model =
            characterizer.characterize(module, bench::char_options(config, 84));

        const auto patterns = core::make_module_stream(
            module, streams::DataType::Random, config.eval_patterns / 2, config.seed + 6);
        sim::PowerSimulator power{module.netlist(), gate::TechLibrary::generic350(),
                                  sim_options};
        const double mean_q = power.run(patterns).mean_charge_fc();

        table.add_row({name, bench::num(model.coefficient(1), 1),
                       bench::num(model.coefficient(m / 2), 1),
                       bench::num(model.coefficient(m), 1),
                       bench::num(model.coefficient(m) / model.coefficient(m / 2), 2),
                       bench::num(mean_q, 1)});
    }
    table.print(std::cout);
    std::cout << "(filtering glitches lowers absolute charge and flattens the\n"
                 " coefficient curve — the super-linearity the distribution-based\n"
                 " estimator exploits comes largely from glitch propagation)\n";
}

void ablation_clock_gating(const bench::Config& config)
{
    util::print_section(std::cout,
                        "D. pipeline clock gating (2-stage |a*b| unit, 8x8)");
    const dp::DatapathModule mult = dp::make_module(dp::ModuleType::CsaMultiplier, 8);
    const dp::DatapathModule abs = dp::make_module(dp::ModuleType::AbsVal, 16);

    util::TextTable table;
    table.set_header({"workload", "hold", "regs plain [fC/cy]", "regs gated [fC/cy]",
                      "saving"});
    table.set_alignment({util::Align::Left});
    // "hold" = clock cycles per input sample: real datapaths are often
    // clocked faster than their sample rate, and idle cycles are exactly
    // where per-bank gating pays.
    for (const auto& [type, hold] :
         {std::pair{streams::DataType::Random, 1},
          std::pair{streams::DataType::Speech, 1},
          std::pair{streams::DataType::Speech, 4},
          std::pair{streams::DataType::Counter, 4}}) {
        auto samples = core::make_module_stream(mult, type,
                                                config.eval_patterns / 2,
                                                config.seed + 9);
        std::vector<util::BitVec> inputs;
        inputs.reserve(samples.size() * static_cast<std::size_t>(hold));
        for (const auto& sample : samples) {
            for (int h = 0; h < hold; ++h) {
                inputs.push_back(sample);
            }
        }
        sim::PipelineSimulator plain{{&mult.netlist(), &abs.netlist()},
                                     gate::TechLibrary::generic350()};
        sim::DffCosts gated_costs;
        gated_costs.clock_gating = true;
        sim::PipelineSimulator gated{{&mult.netlist(), &abs.netlist()},
                                     gate::TechLibrary::generic350(), gated_costs};
        const double cycles = static_cast<double>(inputs.size());
        const double plain_fc = plain.run(inputs).register_fc / cycles;
        const double gated_fc = gated.run(inputs).register_fc / cycles;
        table.add_row({streams::data_type_name(type), std::to_string(hold),
                       bench::num(plain_fc, 1), bench::num(gated_fc, 1),
                       bench::num(100.0 * (1.0 - gated_fc / plain_fc), 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "(with every-cycle new data the gating logic is pure overhead; with\n"
                 " idle hold cycles it wins — the decision needs exactly the workload\n"
                 " statistics this library models)\n";
}

} // namespace

int main(int argc, char** argv)
{
    const bench::Config config = bench::parse_config(argc, argv);
    std::cout << "Ablation studies (not in the paper; design-choice validation).\n";
    ablation_zero_clustering(config);
    ablation_characterization_budget(config);
    ablation_glitch_model(config);
    ablation_clock_gating(config);
    return 0;
}
