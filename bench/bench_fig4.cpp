/// Reproduces Figure 4 (plus the structural context of Figure 3):
/// coefficients from instance characterization versus coefficients
/// computed from the bit-width regression equations, for the
/// csa-multiplier (quadratic complexity basis) and ripple adder (linear
/// basis), prototypes with operand widths 4..16 in steps of 2.
///
/// Paper shape: the regression curves track the instance coefficients
/// closely (differences below 5-10 %), because the complexity functions
/// match the real structural scaling.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hdpm;

namespace {

void report_family(dp::ModuleType type, const bench::Config& config)
{
    const std::vector<int> widths{4, 6, 8, 10, 12, 14, 16};
    const auto prototypes = bench::characterize_prototypes(type, widths, config);
    const core::ParameterizableModel model =
        core::ParameterizableModel::fit(type, prototypes);

    util::print_section(std::cout, dp::module_type_display(type) +
                                       " — instance vs regression coefficients [fC]");
    util::TextTable table;
    table.set_header({"w", "p_1 inst", "p_1 regr", "p_5 inst", "p_5 regr", "p_8 inst",
                      "p_8 regr", "max |diff| %"});
    for (std::size_t idx = 0; idx < prototypes.size(); ++idx) {
        const core::PrototypeModel& proto = prototypes[idx];
        const int w = proto.operand_widths[0];
        std::vector<std::string> cells{std::to_string(w)};
        double worst = 0.0;
        for (const int i : {1, 5, 8}) {
            if (i > proto.model.input_bits()) {
                cells.push_back("-");
                cells.push_back("-");
                continue;
            }
            const double inst = proto.model.coefficient(i);
            const double regr = model.coefficient(i, proto.operand_widths);
            cells.push_back(bench::num(inst, 1));
            cells.push_back(bench::num(regr, 1));
            worst = std::max(worst, std::abs(regr - inst) / inst * 100.0);
        }
        cells.push_back(bench::num(worst, 1));
        table.add_row(cells);
    }
    table.print(std::cout);

    // Full-range summary: mean relative difference over all (w, i).
    double sum = 0.0;
    std::size_t count = 0;
    for (const core::PrototypeModel& proto : prototypes) {
        for (int i = 1; i <= proto.model.input_bits(); ++i) {
            const double inst = proto.model.coefficient(i);
            if (inst <= 0.0) {
                continue;
            }
            const double regr = model.coefficient(i, proto.operand_widths);
            sum += std::abs(regr - inst) / inst;
            ++count;
        }
    }
    std::cout << "mean |instance - regression| over all coefficients: "
              << bench::num(100.0 * sum / static_cast<double>(count), 1)
              << "% (paper: below 5-10% in most cases)\n";
}

} // namespace

int main(int argc, char** argv)
{
    const bench::Config config = bench::parse_config(argc, argv);

    std::cout << "Figure 4 reproduction: regression vs instance coefficients.\n";

    // Figure 3 context: the structural scaling the regression bases encode.
    util::print_section(std::cout, "figure 3 context: csa-multiplier structure scaling");
    util::TextTable structure;
    structure.set_header({"multiplier", "cells", "nets", "adder cells / FA stages"});
    for (const auto& [w1, w0] : {std::pair{4, 4}, std::pair{6, 4}, std::pair{8, 8}}) {
        const std::array<int, 2> w{w1, w0};
        const dp::DatapathModule module = dp::make_module(dp::ModuleType::CsaMultiplier, w);
        const auto stats = module.netlist().stats();
        structure.add_row({std::to_string(w1) + "x" + std::to_string(w0),
                           std::to_string(stats.num_cells), std::to_string(stats.num_nets),
                           std::to_string(w1 - 1)});
    }
    structure.print(std::cout);
    std::cout << "(complexity of the array scales with m1*m0, the final adder with m —\n"
                 " the terms of the regression basis, eq. 7/8)\n";

    report_family(dp::ModuleType::CsaMultiplier, config);
    report_family(dp::ModuleType::RippleAdder, config);
    return 0;
}
