/// Quantifies the paper's motivation: the macro-model trades a little
/// accuracy for orders-of-magnitude faster power estimation than the
/// reference (gate-level event) simulation, and the purely statistical
/// estimator needs no per-cycle work at all.
///
/// google-benchmark microbenchmarks; run with --benchmark_* flags.

#include <benchmark/benchmark.h>

#include "core/hdpower.hpp"

using namespace hdpm;

namespace {

struct Fixture {
    dp::DatapathModule module = dp::make_module(dp::ModuleType::CsaMultiplier, 8);
    core::HdModel model;
    std::vector<util::BitVec> patterns;
    std::vector<streams::WordStats> word_stats;

    Fixture()
    {
        core::CharacterizationOptions options;
        options.max_transitions = 6000;
        options.min_transitions = 3000;
        options.seed = 7;
        const core::Characterizer characterizer;
        model = characterizer.characterize(module, options);

        const auto operands =
            core::make_operand_streams(module, streams::DataType::Music, 4096, 11);
        patterns = core::encode_module_stream(module, operands);
        for (std::size_t op = 0; op < operands.size(); ++op) {
            word_stats.push_back(streams::measure_word_stats(
                operands[op], module.operand_widths()[op]));
        }
    }
};

Fixture& fixture()
{
    static Fixture f;
    return f;
}

void BM_ReferenceEventSimulation(benchmark::State& state)
{
    Fixture& f = fixture();
    sim::PowerSimulator power{f.module.netlist(), gate::TechLibrary::generic350()};
    for (auto _ : state) {
        benchmark::DoNotOptimize(power.run(f.patterns).total_charge_fc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(f.patterns.size() - 1));
}
BENCHMARK(BM_ReferenceEventSimulation)->Unit(benchmark::kMillisecond);

void BM_HdModelStreamEstimate(benchmark::State& state)
{
    Fixture& f = fixture();
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.model.estimate_average(f.patterns));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(f.patterns.size() - 1));
}
BENCHMARK(BM_HdModelStreamEstimate)->Unit(benchmark::kMicrosecond);

void BM_StatisticalEstimate(benchmark::State& state)
{
    Fixture& f = fixture();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::estimate_from_word_stats(f.model, f.word_stats).from_distribution_fc);
    }
}
BENCHMARK(BM_StatisticalEstimate)->Unit(benchmark::kMicrosecond);

void BM_Characterization(benchmark::State& state)
{
    const dp::DatapathModule module = dp::make_module(dp::ModuleType::RippleAdder, 8);
    const core::Characterizer characterizer;
    core::CharacterizationOptions options;
    options.max_transitions = static_cast<std::size_t>(state.range(0));
    options.min_transitions = options.max_transitions;
    options.seed = 3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            characterizer.characterize(module, options).average_deviation());
    }
}
BENCHMARK(BM_Characterization)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_AnalyticHdDistribution(benchmark::State& state)
{
    streams::WordStats stats;
    stats.mean = 12.0;
    stats.variance = 900.0;
    stats.rho = 0.93;
    stats.width = 16;
    stats.count = 10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::compute_hd_distribution(stats).mean());
    }
}
BENCHMARK(BM_AnalyticHdDistribution);

} // namespace

BENCHMARK_MAIN();
